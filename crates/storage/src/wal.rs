//! Checksummed write-ahead log.
//!
//! Framing: every record is `[len: u32 LE][crc32: u32 LE][payload]`, where
//! the checksum covers the *length prefix and the payload* (see
//! [`frame_crc`]). Covering the length matters: `crc32(b"") == 0`, so a
//! payload-only checksum would let a zero-filled tail (pre-allocated or
//! partially-written blocks full of `\0`) replay as an endless run of valid
//! empty records. Replay stops at the first frame whose length runs past
//! EOF or whose checksum fails — the torn tail of a crashed write — and
//! reports how many clean records preceded it. The structured store layers
//! transaction semantics on top (see [`crate::structured::recovery`]); this
//! module knows only bytes.
//!
//! All file I/O goes through a [`StorageBackend`] (see [`crate::faultfs`]),
//! so tests can inject deterministic crashes; [`Wal::open`] and
//! [`Wal::replay`] default to the real filesystem.
//!
//! # Durability contract
//!
//! [`Wal::append`] only buffers: after it returns, the frame may live
//! entirely in the process's `BufWriter` and is lost on a crash.
//! [`Wal::sync`] is the durability boundary — it flushes the buffer to the
//! file *and* calls `File::sync_data`, so once `sync` returns, every
//! previously appended frame survives both process death and OS/power
//! failure (to the extent the disk honors flush commands). `sync_data` is
//! deliberate: frame data must be on stable storage, but file metadata such
//! as the modification time need not be, and skipping the metadata journal
//! write makes the commit fsync cheaper. Callers that need group commit
//! should batch several `append`s behind one `sync`; the structured engine
//! syncs once per commit/DDL record, never per operation. The checksum
//! framing makes a torn final frame detectable, so a crash *between*
//! `append` and `sync` never corrupts the clean prefix — replay simply
//! truncates the tail at the last record whose CRC verifies.

use crate::error::StorageError;
use crate::faultfs::{BackendFile, RealBackend, StorageBackend};
use crate::Result;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

fn crc32_feed(mut state: u32, data: &[u8]) -> u32 {
    let t = crc_table();
    for &b in data {
        state = t[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// CRC-32 (IEEE) implemented from scratch; table built at first use.
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_feed(0xFFFF_FFFF, data)
}

/// Frame checksum: CRC-32 over the record's 4-byte LE length prefix
/// followed by the payload. Including the length makes a zero-filled region
/// fail verification (`crc32` of an empty payload alone is 0, which is
/// exactly what uninitialized blocks contain).
pub fn frame_crc(payload: &[u8]) -> u32 {
    let len = (payload.len() as u32).to_le_bytes();
    !crc32_feed(crc32_feed(0xFFFF_FFFF, &len), payload)
}

/// One replayed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Byte offset of the record's frame in the log file.
    pub offset: u64,
    /// Record payload.
    pub payload: Bytes,
}

/// How much durability a commit buys before it returns. Mirrors the
/// classic FULL / NORMAL / DEFERRED ladder (see `docs/storage.md` for the
/// full contract table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityMode {
    /// Every commit flushes *and* fsyncs the log before returning;
    /// concurrent committers share one fsync through the group-commit
    /// queue. Survives OS/power failure.
    #[default]
    Full,
    /// Every commit flushes the log to the OS but skips the fsync.
    /// Survives process death; an OS/power failure may lose the tail.
    Normal,
    /// Commits only buffer in the process. Fastest; a crash may lose
    /// everything since the last explicit sync/checkpoint.
    Deferred,
}

/// An append-only log file.
pub struct Wal {
    path: PathBuf,
    backend: Arc<dyn StorageBackend>,
    writer: BufWriter<Box<dyn BackendFile>>,
    offset: u64,
    /// Reused frame-assembly buffer so `append` allocates nothing in
    /// steady state.
    scratch: Vec<u8>,
}

impl Wal {
    /// Open (creating if needed) a log at `path`, positioned for appending
    /// after the last *clean* record. Any torn tail is truncated away.
    pub fn open(path: impl AsRef<Path>) -> Result<Wal> {
        Self::open_with(Arc::new(RealBackend), path)
    }

    /// [`Wal::open`] against an explicit storage backend.
    pub fn open_with(backend: Arc<dyn StorageBackend>, path: impl AsRef<Path>) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let records = Self::replay_with(&*backend, &path)?;
        let clean_end = records.last().map(|r| r.offset + 8 + r.payload.len() as u64).unwrap_or(0);
        let file = backend.open_append(&path, clean_end)?;
        Ok(Wal {
            path,
            backend,
            writer: BufWriter::new(file),
            offset: clean_end,
            scratch: Vec::new(),
        })
    }

    /// Append one record; returns its frame offset. Data is buffered — call
    /// [`Wal::sync`] to force it to the OS/file.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        let offset = self.offset;
        self.scratch.clear();
        self.scratch.reserve(8 + payload.len());
        self.scratch.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.scratch.extend_from_slice(&frame_crc(payload).to_le_bytes());
        self.scratch.extend_from_slice(payload);
        self.writer.write_all(&self.scratch)?;
        self.offset += self.scratch.len() as u64;
        Ok(offset)
    }

    /// Flush buffered frames to the OS *without* an fsync (the
    /// [`DurabilityMode::Normal`] commit boundary).
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }

    /// Flush buffered frames and fsync the file.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_mut().sync_data()?;
        Ok(())
    }

    /// Current append offset (= file length after sync).
    pub fn len(&self) -> u64 {
        self.offset
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.offset == 0
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read every clean record from a log file (no `Wal` instance needed).
    /// A missing file replays as empty. Corruption mid-file ends the replay
    /// at the last clean record rather than erroring: that is exactly the
    /// crash-recovery contract.
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<WalRecord>> {
        Self::replay_with(&RealBackend, path)
    }

    /// [`Wal::replay`] against an explicit storage backend.
    pub fn replay_with(
        backend: &dyn StorageBackend,
        path: impl AsRef<Path>,
    ) -> Result<Vec<WalRecord>> {
        let data = match backend.read(path.as_ref()) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= data.len() {
            // quarry-audit: allow(QA101, reason = "try_into from a 4-byte slice into [u8; 4] cannot fail")
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            // quarry-audit: allow(QA101, reason = "try_into from a 4-byte slice into [u8; 4] cannot fail")
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            let start = pos + 8;
            let end = match start.checked_add(len) {
                Some(e) if e <= data.len() => e,
                _ => break, // torn length / truncated payload
            };
            let payload = &data[start..end];
            if frame_crc(payload) != crc {
                break; // torn or corrupted payload
            }
            records
                .push(WalRecord { offset: pos as u64, payload: Bytes::copy_from_slice(payload) });
            pos = end;
        }
        Ok(records)
    }

    /// Truncate the log to zero length (e.g. after a checkpoint).
    pub fn reset(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_mut().truncate(0)?;
        self.offset = 0;
        Ok(())
    }

    /// The storage backend this log writes through.
    pub fn backend(&self) -> Arc<dyn StorageBackend> {
        Arc::clone(&self.backend)
    }
}

/// Parse every *complete* frame out of `buf`, whose first byte sits at
/// absolute log offset `base`. Returns the parsed records plus the number
/// of bytes consumed; an incomplete or torn trailing frame is left
/// unconsumed so a streaming caller can retry once more bytes arrive.
/// Unlike [`Wal::replay_with`], a CRC mismatch is an *error* here — a
/// tail reader only ever sees bytes below the committed watermark, where
/// corruption means a damaged log, not an in-progress write.
pub fn parse_frames(buf: &[u8], base: u64) -> Result<(Vec<WalRecord>, usize)> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= buf.len() {
        // quarry-audit: allow(QA101, reason = "try_into from a 4-byte slice into [u8; 4] cannot fail")
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        // quarry-audit: allow(QA101, reason = "try_into from a 4-byte slice into [u8; 4] cannot fail")
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        let start = pos + 8;
        let end = match start.checked_add(len) {
            Some(e) if e <= buf.len() => e,
            _ => break, // incomplete trailing frame: wait for more bytes
        };
        let payload = &buf[start..end];
        if frame_crc(payload) != crc {
            return Err(StorageError::Corrupt(format!(
                "wal frame at offset {} fails checksum",
                base + pos as u64
            )));
        }
        records.push(WalRecord {
            offset: base + pos as u64,
            payload: Bytes::copy_from_slice(payload),
        });
        pos = end;
    }
    Ok((records, pos))
}

/// What one [`WalTail::poll`] observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailPoll {
    /// New complete frames past the cursor; the cursor has advanced.
    Records(Vec<WalRecord>),
    /// Nothing new (no bytes, or only an incomplete trailing frame).
    Idle,
    /// The log file is shorter than the cursor. Either a checkpoint
    /// truncated it (the cursor position is from a dead epoch and the
    /// caller must renegotiate — [`WalTail::seek`]), or the cursor was
    /// placed at an append offset whose tail is still buffered in the
    /// writer. The caller disambiguates by checking the checkpoint
    /// epoch; the cursor itself is left untouched.
    Truncated,
}

/// A polling cursor over a live WAL file, used by replication to stream
/// committed frames to replicas.
///
/// The tail reads through the same [`StorageBackend`] as the writer, so
/// under fault injection it observes exactly the bytes a crash would
/// leave behind — and, because backend *reads* are not crash points, the
/// act of tailing never perturbs the recorded operation stream. A torn
/// or incomplete trailing frame (an append racing the poll, or a commit
/// not yet flushed) simply reads as [`TailPoll::Idle`]; only complete
/// CRC-valid frames are handed out.
pub struct WalTail {
    backend: Arc<dyn StorageBackend>,
    path: PathBuf,
    offset: u64,
}

impl WalTail {
    /// A tail over the log at `path`, starting at byte offset `start`.
    pub fn new(backend: Arc<dyn StorageBackend>, path: impl AsRef<Path>, start: u64) -> WalTail {
        WalTail { backend, path: path.as_ref().to_path_buf(), offset: start }
    }

    /// Current cursor position (byte offset of the next unread frame).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Move the cursor (after a truncation / epoch change).
    pub fn seek(&mut self, offset: u64) {
        self.offset = offset;
    }

    /// Read any complete frames past the cursor. A missing file counts as
    /// empty (length 0): before the first commit the log may not exist.
    pub fn poll(&mut self) -> Result<TailPoll> {
        let data = match self.backend.read(&self.path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        if (data.len() as u64) < self.offset {
            return Ok(TailPoll::Truncated);
        }
        let (records, consumed) = parse_frames(&data[self.offset as usize..], self.offset)?;
        if records.is_empty() {
            return Ok(TailPoll::Idle);
        }
        self.offset += consumed as u64;
        Ok(TailPoll::Records(records))
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("path", &self.path).field("offset", &self.offset).finish()
    }
}

// ---------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------

struct QueueState {
    /// Bumped by [`CommitQueue::reset`] (log truncated by a checkpoint);
    /// waiters from an older epoch are already durable via the checkpoint
    /// image and stop waiting.
    epoch: u64,
    /// Log offset known to be on stable storage in the current epoch.
    synced: u64,
    /// A leader is inside `Wal::sync` on everyone's behalf.
    leader: bool,
}

/// Batches concurrent commit fsyncs behind one `sync` call (group commit).
///
/// Each committer appends its records under the WAL lock, notes the
/// resulting log length as its *target*, then calls
/// [`CommitQueue::sync_through`]. The first arrival becomes the leader,
/// takes the WAL lock, and syncs whatever the log holds *at that moment* —
/// which covers every committer that appended before the leader got the
/// lock. Followers just wait until `synced` reaches their target; under
/// concurrency, N commits complete with far fewer than N fsyncs.
pub struct CommitQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl Default for CommitQueue {
    fn default() -> CommitQueue {
        CommitQueue::new()
    }
}

impl CommitQueue {
    /// A fresh queue (epoch 0, nothing synced).
    pub fn new() -> CommitQueue {
        CommitQueue {
            state: Mutex::new(QueueState { epoch: 0, synced: 0, leader: false }),
            cv: Condvar::new(),
        }
    }

    /// Block until log offset `target` is durable, becoming the sync
    /// leader if nobody else is. `wal` is the engine's WAL slot; lock
    /// order is always wal → state (the state lock is never held while
    /// acquiring the wal lock).
    pub fn sync_through(&self, wal: &Mutex<Option<Wal>>, target: u64) -> Result<()> {
        let entry_epoch;
        {
            let mut st = self.state.lock();
            entry_epoch = st.epoch;
            loop {
                if st.epoch != entry_epoch || st.synced >= target {
                    return Ok(());
                }
                if !st.leader {
                    st.leader = true;
                    break;
                }
                self.cv.wait(&mut st);
            }
        }
        // We are the leader. Sync outside the state lock so followers can
        // queue up behind the next batch while this one hits the disk.
        let mut guard = wal.lock();
        let outcome = match guard.as_mut() {
            Some(w) => {
                let covered = w.len();
                w.sync().map(|()| covered)
            }
            // WAL detached (in-memory database): nothing to make durable.
            None => Ok(target),
        };
        // Publish while still holding the wal lock, so a concurrent
        // checkpoint's truncate-then-reset cannot interleave between our
        // fsync and the bookkeeping.
        let mut st = self.state.lock();
        st.leader = false;
        let result = match outcome {
            Ok(covered) => {
                if st.epoch == entry_epoch && covered > st.synced {
                    st.synced = covered;
                }
                Ok(())
            }
            Err(e) => Err(e),
        };
        drop(st);
        drop(guard);
        self.cv.notify_all();
        // On error, this committer reports failure; woken followers retry
        // as leaders and observe the failure themselves.
        result
    }

    /// The log was truncated (checkpoint): invalidate outstanding targets.
    /// Callers must hold the WAL lock, and must only call this *after* the
    /// checkpoint image is durable — pre-reset waiters are then satisfied
    /// by the image rather than the log.
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.epoch += 1;
        st.synced = 0;
        drop(st);
        self.cv.notify_all();
    }
}

/// Fail the build if we forget the error type grows non-Send.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<StorageError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("quarry-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.wal", std::process::id()))
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn append_sync_replay() {
        let p = tmp("basic");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.sync().unwrap();
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(&recs[0].payload[..], b"one");
        assert_eq!(&recs[1].payload[..], b"two");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        assert!(Wal::replay("/nonexistent/quarry.wal").unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_open() {
        let p = tmp("torn");
        let _ = std::fs::remove_file(&p);
        {
            let mut wal = Wal::open(&p).unwrap();
            wal.append(b"alpha").unwrap();
            wal.append(b"beta").unwrap();
            wal.sync().unwrap();
        }
        // Simulate a torn write: append a valid-looking frame header with a
        // bad checksum and half a payload.
        {
            let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
            f.write_all(&10u32.to_le_bytes()).unwrap();
            f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
            f.write_all(b"par").unwrap();
        }
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs.len(), 2, "torn tail must not produce a record");

        // Re-opening truncates and new appends go after the clean prefix.
        let mut wal = Wal::open(&p).unwrap();
        wal.append(b"gamma").unwrap();
        wal.sync().unwrap();
        let recs = Wal::replay(&p).unwrap();
        let payloads: Vec<_> = recs.iter().map(|r| r.payload.clone()).collect();
        assert_eq!(payloads, vec![Bytes::from("alpha"), Bytes::from("beta"), Bytes::from("gamma")]);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn corrupted_middle_record_stops_replay_there() {
        let p = tmp("midcorrupt");
        let _ = std::fs::remove_file(&p);
        {
            let mut wal = Wal::open(&p).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
            wal.append(b"third").unwrap();
            wal.sync().unwrap();
        }
        // Flip a byte in the middle record's payload.
        let mut data = std::fs::read(&p).unwrap();
        let second_payload_pos = (8 + 5) + 8; // after first frame + second header
        data[second_payload_pos] ^= 0xFF;
        std::fs::write(&p, &data).unwrap();
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(&recs[0].payload[..], b"first");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let p = tmp("reset");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p).unwrap();
        wal.append(b"x").unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert!(wal.is_empty());
        wal.append(b"y").unwrap();
        wal.sync().unwrap();
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(&recs[0].payload[..], b"y");
        std::fs::remove_file(&p).unwrap();
    }

    /// Table-driven corruption suite: each case mutates a three-record log
    /// (`alpha`, `beta`, `gamma`) and states exactly which prefix of
    /// records must survive replay.
    #[test]
    fn replay_corruption_table() {
        struct Case {
            name: &'static str,
            // Given the clean log bytes and each frame's start offset,
            // produce the corrupted bytes.
            mutate: fn(Vec<u8>, &[usize]) -> Vec<u8>,
            surviving: &'static [&'static [u8]],
        }
        let cases: &[Case] = &[
            Case {
                name: "truncated length prefix (2 of 4 length bytes)",
                mutate: |mut data, frames| {
                    data.truncate(frames[2] + 2);
                    data
                },
                surviving: &[b"alpha", b"beta"],
            },
            Case {
                name: "truncated payload (header intact, payload cut short)",
                mutate: |mut data, frames| {
                    data.truncate(frames[2] + 8 + 2);
                    data
                },
                surviving: &[b"alpha", b"beta"],
            },
            Case {
                name: "bad CRC mid-log stops replay at the damage",
                mutate: |mut data, frames| {
                    data[frames[1] + 8] ^= 0xFF;
                    data
                },
                surviving: &[b"alpha"],
            },
            Case {
                name: "valid records after a torn record are NOT recovered",
                mutate: |mut data, frames| {
                    // Tear record 1's payload byte without touching record 2:
                    // replay must not resynchronize past the damage.
                    data[frames[1] + 8] = data[frames[1] + 8].wrapping_add(1);
                    assert!(frames[2] < data.len(), "record 2 still present");
                    data
                },
                surviving: &[b"alpha"],
            },
            Case {
                name: "zero-filled tail parses as no records",
                mutate: |mut data, frames| {
                    data.truncate(frames[1]);
                    data.extend_from_slice(&[0u8; 64]);
                    data
                },
                surviving: &[b"alpha"],
            },
            Case {
                name: "entirely zero-filled log parses as empty",
                mutate: |_, _| vec![0u8; 128],
                surviving: &[],
            },
        ];

        for (i, case) in cases.iter().enumerate() {
            let p = tmp(&format!("table{i}"));
            let _ = std::fs::remove_file(&p);
            let mut frames = Vec::new();
            {
                let mut wal = Wal::open(&p).unwrap();
                for payload in [b"alpha".as_slice(), b"beta", b"gamma"] {
                    frames.push(wal.append(payload).unwrap() as usize);
                }
                wal.sync().unwrap();
            }
            let clean = std::fs::read(&p).unwrap();
            std::fs::write(&p, (case.mutate)(clean, &frames)).unwrap();
            let recs = Wal::replay(&p).unwrap();
            let got: Vec<&[u8]> = recs.iter().map(|r| &r.payload[..]).collect();
            assert_eq!(got, case.surviving, "case: {}", case.name);

            // Re-opening must agree: the log is truncated to the surviving
            // prefix and stays appendable.
            let mut wal = Wal::open(&p).unwrap();
            wal.append(b"appended-after-recovery").unwrap();
            wal.sync().unwrap();
            drop(wal);
            let recs = Wal::replay(&p).unwrap();
            let got: Vec<&[u8]> = recs.iter().map(|r| &r.payload[..]).collect();
            let mut want = case.surviving.to_vec();
            want.push(b"appended-after-recovery");
            assert_eq!(got, want, "post-recovery append, case: {}", case.name);
            std::fs::remove_file(&p).unwrap();
        }
    }

    #[test]
    fn frame_crc_differs_from_payload_crc_and_detects_zero_frames() {
        // A zero-length payload must NOT checksum to zero under frame_crc —
        // that is precisely what makes zero-filled tails detectable.
        assert_eq!(crc32(b""), 0);
        assert_ne!(frame_crc(b""), 0);
        // And the length prefix is covered: same payload, different frame
        // CRC than raw payload CRC.
        assert_ne!(frame_crc(b"abc"), crc32(b"abc"));
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        use crate::faultfs::{FaultBackend, Op};
        let p = tmp("group");
        let _ = std::fs::remove_file(&p);
        let fb = FaultBackend::recording(crate::faultfs::RealBackend);
        let wal = Wal::open_with(Arc::new(fb.clone()), &p).unwrap();
        let wal = Arc::new(Mutex::new(Some(wal)));
        let queue = Arc::new(CommitQueue::new());

        let threads = 4;
        let commits_per_thread = 25;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let wal = Arc::clone(&wal);
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for i in 0..commits_per_thread {
                        let target = {
                            let mut g = wal.lock();
                            let w = g.as_mut().unwrap();
                            w.append(format!("t{t}c{i}").as_bytes()).unwrap();
                            w.len()
                        };
                        queue.sync_through(&wal, target).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // Every record made it to disk...
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs.len(), threads * commits_per_thread);
        // ...and the whole run used at most one fsync per commit (usually
        // far fewer; equality only if no batching ever happened, which the
        // leader/follower protocol makes unlikely but not impossible).
        let syncs = fb.ops().iter().filter(|o| matches!(o, Op::Sync { .. })).count();
        assert!(syncs <= threads * commits_per_thread, "{syncs} syncs");
        assert!(syncs >= 1);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn queue_reset_invalidates_the_synced_watermark() {
        use crate::faultfs::{FaultBackend, Op};
        let p = tmp("qreset");
        let _ = std::fs::remove_file(&p);
        let fb = FaultBackend::recording(crate::faultfs::RealBackend);
        let w = Wal::open_with(Arc::new(fb.clone()), &p).unwrap();
        let wal = Mutex::new(Some(w));
        let queue = CommitQueue::new();

        // Commit a large record: the watermark now covers a big offset.
        let big_target = {
            let mut g = wal.lock();
            let w = g.as_mut().unwrap();
            w.append(&[1u8; 500]).unwrap();
            w.len()
        };
        queue.sync_through(&wal, big_target).unwrap();

        // Checkpoint: truncate the log and reset the queue (wal lock held,
        // image assumed durable).
        {
            let mut g = wal.lock();
            g.as_mut().unwrap().reset().unwrap();
            queue.reset();
        }

        // A small post-reset commit must trigger a real fsync — the stale
        // watermark (500+ bytes) must not satisfy its (smaller) target.
        let syncs_before = fb.ops().iter().filter(|o| matches!(o, Op::Sync { .. })).count();
        let small_target = {
            let mut g = wal.lock();
            let w = g.as_mut().unwrap();
            w.append(b"post").unwrap();
            w.len()
        };
        assert!(small_target < big_target);
        queue.sync_through(&wal, small_target).unwrap();
        let syncs_after = fb.ops().iter().filter(|o| matches!(o, Op::Sync { .. })).count();
        assert_eq!(syncs_after, syncs_before + 1, "post-reset commit must fsync");
        assert_eq!(Wal::replay(&p).unwrap().len(), 1);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn parse_frames_consumes_whole_frames_and_leaves_the_tail() {
        let mut buf = Vec::new();
        for payload in [b"one".as_slice(), b"two"] {
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&frame_crc(payload).to_le_bytes());
            buf.extend_from_slice(payload);
        }
        let whole = buf.len();
        // A half-written third frame: header plus a short payload.
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(&frame_crc(b"0123456789").to_le_bytes());
        buf.extend_from_slice(b"0123");
        let (records, consumed) = parse_frames(&buf, 100).unwrap();
        assert_eq!(consumed, whole, "incomplete tail must stay unconsumed");
        let payloads: Vec<_> = records.iter().map(|r| &r.payload[..]).collect();
        assert_eq!(payloads, vec![b"one".as_slice(), b"two"]);
        assert_eq!(records[0].offset, 100);
        assert_eq!(records[1].offset, 100 + 8 + 3);
        // Corruption below the committed watermark is an error, not a
        // silent stop: a tail reader only ever sees committed bytes.
        let mut bad = buf[..whole].to_vec();
        bad[8] ^= 0xFF;
        assert!(matches!(parse_frames(&bad, 0), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn wal_tail_streams_frames_and_reports_truncation() {
        let p = tmp("tail");
        let _ = std::fs::remove_file(&p);
        let backend: Arc<dyn StorageBackend> = Arc::new(RealBackend);
        let mut tail = WalTail::new(Arc::clone(&backend), &p, 0);
        // Missing file reads as empty.
        assert_eq!(tail.poll().unwrap(), TailPoll::Idle);

        let mut wal = Wal::open(&p).unwrap();
        wal.append(b"alpha").unwrap();
        wal.append(b"beta").unwrap();
        wal.sync().unwrap();
        let TailPoll::Records(recs) = tail.poll().unwrap() else { panic!("expected records") };
        assert_eq!(recs.len(), 2);
        assert_eq!(tail.offset(), wal.len());
        assert_eq!(tail.poll().unwrap(), TailPoll::Idle);

        // Appended-but-unflushed bytes are invisible; after a flush the
        // tail picks them up from its cursor.
        wal.append(b"gamma").unwrap();
        wal.flush().unwrap();
        let TailPoll::Records(recs) = tail.poll().unwrap() else { panic!("expected records") };
        assert_eq!(&recs[0].payload[..], b"gamma");

        // Truncation (a checkpoint) leaves the cursor alone; the caller
        // renegotiates with seek.
        wal.reset().unwrap();
        assert_eq!(tail.poll().unwrap(), TailPoll::Truncated);
        assert_eq!(tail.poll().unwrap(), TailPoll::Truncated);
        tail.seek(0);
        wal.append(b"delta").unwrap();
        wal.sync().unwrap();
        let TailPoll::Records(recs) = tail.poll().unwrap() else { panic!("expected records") };
        assert_eq!(&recs[0].payload[..], b"delta");
        std::fs::remove_file(&p).unwrap();
    }

    proptest! {
        #[test]
        fn prop_replay_returns_exactly_what_was_appended(
            payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..20)
        ) {
            let p = tmp(&format!("prop{}", crc32(&payloads.concat())));
            let _ = std::fs::remove_file(&p);
            {
                let mut wal = Wal::open(&p).unwrap();
                for pl in &payloads {
                    wal.append(pl).unwrap();
                }
                wal.sync().unwrap();
            }
            let recs = Wal::replay(&p).unwrap();
            prop_assert_eq!(recs.len(), payloads.len());
            for (r, pl) in recs.iter().zip(&payloads) {
                prop_assert_eq!(&r.payload[..], &pl[..]);
            }
            std::fs::remove_file(&p).unwrap();
        }
    }
}
