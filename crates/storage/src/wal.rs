//! Checksummed write-ahead log.
//!
//! Framing: every record is `[len: u32 LE][crc32: u32 LE][payload]`. Replay
//! stops at the first frame whose length runs past EOF or whose checksum
//! fails — the torn tail of a crashed write — and reports how many clean
//! records preceded it. The structured store layers transaction semantics on
//! top (see [`crate::structured::recovery`]); this module knows only bytes.
//!
//! # Durability contract
//!
//! [`Wal::append`] only buffers: after it returns, the frame may live
//! entirely in the process's `BufWriter` and is lost on a crash.
//! [`Wal::sync`] is the durability boundary — it flushes the buffer to the
//! file *and* calls `File::sync_data`, so once `sync` returns, every
//! previously appended frame survives both process death and OS/power
//! failure (to the extent the disk honors flush commands). `sync_data` is
//! deliberate: frame data must be on stable storage, but file metadata such
//! as the modification time need not be, and skipping the metadata journal
//! write makes the commit fsync cheaper. Callers that need group commit
//! should batch several `append`s behind one `sync`; the structured engine
//! syncs once per commit/DDL record, never per operation. The checksum
//! framing makes a torn final frame detectable, so a crash *between*
//! `append` and `sync` never corrupts the clean prefix — replay simply
//! truncates the tail at the last record whose CRC verifies.

use crate::error::StorageError;
use crate::Result;
use bytes::{Bytes, BytesMut};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// CRC-32 (IEEE) implemented from scratch; table built at first use.
pub fn crc32(data: &[u8]) -> u32 {
    fn table() -> &'static [u32; 256] {
        use std::sync::OnceLock;
        static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut t = [0u32; 256];
            for (i, e) in t.iter_mut().enumerate() {
                let mut c = i as u32;
                for _ in 0..8 {
                    c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                }
                *e = c;
            }
            t
        })
    }
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = t[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// One replayed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Byte offset of the record's frame in the log file.
    pub offset: u64,
    /// Record payload.
    pub payload: Bytes,
}

/// An append-only log file.
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    offset: u64,
}

impl Wal {
    /// Open (creating if needed) a log at `path`, positioned for appending
    /// after the last *clean* record. Any torn tail is truncated away.
    pub fn open(path: impl AsRef<Path>) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let records = Self::replay(&path)?;
        let clean_end = records.last().map(|r| r.offset + 8 + r.payload.len() as u64).unwrap_or(0);
        let file = OpenOptions::new()
            .create(true)
            .truncate(false) // length is managed explicitly below
            .read(true)
            .write(true)
            .open(&path)?;
        file.set_len(clean_end)?;
        let mut writer = BufWriter::new(file);
        use std::io::Seek;
        writer.seek(std::io::SeekFrom::End(0))?;
        Ok(Wal { path, writer, offset: clean_end })
    }

    /// Append one record; returns its frame offset. Data is buffered — call
    /// [`Wal::sync`] to force it to the OS/file.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        let offset = self.offset;
        let mut frame = BytesMut::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.writer.write_all(&frame)?;
        self.offset += frame.len() as u64;
        Ok(offset)
    }

    /// Flush buffered frames and fsync the file.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// Current append offset (= file length after sync).
    pub fn len(&self) -> u64 {
        self.offset
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.offset == 0
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read every clean record from a log file (no `Wal` instance needed).
    /// A missing file replays as empty. Corruption mid-file ends the replay
    /// at the last clean record rather than erroring: that is exactly the
    /// crash-recovery contract.
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<WalRecord>> {
        let mut data = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        }
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            let start = pos + 8;
            let end = match start.checked_add(len) {
                Some(e) if e <= data.len() => e,
                _ => break, // torn length / truncated payload
            };
            let payload = &data[start..end];
            if crc32(payload) != crc {
                break; // torn or corrupted payload
            }
            records
                .push(WalRecord { offset: pos as u64, payload: Bytes::copy_from_slice(payload) });
            pos = end;
        }
        Ok(records)
    }

    /// Truncate the log to zero length (e.g. after a checkpoint).
    pub fn reset(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().set_len(0)?;
        use std::io::Seek;
        self.writer.seek(std::io::SeekFrom::Start(0))?;
        self.offset = 0;
        Ok(())
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("path", &self.path).field("offset", &self.offset).finish()
    }
}

/// Fail the build if we forget the error type grows non-Send.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<StorageError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("quarry-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.wal", std::process::id()))
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn append_sync_replay() {
        let p = tmp("basic");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.sync().unwrap();
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(&recs[0].payload[..], b"one");
        assert_eq!(&recs[1].payload[..], b"two");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        assert!(Wal::replay("/nonexistent/quarry.wal").unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_open() {
        let p = tmp("torn");
        let _ = std::fs::remove_file(&p);
        {
            let mut wal = Wal::open(&p).unwrap();
            wal.append(b"alpha").unwrap();
            wal.append(b"beta").unwrap();
            wal.sync().unwrap();
        }
        // Simulate a torn write: append a valid-looking frame header with a
        // bad checksum and half a payload.
        {
            let mut f = OpenOptions::new().append(true).open(&p).unwrap();
            f.write_all(&10u32.to_le_bytes()).unwrap();
            f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
            f.write_all(b"par").unwrap();
        }
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs.len(), 2, "torn tail must not produce a record");

        // Re-opening truncates and new appends go after the clean prefix.
        let mut wal = Wal::open(&p).unwrap();
        wal.append(b"gamma").unwrap();
        wal.sync().unwrap();
        let recs = Wal::replay(&p).unwrap();
        let payloads: Vec<_> = recs.iter().map(|r| r.payload.clone()).collect();
        assert_eq!(payloads, vec![Bytes::from("alpha"), Bytes::from("beta"), Bytes::from("gamma")]);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn corrupted_middle_record_stops_replay_there() {
        let p = tmp("midcorrupt");
        let _ = std::fs::remove_file(&p);
        {
            let mut wal = Wal::open(&p).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
            wal.append(b"third").unwrap();
            wal.sync().unwrap();
        }
        // Flip a byte in the middle record's payload.
        let mut data = std::fs::read(&p).unwrap();
        let second_payload_pos = (8 + 5) + 8; // after first frame + second header
        data[second_payload_pos] ^= 0xFF;
        std::fs::write(&p, &data).unwrap();
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(&recs[0].payload[..], b"first");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let p = tmp("reset");
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p).unwrap();
        wal.append(b"x").unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert!(wal.is_empty());
        wal.append(b"y").unwrap();
        wal.sync().unwrap();
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(&recs[0].payload[..], b"y");
        std::fs::remove_file(&p).unwrap();
    }

    proptest! {
        #[test]
        fn prop_replay_returns_exactly_what_was_appended(
            payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..20)
        ) {
            let p = tmp(&format!("prop{}", crc32(&payloads.concat())));
            let _ = std::fs::remove_file(&p);
            {
                let mut wal = Wal::open(&p).unwrap();
                for pl in &payloads {
                    wal.append(pl).unwrap();
                }
                wal.sync().unwrap();
            }
            let recs = Wal::replay(&p).unwrap();
            prop_assert_eq!(recs.len(), payloads.len());
            for (r, pl) in recs.iter().zip(&payloads) {
                prop_assert_eq!(&r.payload[..], &pl[..]);
            }
            std::fs::remove_file(&p).unwrap();
        }
    }
}
