//! On-disk B-trees over the pager: the page-native table and index
//! storage behind checkpoint images.
//!
//! A tree is a set of [`PageType::BtreeLeaf`] / [`PageType::BtreeInner`]
//! pages inside one paged file (see [`crate::page`] for the page format).
//! Leaves hold sorted `(key, value)` entries and link their right sibling
//! through the page header's `next` field, so a full or bounded range scan
//! walks the leaf level without touching interior nodes. Interior nodes
//! hold child page ids separated by keys; a separator is the smallest key
//! reachable through the child to its right, so descent takes the child
//! after the last separator `<=` the probe key.
//!
//! Keys and values are ordinary [`crate::codec`] byte strings. Ordering is
//! *decode-and-compare* under a [`KeyOrder`]: keys are decoded to values
//! and compared with the documented [`Value`] total order, which keeps the
//! on-disk trees bit-consistent with the in-memory `SecondaryIndex`
//! (`BTreeMap<Value, _>`) ordering — no memcomparable encoding, no
//! Int-vs-Float precision traps.
//!
//! Oversized keys/values spill into [`PageType::Overflow`] chains (one
//! chain per blob) so a leaf entry is never larger than ~1.5 KiB and a
//! page always holds at least two entries. Trees here are *build-once*:
//! checkpoint construction inserts but never deletes, so overflow chains
//! referenced by both a leaf and a copied separator are safe to alias —
//! nothing in an image is ever freed until the whole file is replaced by
//! the next checkpoint.
//!
//! Inserting into a full node splits it. A split at the node's right edge
//! (the append path: row ids arrive ascending) keeps everything but the
//! new entry in the left page, yielding ~full pages for sorted loads,
//! while a mid-node split picks the byte-balanced cut. Either way both
//! halves are guaranteed to fit, because the largest possible entry is far
//! smaller than half a page.

use crate::codec;
use crate::error::StorageError;
use crate::page::{Page, PageType, NO_PAGE, PAGE_CAPACITY};
use crate::pager::{read_chain, ChainWriter, Pager};
use crate::value::Value;
use crate::Result;
use std::cmp::Ordering;

/// Largest key stored inline in a node; longer keys spill to an overflow
/// chain.
const MAX_INLINE_KEY: usize = 512;
/// Largest value stored inline in a leaf; longer values spill.
const MAX_INLINE_VAL: usize = 1024;

/// Leaf-entry flag: the key lives in an overflow chain.
const FLAG_KEY_SPILLED: u8 = 0b01;
/// Leaf-entry flag: the value lives in an overflow chain.
const FLAG_VAL_SPILLED: u8 = 0b10;

/// How a tree's keys decode and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyOrder {
    /// One `codec` uvarint: a row id. Row trees.
    RowId,
    /// A `codec` row of primary-key values, compared lexicographically
    /// under the `Value` total order. Primary-key trees.
    PkValues,
    /// One `codec` value followed by a uvarint row id, compared as the
    /// pair. Secondary-index trees; entries sharing the value form one
    /// *group* (see [`BTree::insert`]'s `new_group`).
    ValueRowId,
}

impl KeyOrder {
    /// Compare two encoded keys under this order.
    pub fn compare(self, a: &[u8], b: &[u8]) -> Result<Ordering> {
        match self {
            KeyOrder::RowId => Ok(decode_row_key(a)?.cmp(&decode_row_key(b)?)),
            KeyOrder::PkValues => {
                let ka = codec::read_row(a, &mut 0)?;
                let kb = codec::read_row(b, &mut 0)?;
                Ok(ka.cmp(&kb))
            }
            KeyOrder::ValueRowId => Ok(decode_index_key(a)?.cmp(&decode_index_key(b)?)),
        }
    }

    /// Do two keys belong to the same group? Only `ValueRowId` has groups
    /// wider than exact equality (same indexed value, any row).
    fn same_group(self, a: &[u8], b: &[u8]) -> Result<bool> {
        match self {
            KeyOrder::ValueRowId => Ok(decode_index_key(a)?.0 == decode_index_key(b)?.0),
            _ => Ok(self.compare(a, b)? == Ordering::Equal),
        }
    }
}

/// Encode a row-tree key.
pub fn row_key(row_id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(10);
    let _ = codec::write_u64(&mut out, row_id); // Vec writes are infallible
    out
}

/// Decode a row-tree key.
pub fn decode_row_key(key: &[u8]) -> Result<u64> {
    codec::read_u64(key, &mut 0)
}

/// Encode a primary-key-tree key from the key column values.
pub fn pk_key(key: &[Value]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    codec::write_row(&mut out, key)?;
    Ok(out)
}

/// Encode a secondary-index-tree key: `(indexed value, row id)`.
pub fn index_key(value: &Value, row_id: u64) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    codec::write_value(&mut out, value)?;
    codec::write_u64(&mut out, row_id)?;
    Ok(out)
}

/// Decode a secondary-index-tree key.
pub fn decode_index_key(key: &[u8]) -> Result<(Value, u64)> {
    let pos = &mut 0;
    let value = codec::read_value(key, pos)?;
    let row_id = codec::read_u64(key, pos)?;
    Ok((value, row_id))
}

/// A key or value: inline bytes, or the head page of an overflow chain.
#[derive(Debug, Clone)]
enum Blob {
    Inline(Vec<u8>),
    Spilled { head: u32 },
}

impl Blob {
    fn encoded_len(&self) -> usize {
        match self {
            Blob::Inline(b) => uvarint_len(b.len() as u64) + b.len(),
            Blob::Spilled { head } => uvarint_len(u64::from(*head)),
        }
    }

    fn spilled(&self) -> bool {
        matches!(self, Blob::Spilled { .. })
    }

    fn write(&self, out: &mut Vec<u8>) -> Result<()> {
        match self {
            Blob::Inline(b) => {
                codec::write_u64(out, b.len() as u64)?;
                out.extend_from_slice(b);
            }
            Blob::Spilled { head } => codec::write_u64(out, u64::from(*head))?,
        }
        Ok(())
    }

    fn read(data: &[u8], pos: &mut usize, spilled: bool) -> Result<Blob> {
        if spilled {
            let head = u32::try_from(codec::read_u64(data, pos)?)
                .map_err(|_| StorageError::Corrupt("overflow head exceeds page-id range".into()))?;
            Ok(Blob::Spilled { head })
        } else {
            let len = codec::read_u64(data, pos)? as usize;
            let end = pos
                .checked_add(len)
                .filter(|e| *e <= data.len())
                .ok_or_else(|| StorageError::Corrupt("btree blob overruns its page".into()))?;
            let bytes = data[*pos..end].to_vec();
            *pos = end;
            Ok(Blob::Inline(bytes))
        }
    }
}

fn uvarint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Spill `bytes` to a fresh overflow chain when they exceed `max_inline`.
fn make_blob(pager: &mut Pager, bytes: &[u8], max_inline: usize) -> Result<Blob> {
    if bytes.len() <= max_inline {
        return Ok(Blob::Inline(bytes.to_vec()));
    }
    let mut w = ChainWriter::new(pager, PageType::Overflow)?;
    w.push_record(pager, bytes)?;
    let (head, _) = w.finish(pager)?;
    Ok(Blob::Spilled { head })
}

#[derive(Debug, Clone)]
struct LeafEntry {
    key: Blob,
    val: Blob,
}

impl LeafEntry {
    fn encoded_len(&self) -> usize {
        1 + self.key.encoded_len() + self.val.encoded_len()
    }
}

#[derive(Debug, Clone)]
struct LeafNode {
    entries: Vec<LeafEntry>,
    /// Right sibling ([`NO_PAGE`] for the rightmost leaf).
    next: u32,
}

impl LeafNode {
    fn encoded_len(&self) -> usize {
        self.entries.iter().map(LeafEntry::encoded_len).sum()
    }

    fn encode(&self) -> Result<Page> {
        let mut payload = Vec::with_capacity(self.encoded_len());
        for e in &self.entries {
            let mut flags = 0u8;
            if e.key.spilled() {
                flags |= FLAG_KEY_SPILLED;
            }
            if e.val.spilled() {
                flags |= FLAG_VAL_SPILLED;
            }
            payload.push(flags);
            e.key.write(&mut payload)?;
            e.val.write(&mut payload)?;
        }
        if payload.len() > PAGE_CAPACITY {
            return Err(StorageError::Corrupt("btree leaf overflows its page".into()));
        }
        let mut page = Page::new(PageType::BtreeLeaf);
        page.count = self.entries.len() as u16;
        page.next = self.next;
        page.push(&payload);
        Ok(page)
    }

    fn decode(page: &Page) -> Result<LeafNode> {
        if page.ptype != PageType::BtreeLeaf {
            return Err(StorageError::Corrupt(format!(
                "expected a btree leaf, found {:?}",
                page.ptype
            )));
        }
        let data = page.payload();
        let pos = &mut 0usize;
        let mut entries = Vec::with_capacity(page.count as usize);
        for _ in 0..page.count {
            let flags = *data
                .get(*pos)
                .ok_or_else(|| StorageError::Corrupt("btree leaf entry truncated".into()))?;
            *pos += 1;
            if flags & !(FLAG_KEY_SPILLED | FLAG_VAL_SPILLED) != 0 {
                return Err(StorageError::Corrupt(format!(
                    "unknown btree entry flags {flags:#04x}"
                )));
            }
            let key = Blob::read(data, pos, flags & FLAG_KEY_SPILLED != 0)?;
            let val = Blob::read(data, pos, flags & FLAG_VAL_SPILLED != 0)?;
            entries.push(LeafEntry { key, val });
        }
        if *pos != data.len() {
            return Err(StorageError::Corrupt("btree leaf has trailing bytes".into()));
        }
        Ok(LeafNode { entries, next: page.next })
    }
}

#[derive(Debug, Clone)]
struct InnerNode {
    /// `children.len() == keys.len() + 1`.
    children: Vec<u32>,
    keys: Vec<Blob>,
}

impl InnerNode {
    fn encoded_len(&self) -> usize {
        let mut n = uvarint_len(u64::from(*self.children.first().unwrap_or(&0)));
        for (k, c) in self.keys.iter().zip(self.children.iter().skip(1)) {
            n += 1 + k.encoded_len() + uvarint_len(u64::from(*c));
        }
        n
    }

    fn encode(&self) -> Result<Page> {
        if self.children.len() != self.keys.len() + 1 {
            return Err(StorageError::Corrupt("btree inner node arity mismatch".into()));
        }
        let mut payload = Vec::with_capacity(self.encoded_len());
        let first = self
            .children
            .first()
            .ok_or_else(|| StorageError::Corrupt("btree inner node has no children".into()))?;
        codec::write_u64(&mut payload, u64::from(*first))?;
        for (k, c) in self.keys.iter().zip(self.children.iter().skip(1)) {
            payload.push(if k.spilled() { FLAG_KEY_SPILLED } else { 0 });
            k.write(&mut payload)?;
            codec::write_u64(&mut payload, u64::from(*c))?;
        }
        if payload.len() > PAGE_CAPACITY {
            return Err(StorageError::Corrupt("btree inner node overflows its page".into()));
        }
        let mut page = Page::new(PageType::BtreeInner);
        page.count = self.keys.len() as u16;
        page.push(&payload);
        Ok(page)
    }

    fn decode(page: &Page) -> Result<InnerNode> {
        if page.ptype != PageType::BtreeInner {
            return Err(StorageError::Corrupt(format!(
                "expected a btree inner node, found {:?}",
                page.ptype
            )));
        }
        let data = page.payload();
        let pos = &mut 0usize;
        let read_child = |pos: &mut usize| -> Result<u32> {
            u32::try_from(codec::read_u64(data, pos)?)
                .map_err(|_| StorageError::Corrupt("btree child id exceeds page-id range".into()))
        };
        let mut children = vec![read_child(pos)?];
        let mut keys = Vec::with_capacity(page.count as usize);
        for _ in 0..page.count {
            let flags = *data
                .get(*pos)
                .ok_or_else(|| StorageError::Corrupt("btree inner entry truncated".into()))?;
            *pos += 1;
            if flags & !FLAG_KEY_SPILLED != 0 {
                return Err(StorageError::Corrupt(format!(
                    "unknown btree inner flags {flags:#04x}"
                )));
            }
            keys.push(Blob::read(data, pos, flags & FLAG_KEY_SPILLED != 0)?);
            children.push(read_child(pos)?);
        }
        if *pos != data.len() {
            return Err(StorageError::Corrupt("btree inner node has trailing bytes".into()));
        }
        Ok(InnerNode { children, keys })
    }
}

/// Did an insert open a new key group? (Exact for every order; only
/// interesting for [`KeyOrder::ValueRowId`], where it counts distinct
/// indexed values during a checkpoint build.)
#[derive(Debug, Clone, Copy)]
pub struct InsertOutcome {
    /// No pre-existing entry shares the inserted key's group.
    pub new_group: bool,
}

/// One B-tree inside a paged file. The struct is just `(root, order)`;
/// all I/O goes through the `&mut Pager` passed to each call, mirroring
/// [`ChainWriter`].
#[derive(Debug, Clone, Copy)]
pub struct BTree {
    root: u32,
    order: KeyOrder,
}

impl BTree {
    /// Create an empty tree: one empty leaf as the root.
    pub fn create(pager: &mut Pager, order: KeyOrder) -> Result<BTree> {
        let root = pager.allocate(PageType::BtreeLeaf)?;
        let leaf = LeafNode { entries: Vec::new(), next: NO_PAGE };
        pager.put_page(root, leaf.encode()?)?;
        Ok(BTree { root, order })
    }

    /// Re-attach to a tree previously built in `pager`'s file.
    pub fn open(root: u32, order: KeyOrder) -> BTree {
        BTree { root, order }
    }

    /// Current root page id (changes when the root splits).
    pub fn root(&self) -> u32 {
        self.root
    }

    /// The key order this tree was opened with.
    pub fn order(&self) -> KeyOrder {
        self.order
    }

    fn cycle_check(pager: &Pager, depth: &mut u64) -> Result<()> {
        *depth += 1;
        if *depth > u64::from(pager.page_count()) {
            return Err(StorageError::Corrupt("btree descent cycles".into()));
        }
        Ok(())
    }

    fn blob_bytes(pager: &mut Pager, blob: &Blob) -> Result<Vec<u8>> {
        match blob {
            Blob::Inline(b) => Ok(b.clone()),
            Blob::Spilled { head } => read_chain(pager, *head),
        }
    }

    /// Index of the child to descend into: after the last separator
    /// `<= key`.
    fn child_index(&self, pager: &mut Pager, node: &InnerNode, key: &[u8]) -> Result<usize> {
        let (mut lo, mut hi) = (0usize, node.keys.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            let sep = Self::blob_bytes(pager, &node.keys[mid])?;
            if self.order.compare(&sep, key)? == Ordering::Greater {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Ok(lo)
    }

    /// Position of `key` in a leaf: `(index, exact)` where `index` is the
    /// first entry `>= key`.
    fn leaf_pos(&self, pager: &mut Pager, node: &LeafNode, key: &[u8]) -> Result<(usize, bool)> {
        let (mut lo, mut hi) = (0usize, node.entries.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            let probe = Self::blob_bytes(pager, &node.entries[mid].key)?;
            match self.order.compare(&probe, key)? {
                Ordering::Less => lo = mid + 1,
                Ordering::Equal => return Ok((mid, true)),
                Ordering::Greater => hi = mid,
            }
        }
        Ok((lo, false))
    }

    /// Point lookup: the value stored under `key`, if present.
    pub fn lookup(&self, pager: &mut Pager, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut id = self.root;
        let mut depth = 0;
        loop {
            Self::cycle_check(pager, &mut depth)?;
            let page = pager.read_page(id)?;
            match page.ptype {
                PageType::BtreeInner => {
                    let node = InnerNode::decode(&page)?;
                    let idx = self.child_index(pager, &node, key)?;
                    id = node.children[idx];
                }
                PageType::BtreeLeaf => {
                    let node = LeafNode::decode(&page)?;
                    let (pos, exact) = self.leaf_pos(pager, &node, key)?;
                    return if exact {
                        Ok(Some(Self::blob_bytes(pager, &node.entries[pos].val)?))
                    } else {
                        Ok(None)
                    };
                }
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "btree descent reached a {other:?} page"
                    )));
                }
            }
        }
    }

    /// Insert `key -> val`, splitting full nodes on the way back up.
    /// Inserting an existing key replaces its value. Returns whether the
    /// key opened a new group (see [`KeyOrder::ValueRowId`]).
    pub fn insert(&mut self, pager: &mut Pager, key: &[u8], val: &[u8]) -> Result<InsertOutcome> {
        // Descend to the leaf, remembering (page id, decoded node, child
        // index taken) for the split walk back up.
        let mut path: Vec<(u32, InnerNode, usize)> = Vec::new();
        let mut id = self.root;
        let mut depth = 0;
        let leaf_page = loop {
            Self::cycle_check(pager, &mut depth)?;
            let page = pager.read_page(id)?;
            match page.ptype {
                PageType::BtreeInner => {
                    let node = InnerNode::decode(&page)?;
                    let idx = self.child_index(pager, &node, key)?;
                    let child = node.children[idx];
                    path.push((id, node, idx));
                    id = child;
                }
                PageType::BtreeLeaf => break page,
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "btree descent reached a {other:?} page"
                    )));
                }
            }
        };
        let mut leaf = LeafNode::decode(&leaf_page)?;
        let (pos, exact) = self.leaf_pos(pager, &leaf, key)?;
        if exact {
            // Build-once trees never see duplicate keys in practice, but
            // replace is the well-defined behavior if one arrives.
            leaf.entries[pos].val = make_blob(pager, val, MAX_INLINE_VAL)?;
            pager.put_page(id, leaf.encode()?)?;
            return Ok(InsertOutcome { new_group: false });
        }
        let new_group = self.is_new_group(pager, &leaf, pos, key, &path)?;
        let entry = LeafEntry {
            key: make_blob(pager, key, MAX_INLINE_KEY)?,
            val: make_blob(pager, val, MAX_INLINE_VAL)?,
        };
        leaf.entries.insert(pos, entry);
        if leaf.encoded_len() <= PAGE_CAPACITY {
            pager.put_page(id, leaf.encode()?)?;
            return Ok(InsertOutcome { new_group });
        }

        // Leaf split: left keeps the page id (so parent links and the left
        // sibling's `next` stay valid); the separator is the right page's
        // first key.
        let cut = split_index(
            leaf.entries.iter().map(LeafEntry::encoded_len),
            pos == leaf.entries.len() - 1,
        );
        let right_entries = leaf.entries.split_off(cut);
        let right_id = pager.allocate(PageType::BtreeLeaf)?;
        let right = LeafNode { entries: right_entries, next: leaf.next };
        leaf.next = right_id;
        let mut sep = right.entries[0].key.clone();
        pager.put_page(right_id, right.encode()?)?;
        pager.put_page(id, leaf.encode()?)?;

        // Bubble the separator up, splitting inner nodes as needed.
        let mut promoted_child = right_id;
        while let Some((node_id, mut node, idx)) = path.pop() {
            node.keys.insert(idx, sep);
            node.children.insert(idx + 1, promoted_child);
            if node.encoded_len() <= PAGE_CAPACITY {
                pager.put_page(node_id, node.encode()?)?;
                return Ok(InsertOutcome { new_group });
            }
            // Inner split: the key at the cut moves *up*, children right of
            // it move to the new right node.
            let at_end = idx + 1 == node.keys.len();
            let cut = split_index(
                node.keys
                    .iter()
                    .zip(node.children.iter().skip(1))
                    .map(|(k, c)| 1 + k.encoded_len() + uvarint_len(u64::from(*c))),
                at_end,
            );
            let mut right_keys = node.keys.split_off(cut);
            let right_children = node.children.split_off(cut + 1);
            sep = right_keys.remove(0);
            let right = InnerNode { children: right_children, keys: right_keys };
            let right_id = pager.allocate(PageType::BtreeInner)?;
            pager.put_page(right_id, right.encode()?)?;
            pager.put_page(node_id, node.encode()?)?;
            promoted_child = right_id;
        }

        // The root itself split: grow the tree by one level.
        let new_root = pager.allocate(PageType::BtreeInner)?;
        let root_node = InnerNode { children: vec![self.root, promoted_child], keys: vec![sep] };
        pager.put_page(new_root, root_node.encode()?)?;
        self.root = new_root;
        Ok(InsertOutcome { new_group })
    }

    /// Does the key at insert position `pos` start a new group? Groups are
    /// contiguous in key order, so it suffices to check the in-leaf
    /// neighbors — except at position 0, where the true predecessor is the
    /// rightmost entry of the subtree left of this leaf (found through the
    /// descent path).
    fn is_new_group(
        &self,
        pager: &mut Pager,
        leaf: &LeafNode,
        pos: usize,
        key: &[u8],
        path: &[(u32, InnerNode, usize)],
    ) -> Result<bool> {
        if pos < leaf.entries.len() {
            let succ = Self::blob_bytes(pager, &leaf.entries[pos].key)?;
            if self.order.same_group(&succ, key)? {
                return Ok(false);
            }
        }
        if pos > 0 {
            let pred = Self::blob_bytes(pager, &leaf.entries[pos - 1].key)?;
            return Ok(!self.order.same_group(&pred, key)?);
        }
        // Position 0: walk to the deepest ancestor where we branched right
        // of the leftmost child; the predecessor is the max of its left
        // neighbor subtree. No such ancestor ⇒ this is the tree's minimum.
        let Some((_, node, idx)) = path.iter().rev().find(|(_, _, idx)| *idx > 0) else {
            return Ok(true);
        };
        let Some(pred) = self.subtree_max_key(pager, node.children[idx - 1])? else {
            return Ok(true);
        };
        Ok(!self.order.same_group(&pred, key)?)
    }

    /// The largest key in the subtree rooted at `id` (`None` for an empty
    /// leaf, which only the root of an empty tree can be).
    fn subtree_max_key(&self, pager: &mut Pager, mut id: u32) -> Result<Option<Vec<u8>>> {
        let mut depth = 0;
        loop {
            Self::cycle_check(pager, &mut depth)?;
            let page = pager.read_page(id)?;
            match page.ptype {
                PageType::BtreeInner => {
                    let node = InnerNode::decode(&page)?;
                    id = *node.children.last().ok_or_else(|| {
                        StorageError::Corrupt("btree inner node has no children".into())
                    })?;
                }
                PageType::BtreeLeaf => {
                    let node = LeafNode::decode(&page)?;
                    return match node.entries.last() {
                        Some(e) => Ok(Some(Self::blob_bytes(pager, &e.key)?)),
                        None => Ok(None),
                    };
                }
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "btree descent reached a {other:?} page"
                    )));
                }
            }
        }
    }

    /// Cursor over the whole tree, starting at the smallest key.
    pub fn cursor_first(&self, pager: &mut Pager) -> Result<Cursor> {
        let mut id = self.root;
        let mut depth = 0;
        loop {
            Self::cycle_check(pager, &mut depth)?;
            let page = pager.read_page(id)?;
            match page.ptype {
                PageType::BtreeInner => {
                    let node = InnerNode::decode(&page)?;
                    id = *node.children.first().ok_or_else(|| {
                        StorageError::Corrupt("btree inner node has no children".into())
                    })?;
                }
                PageType::BtreeLeaf => {
                    return Ok(Cursor { node: LeafNode::decode(&page)?, pos: 0 });
                }
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "btree descent reached a {other:?} page"
                    )));
                }
            }
        }
    }

    /// Cursor positioned at the first entry `>= key`.
    pub fn cursor_seek(&self, pager: &mut Pager, key: &[u8]) -> Result<Cursor> {
        let mut id = self.root;
        let mut depth = 0;
        loop {
            Self::cycle_check(pager, &mut depth)?;
            let page = pager.read_page(id)?;
            match page.ptype {
                PageType::BtreeInner => {
                    let node = InnerNode::decode(&page)?;
                    let idx = self.child_index(pager, &node, key)?;
                    id = node.children[idx];
                }
                PageType::BtreeLeaf => {
                    let node = LeafNode::decode(&page)?;
                    let (pos, _) = self.leaf_pos(pager, &node, key)?;
                    return Ok(Cursor { node, pos });
                }
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "btree descent reached a {other:?} page"
                    )));
                }
            }
        }
    }
}

/// Pick a split index over contiguous item sizes: the byte-balanced cut,
/// or — when the insert landed at the right edge — the cut that leaves
/// only the last item on the right (sorted bulk loads then fill pages
/// almost completely). Both sides are guaranteed to fit a page because
/// every item is far smaller than half of one.
fn split_index(sizes: impl Iterator<Item = usize>, at_end: bool) -> usize {
    let sizes: Vec<usize> = sizes.collect();
    if at_end && sizes.len() >= 2 {
        return sizes.len() - 1;
    }
    let total: usize = sizes.iter().sum();
    let mut acc = 0usize;
    for (i, s) in sizes.iter().enumerate() {
        acc += s;
        if acc * 2 >= total && i + 1 < sizes.len() {
            return i + 1;
        }
    }
    // Unreachable for >= 2 items; defensively cut before the last.
    sizes.len().saturating_sub(1).max(1)
}

/// Leaf-level iterator: yields `(key, value)` byte pairs in key order,
/// following sibling links across leaves.
#[derive(Debug)]
pub struct Cursor {
    node: LeafNode,
    pos: usize,
}

impl Cursor {
    /// The next entry, or `None` past the last.
    pub fn next(&mut self, pager: &mut Pager) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        let mut hops = 0u64;
        loop {
            if self.pos < self.node.entries.len() {
                let e = &self.node.entries[self.pos];
                self.pos += 1;
                let key = BTree::blob_bytes(pager, &e.key)?;
                let val = BTree::blob_bytes(pager, &e.val)?;
                return Ok(Some((key, val)));
            }
            if self.node.next == NO_PAGE {
                return Ok(None);
            }
            hops += 1;
            if hops > u64::from(pager.page_count()) {
                return Err(StorageError::Corrupt("btree leaf chain cycles".into()));
            }
            let page = pager.read_page(self.node.next)?;
            self.node = LeafNode::decode(&page)?;
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultfs::RealBackend;
    use std::collections::BTreeMap;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("quarry-btree-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.qpg", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn pager(name: &str, pool: usize) -> (PathBuf, Pager) {
        let p = tmp(name);
        let pager = Pager::create(&RealBackend, &p, pool).unwrap();
        (p, pager)
    }

    #[test]
    fn sequential_row_keys_split_and_read_back() {
        let (p, mut pg) = pager("seq", 8);
        let mut t = BTree::create(&mut pg, KeyOrder::RowId).unwrap();
        let n = 3000u64;
        for i in 0..n {
            let val = format!("row-{i}");
            t.insert(&mut pg, &row_key(i), val.as_bytes()).unwrap();
        }
        assert!(pg.page_count() > 10, "3000 rows must split across pages");
        for i in (0..n).step_by(97) {
            let got = t.lookup(&mut pg, &row_key(i)).unwrap().unwrap();
            assert_eq!(got, format!("row-{i}").into_bytes());
        }
        assert!(t.lookup(&mut pg, &row_key(n)).unwrap().is_none());
        // Full scan sees every key once, ascending.
        let mut cur = t.cursor_first(&mut pg).unwrap();
        let mut want = 0u64;
        while let Some((k, v)) = cur.next(&mut pg).unwrap() {
            assert_eq!(decode_row_key(&k).unwrap(), want);
            assert_eq!(v, format!("row-{want}").into_bytes());
            want += 1;
        }
        assert_eq!(want, n);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn random_order_inserts_match_btreemap_reference() {
        let (p, mut pg) = pager("random", 8);
        let mut t = BTree::create(&mut pg, KeyOrder::PkValues).unwrap();
        let mut reference = BTreeMap::new();
        // Deterministic pseudo-random insertion order (LCG).
        let mut x = 0x2545F491_4F6CDD1Du64;
        for _ in 0..1200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let kv = vec![Value::Text(format!("k{:05}", x % 2000)), Value::Int((x >> 32) as i64)];
            let key = pk_key(&kv).unwrap();
            let val = (x % 1000).to_string().into_bytes();
            t.insert(&mut pg, &key, &val).unwrap();
            reference.insert(kv, val);
        }
        // Iteration order and contents agree with the in-memory reference.
        let mut cur = t.cursor_first(&mut pg).unwrap();
        for (kv, val) in &reference {
            let (k, v) = cur.next(&mut pg).unwrap().expect("entry present");
            assert_eq!(&codec::read_row(&k, &mut 0).unwrap(), kv);
            assert_eq!(&v, val);
        }
        assert!(cur.next(&mut pg).unwrap().is_none());
        // Point lookups agree too.
        for (kv, val) in reference.iter().step_by(37) {
            let got = t.lookup(&mut pg, &pk_key(kv).unwrap()).unwrap().unwrap();
            assert_eq!(&got, val);
        }
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn oversized_keys_and_values_spill_to_overflow_chains() {
        let (p, mut pg) = pager("overflow", 4);
        let mut t = BTree::create(&mut pg, KeyOrder::PkValues).unwrap();
        let long_key = vec![Value::Text("k".repeat(MAX_INLINE_KEY * 2))];
        let huge_val = vec![0xCD; PAGE_CAPACITY * 2 + 77];
        t.insert(&mut pg, &pk_key(&long_key).unwrap(), &huge_val).unwrap();
        t.insert(&mut pg, &pk_key(&[Value::Text("small".into())]).unwrap(), b"v").unwrap();
        assert_eq!(t.lookup(&mut pg, &pk_key(&long_key).unwrap()).unwrap().unwrap(), huge_val);
        // The cursor resolves spilled blobs too, in key order
        // ("k...k" sorts after "small"? no: 'k' < 's').
        let mut cur = t.cursor_first(&mut pg).unwrap();
        let (k1, v1) = cur.next(&mut pg).unwrap().unwrap();
        assert_eq!(codec::read_row(&k1, &mut 0).unwrap(), long_key);
        assert_eq!(v1, huge_val);
        let (_, v2) = cur.next(&mut pg).unwrap().unwrap();
        assert_eq!(v2, b"v");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn value_row_trees_count_groups_exactly() {
        let (p, mut pg) = pager("groups", 8);
        let mut t = BTree::create(&mut pg, KeyOrder::ValueRowId).unwrap();
        let mut distinct = 0usize;
        let mut seen = std::collections::HashSet::new();
        // Scrambled insertion order with heavy duplication: group
        // boundaries land on page boundaries too.
        let mut x = 7u64;
        for row in 0..2500u64 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let v = Value::Int((x % 200) as i64);
            let out = t.insert(&mut pg, &index_key(&v, row).unwrap(), &[]).unwrap();
            if out.new_group {
                distinct += 1;
            }
            seen.insert((x % 200) as i64);
        }
        assert_eq!(distinct, seen.len(), "new_group must count distinct values exactly");
        // Bounded range scan: all rows with value in [10, 12].
        let mut cur = t.cursor_seek(&mut pg, &index_key(&Value::Int(10), 0).unwrap()).unwrap();
        let mut in_range = 0usize;
        while let Some((k, _)) = cur.next(&mut pg).unwrap() {
            let (v, _) = decode_index_key(&k).unwrap();
            if v > Value::Int(12) {
                break;
            }
            assert!(v >= Value::Int(10));
            in_range += 1;
        }
        let mut cur = t.cursor_first(&mut pg).unwrap();
        let mut reference = 0usize;
        while let Some((k, _)) = cur.next(&mut pg).unwrap() {
            let (v, _) = decode_index_key(&k).unwrap();
            if (Value::Int(10)..=Value::Int(12)).contains(&v) {
                reference += 1;
            }
        }
        assert_eq!(in_range, reference);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn tree_survives_flush_and_cold_reopen() {
        let (p, mut pg) = pager("reopen", 4);
        let mut t = BTree::create(&mut pg, KeyOrder::RowId).unwrap();
        for i in 0..800u64 {
            t.insert(&mut pg, &row_key(i), format!("v{i}").as_bytes()).unwrap();
        }
        pg.set_root(t.root());
        pg.flush().unwrap();
        drop(pg);

        let mut pg = Pager::open(&RealBackend, &p, 4).unwrap();
        let t = BTree::open(pg.root(), KeyOrder::RowId);
        for i in [0u64, 1, 399, 799] {
            assert_eq!(
                t.lookup(&mut pg, &row_key(i)).unwrap().unwrap(),
                format!("v{i}").into_bytes()
            );
        }
        let mut cur = t.cursor_seek(&mut pg, &row_key(700)).unwrap();
        let mut n = 0;
        while let Some((k, _)) = cur.next(&mut pg).unwrap() {
            assert!(decode_row_key(&k).unwrap() >= 700);
            n += 1;
        }
        assert_eq!(n, 100);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn empty_tree_behaves() {
        let (p, mut pg) = pager("empty", 4);
        let t = BTree::create(&mut pg, KeyOrder::RowId).unwrap();
        assert!(t.lookup(&mut pg, &row_key(0)).unwrap().is_none());
        let mut cur = t.cursor_first(&mut pg).unwrap();
        assert!(cur.next(&mut pg).unwrap().is_none());
        std::fs::remove_file(&p).unwrap();
    }

    mod props {
        use super::*;
        use proptest::prelude::*;
        use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

        static CASE: AtomicU64 = AtomicU64::new(0);

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Any batch of (key, value) pairs — duplicates included — reads
            /// back exactly like a `BTreeMap` with the same inserts applied.
            #[test]
            fn prop_tree_matches_btreemap(pairs in proptest::collection::vec((0u64..400, any::<u8>(), 0usize..200), 1..80)) {
                let case = CASE.fetch_add(1, AtomicOrdering::SeqCst);
                let path = tmp(&format!("prop-{case}"));
                let mut pg = Pager::create(&RealBackend, &path, 2).unwrap();
                let mut t = BTree::create(&mut pg, KeyOrder::RowId).unwrap();
                let mut reference = BTreeMap::new();
                for &(k, fill, len) in &pairs {
                    let val = vec![fill; len];
                    t.insert(&mut pg, &row_key(k), &val).unwrap();
                    reference.insert(k, val);
                }
                let mut cur = t.cursor_first(&mut pg).unwrap();
                for (k, val) in &reference {
                    let (got_k, got_v) = cur.next(&mut pg).unwrap().expect("entry present");
                    prop_assert_eq!(decode_row_key(&got_k).unwrap(), *k);
                    prop_assert_eq!(&got_v, val);
                }
                prop_assert!(cur.next(&mut pg).unwrap().is_none());
                for (k, val) in &reference {
                    let got = t.lookup(&mut pg, &row_key(*k)).unwrap();
                    prop_assert_eq!(got.as_ref(), Some(val));
                }
                std::fs::remove_file(&path).unwrap();
            }
        }
    }

    #[test]
    fn mixed_type_index_keys_follow_value_order() {
        let (p, mut pg) = pager("mixed", 8);
        let mut t = BTree::create(&mut pg, KeyOrder::ValueRowId).unwrap();
        let values = [
            Value::Text("zeta".into()),
            Value::Null,
            Value::Int(3),
            Value::Float(2.5),
            Value::Bool(true),
            Value::Int(-7),
            Value::Float(f64::NAN),
            Value::Text("alpha".into()),
        ];
        for (row, v) in values.iter().enumerate() {
            t.insert(&mut pg, &index_key(v, row as u64).unwrap(), &[]).unwrap();
        }
        let mut cur = t.cursor_first(&mut pg).unwrap();
        let mut got = Vec::new();
        while let Some((k, _)) = cur.next(&mut pg).unwrap() {
            got.push(decode_index_key(&k).unwrap().0);
        }
        let mut want = values.to_vec();
        want.sort();
        // NaN == NaN is false; compare via the total order instead.
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.cmp(w), Ordering::Equal);
        }
        std::fs::remove_file(&p).unwrap();
    }
}
