//! Quarry's data storage layer.
//!
//! The CIDR 2009 blueprint stores "all forms of data" — raw crawled pages,
//! intermediate structured data, final structured data, and user
//! contributions — and argues each form wants a different device:
//!
//! - overlapping daily crawl snapshots → a *diff-based* store
//!   ([`snapshot::SnapshotStore`], Subversion-style delta encoding);
//! - intermediate structured data, read/written sequentially → an
//!   append-only file store ([`filestore::FileStore`]);
//! - the final structure, edited concurrently by many users → an RDBMS
//!   ([`structured::Database`]: typed tables, secondary indexes, strict-2PL
//!   transactions, WAL-based crash recovery).
//!
//! All three are built from scratch here, on the shared primitives in
//! [`delta`] (line diffs) and [`wal`] (checksummed log records).

#![forbid(unsafe_code)]

pub mod btree;
pub mod codec;
pub mod delta;
pub mod error;
pub mod faultfs;
pub mod filestore;
pub mod page;
pub mod pager;
pub mod snapshot;
pub mod structured;
pub mod value;
pub mod wal;

pub use btree::{BTree, Cursor, KeyOrder};
pub use error::StorageError;
pub use faultfs::{BackendFile, CrashPlan, FaultBackend, Op, RealBackend, StorageBackend};
pub use filestore::FileStore;
pub use page::{Page, PageType, PAGE_CAPACITY, PAGE_SIZE};
pub use pager::{Pager, PoolStats};
pub use snapshot::{SnapshotStats, SnapshotStore};
pub use structured::{
    CheckpointFormat, Column, Database, DbSnapshot, IndexStats, LockManager, LockMode,
    ReplicaApplier, ReplicaPosition, ReplicationSeed, Row, RowId, ScanAccess, TableSchema,
    TableView, TxId, WalCodec,
};
pub use value::{DataType, Value};
pub use wal::{parse_frames, CommitQueue, DurabilityMode, TailPoll, Wal, WalRecord, WalTail};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, StorageError>;
