//! Quarry's data storage layer.
//!
//! The CIDR 2009 blueprint stores "all forms of data" — raw crawled pages,
//! intermediate structured data, final structured data, and user
//! contributions — and argues each form wants a different device:
//!
//! - overlapping daily crawl snapshots → a *diff-based* store
//!   ([`snapshot::SnapshotStore`], Subversion-style delta encoding);
//! - intermediate structured data, read/written sequentially → an
//!   append-only file store ([`filestore::FileStore`]);
//! - the final structure, edited concurrently by many users → an RDBMS
//!   ([`structured::Database`]: typed tables, secondary indexes, strict-2PL
//!   transactions, WAL-based crash recovery).
//!
//! All three are built from scratch here, on the shared primitives in
//! [`delta`] (line diffs) and [`wal`] (checksummed log records).

pub mod delta;
pub mod error;
pub mod faultfs;
pub mod filestore;
pub mod snapshot;
pub mod structured;
pub mod value;
pub mod wal;

pub use error::StorageError;
pub use faultfs::{BackendFile, CrashPlan, FaultBackend, Op, RealBackend, StorageBackend};
pub use filestore::FileStore;
pub use snapshot::{SnapshotStats, SnapshotStore};
pub use structured::{
    Column, Database, DbSnapshot, IndexStats, LockManager, LockMode, Row, RowId, ScanAccess,
    TableSchema, TableView, TxId,
};
pub use value::{DataType, Value};
pub use wal::{Wal, WalRecord};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, StorageError>;
