//! The [`Database`] engine: tables + locks + WAL, behind a thread-safe API.
//!
//! Concurrency model: callers `begin()` a transaction, perform operations
//! (each taking strict-2PL locks that are held to transaction end), then
//! `commit()` (WAL commit record + fsync) or `abort()` (in-memory undo).
//! Auto-commit wrappers exist for one-shot operations. Any operation may
//! fail with [`StorageError::TxAborted`] (wait-die victim); the caller is
//! expected to `abort()` and retry with a fresh transaction.

use crate::codec;
use crate::error::StorageError;
use crate::faultfs::{RealBackend, StorageBackend};
use crate::page::{PageType, NO_PAGE};
use crate::pager::{read_chain, ChainWriter, Pager, PoolStats};
use crate::value::Value;
use crate::wal::{CommitQueue, DurabilityMode, Wal};
use crate::Result;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use super::index::SecondaryIndex;
use super::lock::{LockManager, LockMode, LockTarget};
use super::paged::{self, CheckpointImage, TableBase};
use super::recovery::{LogRecord, WalCodec};
use super::table::{Row, RowId, TableSchema};
use super::view::{DbSnapshot, TableView};

/// Buffer-pool frames used while building or loading a checkpoint image:
/// bounds peak checkpoint memory to ~256 KiB of pages regardless of table
/// size.
const CKPT_POOL_PAGES: usize = 64;

/// Transaction identifier; doubles as the wait-die age (smaller = older).
pub type TxId = u64;

/// Cardinality statistics of one secondary index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Total (value, row) pairs indexed (= indexed rows).
    pub entries: usize,
    /// Number of distinct indexed values.
    pub distinct: usize,
}

impl IndexStats {
    /// Expected rows matched by an equality probe under a uniform
    /// assumption (at least 1 when the index is non-empty).
    pub fn eq_estimate(&self) -> usize {
        self.entries.checked_div(self.distinct).map_or(0, |e| e.max(1))
    }
}

/// On-disk layout of checkpoint images written by [`Database::checkpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointFormat {
    /// Sequential heap chains, fully materialized on open: the PR-7
    /// layout, kept as a measurable baseline and for format-compat
    /// coverage. Both formats are always *readable*; this only selects
    /// what the next checkpoint writes.
    HeapChainV1,
    /// B-tree row/pk/index trees, faulted in on demand (the default).
    /// Opening a database stops materializing tables: resident memory is
    /// bounded by the image's buffer pool, not the corpus.
    #[default]
    BTreeV2,
}

/// How [`Database::select`] reaches a table's rows.
#[derive(Debug, Clone, Copy)]
pub enum ScanAccess<'a> {
    /// Walk the whole heap in row-id order (table-level shared lock).
    Full,
    /// Probe the secondary index on `column` for values in `[lo, hi]`
    /// (inclusive, either bound optional), then fetch the matching rows in
    /// row-id order. Errors when the column carries no index.
    Index {
        /// Indexed column.
        column: &'a str,
        /// Inclusive lower bound (`None` = unbounded).
        lo: Option<&'a Value>,
        /// Inclusive upper bound (`None` = unbounded).
        hi: Option<&'a Value>,
    },
}

/// One table: a checkpoint-image **base** (immutable, on disk, faulted in
/// through a bounded buffer pool) plus an in-memory **overlay** of
/// everything written since that checkpoint. A table with no base (fresh,
/// in-memory, or loaded from a legacy materializing image) is the old
/// fully-resident engine: `base = None` and the overlay is the table.
#[derive(Clone)]
struct Table {
    schema: TableSchema,
    /// Overlay rows: written (or rewritten) since the last checkpoint.
    heap: HashMap<RowId, Row>,
    /// Primary-key values → row id, overlay rows only.
    pk: HashMap<Vec<Value>, RowId>,
    /// Column name → secondary index over the overlay rows (plus, for an
    /// index created after the checkpoint, a backfill of the base rows
    /// until the next checkpoint folds it into a tree).
    indexes: HashMap<String, SecondaryIndex>,
    /// The checkpoint image slice this overlay stacks on, if any.
    base: Option<TableBase>,
    /// Base row ids deleted or superseded since the checkpoint. A base row
    /// is live iff its id is neither here nor in `heap`.
    tombstones: HashSet<RowId>,
    /// Exact number of live rows across base + overlay.
    live_rows: u64,
    next_row: u64,
    /// Write version: stamped from the database-wide write clock on every
    /// change to this table's rows (including undo and redo), so two
    /// observations of the same version imply identical table contents.
    /// Creation takes a fresh stamp too, so a dropped-and-recreated table
    /// never aliases versions with its predecessor.
    version: u64,
    /// Version of the last change that is *committed*. Strictly trails
    /// `version` exactly while some active transaction holds uncommitted
    /// changes to this table — `version != stable_version` is the dirty
    /// test that routes [`Database::snapshot`] onto its rollback path.
    /// Commit and abort restamp both fields together (with a fresh clock
    /// tick), so a stable version, like `version`, never aliases two
    /// different committed contents.
    stable_version: u64,
}

impl Table {
    fn new(schema: TableSchema, stamp: u64) -> Table {
        let indexes = schema.indexes.iter().map(|n| (n.clone(), SecondaryIndex::new())).collect();
        Table {
            schema,
            heap: HashMap::new(),
            pk: HashMap::new(),
            indexes,
            base: None,
            tombstones: HashSet::new(),
            live_rows: 0,
            next_row: 0,
            version: stamp,
            stable_version: stamp,
        }
    }

    /// A lazily-loaded table: empty overlay over a checkpoint base.
    fn from_base(schema: TableSchema, base: TableBase, stamp: u64) -> Table {
        let mut t = Table::new(schema, stamp);
        t.live_rows = base.meta.nrows;
        t.next_row = base.meta.next_row;
        t.base = Some(base);
        t
    }

    /// Drop the overlay onto a freshly-published checkpoint base (which
    /// holds identical contents, so versions are untouched).
    fn reset_to_base(&mut self, base: TableBase) {
        self.heap = HashMap::new();
        self.pk = HashMap::new();
        self.tombstones = HashSet::new();
        self.indexes =
            self.schema.indexes.iter().map(|n| (n.clone(), SecondaryIndex::new())).collect();
        self.live_rows = base.meta.nrows;
        self.next_row = self.next_row.max(base.meta.next_row);
        self.base = Some(base);
    }

    /// The overlay sorted by row id, borrowed — the shape the merge
    /// helpers in [`paged`] consume.
    fn sorted_overlay(heap: &HashMap<RowId, Row>) -> Vec<(RowId, &Row)> {
        let mut v: Vec<(RowId, &Row)> = heap.iter().map(|(id, r)| (*id, r)).collect();
        v.sort_unstable_by_key(|(id, _)| *id);
        v
    }

    fn index_row(&mut self, row_id: RowId, row: &Row) {
        for (name, ix) in &mut self.indexes {
            let ci = self.schema.column_index(name).expect("index column exists");
            ix.insert(row[ci].clone(), row_id);
        }
    }

    fn unindex_row(&mut self, row_id: RowId, row: &Row) {
        for (name, ix) in &mut self.indexes {
            let ci = self.schema.column_index(name).expect("index column exists");
            ix.remove(&row[ci], row_id);
        }
    }

    /// True when `row_id` could have a row in the base image.
    fn in_base_range(&self, row_id: RowId) -> bool {
        self.base.as_ref().is_some_and(|b| row_id.0 < b.meta.next_row)
    }

    /// The base image's row for `row_id`, ignoring the overlay and
    /// tombstones.
    fn base_row(&self, row_id: RowId) -> Result<Option<Row>> {
        match &self.base {
            Some(b) if row_id.0 < b.meta.next_row => b.get_row(row_id),
            _ => Ok(None),
        }
    }

    /// Remove `row_id` from the overlay maps; `None` if not overlaid.
    fn overlay_unhook(&mut self, row_id: RowId) -> Option<Row> {
        let row = self.heap.remove(&row_id)?;
        self.pk.remove(&self.schema.key_of(&row));
        self.unindex_row(row_id, &row);
        Some(row)
    }

    /// Install `row` into the overlay maps.
    fn overlay_hook(&mut self, row_id: RowId, row: Row) {
        self.pk.insert(self.schema.key_of(&row), row_id);
        self.index_row(row_id, &row);
        self.heap.insert(row_id, row);
        self.next_row = self.next_row.max(row_id.0 + 1);
    }

    /// The live row under `row_id`: overlay first, then (unless
    /// tombstoned) the base image.
    fn effective_row(&self, row_id: RowId) -> Result<Option<Row>> {
        if let Some(r) = self.heap.get(&row_id) {
            return Ok(Some(r.clone()));
        }
        if self.tombstones.contains(&row_id) {
            return Ok(None);
        }
        self.base_row(row_id)
    }

    /// The row id holding primary key `key`, if live: overlay pk first;
    /// a base pk hit counts only if that base row isn't shadowed.
    fn lookup_pk(&self, key: &[Value]) -> Result<Option<RowId>> {
        if let Some(id) = self.pk.get(key) {
            return Ok(Some(*id));
        }
        let Some(b) = &self.base else { return Ok(None) };
        match b.lookup_pk(key)? {
            Some(id) if !self.heap.contains_key(&id) && !self.tombstones.contains(&id) => {
                Ok(Some(id))
            }
            _ => Ok(None),
        }
    }

    /// Remove the live row under `row_id` from wherever it lives and
    /// return it: overlay rows are unhooked (tombstoning the id if the
    /// base may also hold it); base rows are tombstoned.
    fn unhook_effective(&mut self, row_id: RowId) -> Result<Option<Row>> {
        if let Some(row) = self.overlay_unhook(row_id) {
            if self.in_base_range(row_id) {
                self.tombstones.insert(row_id);
            }
            return Ok(Some(row));
        }
        if self.tombstones.contains(&row_id) {
            return Ok(None);
        }
        match self.base_row(row_id)? {
            Some(row) => {
                // A post-checkpoint CREATE INDEX backfills base rows into
                // the overlay index; those entries die with the row.
                self.unindex_row(row_id, &row);
                self.tombstones.insert(row_id);
                Ok(Some(row))
            }
            None => Ok(None),
        }
    }

    /// Candidate row ids for an index probe, merged from the base index
    /// tree and the overlay index, in (value, row-id) order.
    fn index_candidates(
        &self,
        column: &str,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Result<Vec<RowId>> {
        let ix = self.indexes.get(column).ok_or_else(|| {
            StorageError::SchemaViolation(format!("no index on {}.{column}", self.schema.name))
        })?;
        let shadowed = |id: RowId| self.heap.contains_key(&id) || self.tombstones.contains(&id);
        paged::merged_index_ids(self.base.as_ref(), column, ix, &shadowed, lo, hi)
    }

    /// Cardinality statistics for the index on `column`, if any. With a
    /// base tree the distinct count is estimated (base distinct + overlay
    /// distinct, capped at the row count); without one it is exact.
    fn index_stats(&self, column: &str) -> Option<IndexStats> {
        let ix = self.indexes.get(column)?;
        let distinct = match self.base.as_ref().and_then(|b| b.meta.indexes.get(column)) {
            Some(m) => (m.distinct as usize + ix.distinct_values()).min(self.live_rows as usize),
            None => ix.distinct_values(),
        };
        Some(IndexStats { entries: self.live_rows as usize, distinct })
    }

    /// Add a secondary index on `column`, backfilled from every live row
    /// (base included — the backfill lives in the overlay index until the
    /// next checkpoint folds it into a tree). No-op when the index already
    /// exists; `Ok(false)` if the column is unknown.
    fn build_index(&mut self, column: &str) -> Result<bool> {
        let Some(ci) = self.schema.column_index(column) else { return Ok(false) };
        if self.indexes.contains_key(column) {
            return Ok(true);
        }
        let mut ix = SecondaryIndex::new();
        let overlay = Self::sorted_overlay(&self.heap);
        paged::for_each_live_row(
            self.base.as_ref(),
            &overlay,
            &self.tombstones,
            &mut |id, row| {
                ix.insert(row[ci].clone(), id);
                Ok(())
            },
        )?;
        self.schema.indexes.push(column.to_string());
        self.indexes.insert(column.to_string(), ix);
        Ok(true)
    }

    /// Apply an insert with a predetermined row id (redo path & normal
    /// path). Convergent under replay: re-inserting a row the base
    /// already holds keeps `live_rows` exact.
    fn apply_insert(&mut self, stamp: u64, row_id: RowId, row: Row) -> Result<()> {
        let prev = self.overlay_unhook(row_id);
        let was_tombstoned = self.tombstones.remove(&row_id);
        let was_live = prev.is_some() || (!was_tombstoned && self.base_row(row_id)?.is_some());
        self.overlay_hook(row_id, row);
        if !was_live {
            self.live_rows += 1;
        }
        self.version = stamp;
        Ok(())
    }

    fn apply_update(&mut self, stamp: u64, row_id: RowId, row: Row) -> Result<Option<Row>> {
        let Some(old) = self.unhook_effective(row_id)? else { return Ok(None) };
        self.overlay_hook(row_id, row);
        self.version = stamp;
        Ok(Some(old))
    }

    fn apply_delete(&mut self, stamp: u64, row_id: RowId) -> Result<Option<Row>> {
        let old = self.unhook_effective(row_id)?;
        if old.is_some() {
            self.live_rows -= 1;
            self.version = stamp;
        }
        Ok(old)
    }
}

/// Per-transaction bookkeeping: how to undo each change, newest last.
enum Undo {
    Insert { table: String, row_id: RowId },
    Update { table: String, row_id: RowId, old: Row },
    Delete { table: String, row_id: RowId, old: Row },
}

impl Undo {
    fn table(&self) -> &str {
        match self {
            Undo::Insert { table, .. }
            | Undo::Update { table, .. }
            | Undo::Delete { table, .. } => table,
        }
    }

    /// Apply the inverse of the logged change to `t`. Used by both abort
    /// (the caller restamps versions) and the snapshot rollback path
    /// (where `t` is a private clone).
    ///
    /// Works purely on the overlay, which makes it infallible: every row
    /// a live transaction wrote sits in the overlay (strict 2PL pins it
    /// there — no checkpoint can fold it away while the transaction is
    /// active, since checkpoints require quiescence), so undo never needs
    /// to read the base image.
    fn apply_to(&self, t: &mut Table) {
        match self {
            Undo::Insert { row_id, .. } => {
                if t.overlay_unhook(*row_id).is_some() {
                    t.live_rows -= 1;
                }
            }
            Undo::Update { row_id, old, .. } => {
                if t.overlay_unhook(*row_id).is_some() {
                    // If the updated row was a base row its id stays
                    // tombstoned; the restored overlay copy shadows it.
                    t.overlay_hook(*row_id, old.clone());
                }
            }
            Undo::Delete { row_id, old, .. } => {
                let prev = t.overlay_unhook(*row_id);
                t.tombstones.remove(row_id);
                t.overlay_hook(*row_id, old.clone());
                if prev.is_none() {
                    t.live_rows += 1;
                }
            }
        }
    }
}

#[derive(Default)]
struct TxState {
    undo: Vec<Undo>,
}

/// A transactional, WAL-backed, multi-table store.
///
/// All methods take `&self`; the engine is internally synchronized and is
/// meant to be shared across threads via `Arc`.
///
/// ```
/// use quarry_storage::{Column, Database, DataType, TableSchema, Value};
///
/// let db = Database::in_memory();
/// db.create_table(TableSchema::new(
///     "cities",
///     vec![Column::new("name", DataType::Text), Column::new("population", DataType::Int)],
///     &["name"],
///     &[],
/// )?)?;
///
/// let tx = db.begin();
/// db.insert(tx, "cities", vec!["Madison".into(), Value::Int(250_000)])?;
/// db.commit(tx)?;
///
/// let rows = db.scan_autocommit("cities")?;
/// assert_eq!(rows[0][1], Value::Int(250_000));
/// # Ok::<(), quarry_storage::StorageError>(())
/// ```
pub struct Database {
    tables: Mutex<HashMap<String, Table>>,
    locks: LockManager,
    wal: Mutex<Option<Wal>>,
    /// Storage backend shared by the WAL and the checkpoint files.
    backend: Arc<dyn StorageBackend>,
    active: Mutex<HashMap<TxId, TxState>>,
    next_tx: AtomicU64,
    /// Monotone clock stamping every table mutation; see [`Table::version`].
    write_clock: AtomicU64,
    /// Last published per-table views, keyed by table name: the snapshot
    /// cache. A table whose version is unchanged since the last
    /// [`Database::snapshot`] reuses its `Arc` instead of re-copying rows.
    views: Mutex<HashMap<String, Arc<TableView>>>,
    /// What a commit waits for before returning (see [`DurabilityMode`]).
    durability: DurabilityMode,
    /// Group-commit queue batching concurrent commit fsyncs (Full mode).
    commit_queue: CommitQueue,
    /// Wire format for WAL records (binary by default; JSON kept for the
    /// bench baseline and legacy logs).
    wal_codec: WalCodec,
    /// The open checkpoint image backing the tables' bases (`None` until
    /// a B-tree image is loaded or published). Held here so diagnostics
    /// can reach the shared buffer pool; the per-table handles live in
    /// each [`Table::base`].
    image: Mutex<Option<Arc<CheckpointImage>>>,
    /// Layout the next [`Database::checkpoint`] writes.
    ckpt_format: CheckpointFormat,
    /// Checkpoint epoch: bumped every time the WAL is truncated (a
    /// checkpoint publishing, or a replica reseed). A WAL byte offset is
    /// only meaningful *within* one epoch, so replication handshakes carry
    /// `(epoch, offset)` pairs and any epoch mismatch forces a reseed.
    /// Process-lifetime only — it restarts at zero on open, which is
    /// always safe because a replica whose remembered epoch cannot be
    /// matched simply reseeds (see `structured::replication`).
    epoch: AtomicU64,
}

impl Database {
    /// An ephemeral in-memory database (no WAL, no durability).
    pub fn in_memory() -> Database {
        Database {
            tables: Mutex::new(HashMap::new()),
            locks: LockManager::new(),
            wal: Mutex::new(None),
            backend: Arc::new(RealBackend),
            active: Mutex::new(HashMap::new()),
            next_tx: AtomicU64::new(1),
            write_clock: AtomicU64::new(0),
            views: Mutex::new(HashMap::new()),
            durability: DurabilityMode::Full,
            commit_queue: CommitQueue::new(),
            wal_codec: WalCodec::BinaryV1,
            image: Mutex::new(None),
            ckpt_format: CheckpointFormat::default(),
            epoch: AtomicU64::new(0),
        }
    }

    /// Path of the durable checkpoint image for a WAL at `path`.
    fn checkpoint_path(path: &Path) -> PathBuf {
        path.with_extension("ckpt")
    }

    /// Path of the in-progress checkpoint build for a WAL at `path`.
    fn checkpoint_tmp_path(path: &Path) -> PathBuf {
        path.with_extension("ckpt-tmp")
    }

    /// Next write-clock stamp.
    fn stamp(&self) -> u64 {
        self.write_clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Open (or recover) a durable database whose WAL lives at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Database> {
        Self::open_with(Arc::new(RealBackend), path)
    }

    /// [`Database::open`] against an explicit storage backend.
    ///
    /// Recovery order: load the durable checkpoint image first (if one was
    /// published by [`Database::checkpoint`]), then replay the WAL over it.
    /// The checkpoint is a paged binary file since the paged engine landed;
    /// older WAL-format (JSON record) checkpoint images are detected by
    /// format probe and still replay, so a database written by the previous
    /// engine opens unchanged. A crash between checkpoint publication (the
    /// rename) and the log reset leaves a WAL holding history the
    /// checkpoint already contains; replaying that suffix over the
    /// checkpoint state is convergent — every record either recreates
    /// exactly what the checkpoint holds or re-applies a committed change
    /// idempotently (see docs/durability.md).
    pub fn open_with(backend: Arc<dyn StorageBackend>, path: impl AsRef<Path>) -> Result<Database> {
        let path = path.as_ref();
        // A stale checkpoint build means we crashed mid-checkpoint, before
        // the rename: the image is unpublished and must be discarded.
        let _ = backend.remove_file(&Self::checkpoint_tmp_path(path));
        let ckpt = Self::checkpoint_path(path);
        let db = Database::in_memory();
        let mut max_tx = 0u64;
        if Pager::is_paged(&*backend, &ckpt)? {
            db.load_checkpoint_image(&*backend, &ckpt)?;
        } else {
            // Legacy checkpoint: a WAL-format file of JSON records.
            let records = Wal::replay_with(&*backend, &ckpt)?;
            max_tx = max_tx.max(db.apply_records(&records)?);
        }
        let records = Wal::replay_with(&*backend, path)?;
        max_tx = max_tx.max(db.apply_records(&records)?);
        db.next_tx.store(max_tx + 1, Ordering::SeqCst);
        *db.wal.lock() = Some(Wal::open_with(Arc::clone(&backend), path)?);
        Ok(Database { backend, ..db })
    }

    /// Load a paged binary checkpoint image.
    ///
    /// A v2 (B-tree) image loads **lazily**: each table becomes an empty
    /// overlay over a [`TableBase`], and rows fault in through the
    /// image's buffer pool on first touch — open-time resident rows are
    /// zero regardless of corpus size. A v1 (heap-chain) image keeps the
    /// legacy behavior and materializes every table; the next checkpoint
    /// migrates it to trees.
    fn load_checkpoint_image(&self, backend: &dyn StorageBackend, path: &Path) -> Result<()> {
        let image = Arc::new(CheckpointImage::open(backend, path, CKPT_POOL_PAGES)?);
        let dir = {
            let mut pager = image.pager.lock();
            let root = pager.root();
            if root == NO_PAGE {
                return Ok(()); // image of an empty database
            }
            read_chain(&mut pager, root)?
        };
        if let Some(entries) = paged::decode_directory_v2(&dir)? {
            let mut tables = self.tables.lock();
            for e in entries {
                let stamp = self.stamp();
                let base = TableBase { image: Arc::clone(&image), meta: Arc::new(e.meta) };
                let t = Table::from_base(e.schema, base, stamp);
                tables.insert(t.schema.name.clone(), t);
            }
            *self.image.lock() = Some(image);
            return Ok(());
        }
        // Legacy v1 image: schemas + heap-chain heads in the directory,
        // each chain a run of `(row_id, row)` records.
        let pos = &mut 0usize;
        let ntables = codec::read_u64(&dir, pos)? as usize;
        let mut entries = Vec::with_capacity(ntables);
        for _ in 0..ntables {
            let schema = codec::read_schema(&dir, pos)?;
            let head = u32::try_from(codec::read_u64(&dir, pos)?)
                .map_err(|_| StorageError::Corrupt("heap head overflows page id".into()))?;
            let nrows = codec::read_u64(&dir, pos)?;
            entries.push((schema, head, nrows));
        }
        if *pos != dir.len() {
            return Err(StorageError::Corrupt("checkpoint directory has trailing bytes".into()));
        }
        let mut tables = self.tables.lock();
        for (schema, head, nrows) in entries {
            let stamp = self.stamp();
            let mut t = Table::new(schema, stamp);
            if head != NO_PAGE {
                let heap = {
                    let mut pager = image.pager.lock();
                    read_chain(&mut pager, head)?
                };
                let hpos = &mut 0usize;
                for _ in 0..nrows {
                    let row_id = RowId(codec::read_u64(&heap, hpos)?);
                    let row = codec::read_row(&heap, hpos)?;
                    let stamp = self.stamp();
                    t.apply_insert(stamp, row_id, row)?;
                }
                if *hpos != heap.len() {
                    return Err(StorageError::Corrupt(format!(
                        "heap chain of table {} has trailing bytes",
                        t.schema.name
                    )));
                }
            }
            t.stable_version = t.version;
            tables.insert(t.schema.name.clone(), t);
        }
        Ok(())
    }

    /// Replay a decoded record sequence into this database (redo-only) and
    /// return the highest transaction id seen. Committed sets are computed
    /// per call, which is safe because no transaction ever spans files:
    /// checkpoints require quiescence, so the WAL after a checkpoint starts
    /// at a transaction boundary.
    fn apply_records(&self, records: &[crate::wal::WalRecord]) -> Result<u64> {
        let db = self;
        // Pass 1: committed set.
        let mut committed = std::collections::HashSet::new();
        let mut max_tx = 0u64;
        let mut decoded = Vec::with_capacity(records.len());
        for r in records {
            let rec = LogRecord::decode(&r.payload)?;
            if let Some(tx) = rec.tx() {
                max_tx = max_tx.max(tx);
            }
            if let LogRecord::Commit { tx } = rec {
                committed.insert(tx);
            }
            decoded.push(rec);
        }
        // Pass 2: redo DDL and committed DML in log order.
        {
            let mut tables = db.tables.lock();
            for rec in decoded {
                match rec {
                    LogRecord::CreateTable { schema } => {
                        let stamp = db.stamp();
                        tables.insert(schema.name.clone(), Table::new(schema, stamp));
                    }
                    LogRecord::DropTable { table } => {
                        tables.remove(&table);
                    }
                    LogRecord::CreateIndex { table, column } => {
                        if let Some(t) = tables.get_mut(&table) {
                            t.build_index(&column)?;
                        }
                    }
                    LogRecord::Insert { tx, table, row_id, row } if committed.contains(&tx) => {
                        let stamp = db.stamp();
                        if let Some(t) = tables.get_mut(&table) {
                            t.apply_insert(stamp, row_id, row)?;
                        }
                    }
                    LogRecord::Update { tx, table, row_id, row } if committed.contains(&tx) => {
                        let stamp = db.stamp();
                        if let Some(t) = tables.get_mut(&table) {
                            t.apply_update(stamp, row_id, row)?;
                        }
                    }
                    LogRecord::Delete { tx, table, row_id } if committed.contains(&tx) => {
                        let stamp = db.stamp();
                        if let Some(t) = tables.get_mut(&table) {
                            t.apply_delete(stamp, row_id)?;
                        }
                    }
                    _ => {}
                }
            }
            // Everything replayed is committed history.
            for t in tables.values_mut() {
                t.stable_version = t.version;
            }
        }
        Ok(max_tx)
    }

    /// Set what a commit waits for before returning. Defaults to
    /// [`DurabilityMode::Full`]. Takes `&mut self`, so the mode is fixed
    /// before the database is shared.
    pub fn set_durability(&mut self, mode: DurabilityMode) {
        self.durability = mode;
    }

    /// The configured durability mode.
    pub fn durability(&self) -> DurabilityMode {
        self.durability
    }

    /// Pick the WAL record wire format (binary by default). Exists so
    /// benchmarks can measure the legacy JSON encoding on identical
    /// workloads; decoding always accepts both.
    pub fn set_wal_codec(&mut self, codec: WalCodec) {
        self.wal_codec = codec;
    }

    /// Pick the layout the next [`Database::checkpoint`] writes (B-tree
    /// by default). Exists so benchmarks can measure the legacy
    /// heap-chain format on identical workloads; *reading* always accepts
    /// both formats.
    pub fn set_checkpoint_format(&mut self, format: CheckpointFormat) {
        self.ckpt_format = format;
    }

    /// The configured checkpoint layout.
    pub fn checkpoint_format(&self) -> CheckpointFormat {
        self.ckpt_format
    }

    /// Rows resident in a table's in-memory overlay (diagnostics: after a
    /// B-tree checkpoint or lazy open this is 0 until writes arrive,
    /// however large the table).
    pub fn overlay_row_count(&self, table: &str) -> Result<usize> {
        let tables = self.tables.lock();
        tables
            .get(table)
            .map(|t| t.heap.len())
            .ok_or_else(|| StorageError::NoSuchTable(table.to_string()))
    }

    /// Buffer-pool counters of the open checkpoint image, if any.
    pub fn image_pool_stats(&self) -> Option<PoolStats> {
        let image = self.image.lock().clone()?;
        Some(image.pool_stats())
    }

    /// Pages currently cached by the open checkpoint image's pool.
    pub fn image_cached_pages(&self) -> Option<usize> {
        let image = self.image.lock().clone()?;
        Some(image.cached_pages())
    }

    /// Disable per-commit fsync (bulk loads; used by benchmarks to isolate
    /// CPU cost from disk cost). Shorthand for
    /// [`Database::set_durability`] with `Full` / `Deferred`.
    pub fn set_sync_commits(&mut self, on: bool) {
        self.durability = if on { DurabilityMode::Full } else { DurabilityMode::Deferred };
    }

    /// Flush and fsync the WAL now, regardless of durability mode. The
    /// explicit durability point for `Normal`/`Deferred` users (e.g. a
    /// serve-loop drain or a bulk load's final barrier).
    pub fn sync_wal(&self) -> Result<()> {
        if let Some(wal) = self.wal.lock().as_mut() {
            wal.sync()?;
        }
        Ok(())
    }

    fn log(&self, rec: &LogRecord) -> Result<()> {
        if let Some(wal) = self.wal.lock().as_mut() {
            wal.append(&rec.encode_with(self.wal_codec)?)?;
        }
        Ok(())
    }

    /// Append `rec` and make it as durable as the configured mode demands.
    /// In `Full` mode the fsync goes through the group-commit queue:
    /// concurrent committers that appended before the queue's leader takes
    /// the WAL lock are covered by the leader's single fsync.
    fn log_durable(&self, rec: &LogRecord) -> Result<()> {
        let target = {
            let mut guard = self.wal.lock();
            let Some(wal) = guard.as_mut() else { return Ok(()) };
            wal.append(&rec.encode_with(self.wal_codec)?)?;
            match self.durability {
                DurabilityMode::Full => wal.len(),
                DurabilityMode::Normal => {
                    wal.flush()?;
                    return Ok(());
                }
                DurabilityMode::Deferred => return Ok(()),
            }
        };
        self.commit_queue.sync_through(&self.wal, target)
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    /// Create a table (auto-committed DDL).
    pub fn create_table(&self, schema: TableSchema) -> Result<()> {
        let mut tables = self.tables.lock();
        if tables.contains_key(&schema.name) {
            return Err(StorageError::SchemaViolation(format!(
                "table {} already exists",
                schema.name
            )));
        }
        self.log_durable(&LogRecord::CreateTable { schema: schema.clone() })?;
        let stamp = self.stamp();
        tables.insert(schema.name.clone(), Table::new(schema, stamp));
        Ok(())
    }

    /// Create a secondary index on `table.column`, backfilled from the
    /// existing rows (auto-committed DDL, `CREATE INDEX`-style). Idempotent:
    /// indexing an already-indexed column is a no-op. The index is
    /// WAL-logged, so it survives recovery, and from this call on it is
    /// maintained by every write and eligible for access-path selection by
    /// the query planner.
    pub fn create_index(&self, table: &str, column: &str) -> Result<()> {
        let mut tables = self.tables.lock();
        let t =
            tables.get_mut(table).ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
        if t.indexes.contains_key(column) {
            return Ok(());
        }
        if t.schema.column_index(column).is_none() {
            return Err(StorageError::SchemaViolation(format!(
                "unknown column {column} in table {table}"
            )));
        }
        self.log_durable(&LogRecord::CreateIndex {
            table: table.to_string(),
            column: column.to_string(),
        })?;
        t.build_index(column)?;
        t.version = self.stamp();
        if !Self::touched_by_active(&self.active.lock(), table) {
            t.stable_version = t.version;
        }
        Ok(())
    }

    /// The write version of a table: any change to the table's rows (or a
    /// drop-and-recreate) yields a new version, so equal versions imply
    /// equal contents. This is what keys the result cache upstairs.
    pub fn table_version(&self, table: &str) -> Result<u64> {
        let tables = self.tables.lock();
        tables
            .get(table)
            .map(|t| t.version)
            .ok_or_else(|| StorageError::NoSuchTable(table.to_string()))
    }

    /// Names of the indexed columns of a table, sorted.
    pub fn indexed_columns(&self, table: &str) -> Result<Vec<String>> {
        let tables = self.tables.lock();
        let t = tables.get(table).ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
        let mut names: Vec<String> = t.indexes.keys().cloned().collect();
        names.sort();
        Ok(names)
    }

    /// Cardinality statistics of one secondary index (`None` when the
    /// column carries no index). Feeds the planner's selectivity estimates.
    pub fn index_stats(&self, table: &str, column: &str) -> Result<Option<IndexStats>> {
        let tables = self.tables.lock();
        let t = tables.get(table).ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
        Ok(t.index_stats(column))
    }

    /// Drop a table (auto-committed DDL).
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let mut tables = self.tables.lock();
        if tables.remove(name).is_none() {
            return Err(StorageError::NoSuchTable(name.to_string()));
        }
        self.log_durable(&LogRecord::DropTable { table: name.to_string() })?;
        Ok(())
    }

    /// Checkpoint: publish a snapshot of current committed state and reset
    /// the WAL, bounding recovery time by live data size instead of history
    /// length. Requires quiescence (no active transactions) and is a no-op
    /// for in-memory databases.
    ///
    /// The image is a paged binary file (see `docs/storage.md`). In the
    /// default [`CheckpointFormat::BTreeV2`] layout each table gets three
    /// B-trees — rows by id, primary keys, and one per secondary index —
    /// plus a v2 directory of schemas and tree roots, all behind per-page
    /// CRCs, streamed through a bounded buffer pool so checkpointing never
    /// materializes the database twice in memory. After publication every
    /// table's in-memory overlay is dropped onto the fresh image: reads
    /// fault base pages in on demand from then on. The legacy
    /// [`CheckpointFormat::HeapChainV1`] layout (sequential heap chains,
    /// fully materialized on open) is still written on request and always
    /// readable.
    ///
    /// Crash-safe by construction: the image is built in a `.ckpt-tmp`
    /// side file, fsynced, then atomically renamed to the durable `.ckpt`
    /// image — the rename is the commit point — and only then is the log
    /// truncated. A crash before the rename leaves the previous
    /// checkpoint + full WAL; a crash between rename and truncation leaves
    /// the new checkpoint + a WAL whose replay over it is convergent (see
    /// [`Database::open_with`]). Recovery always loads the checkpoint
    /// first, then replays the WAL. B-tree page splits add no new crash
    /// windows: every split happens inside the unpublished `.ckpt-tmp`
    /// build, so a torn multi-page split simply discards that build.
    pub fn checkpoint(&self) -> Result<()> {
        {
            let active = self.active.lock();
            if !active.is_empty() {
                return Err(StorageError::TxAborted(format!(
                    "checkpoint requires quiescence; {} transactions active",
                    active.len()
                )));
            }
        }
        // `tables` before `wal`: the commit path acquires them in that
        // order (see audit/lock-order.toml), so taking `wal` first here
        // would be an ABBA inversion. Holding `tables` across the image
        // build also pins exactly the state the checkpoint captures.
        let mut tables = self.tables.lock();
        let mut wal_guard = self.wal.lock();
        let Some(wal) = wal_guard.as_mut() else {
            return Ok(()); // ephemeral database: nothing to compact
        };
        let path = wal.path().to_path_buf();
        let ckpt = Self::checkpoint_path(&path);
        let tmp = Self::checkpoint_tmp_path(&path);
        let _ = self.backend.remove_file(&tmp); // stale build from an earlier crash
        let mut names: Vec<String> = tables.keys().cloned().collect();
        names.sort();
        // Tree roots of the build, collected so the post-publication swap
        // can point each table at its slice of the new image.
        let mut metas: Vec<(String, paged::BaseMeta)> = Vec::new();
        {
            let mut pager = Pager::create(&*self.backend, &tmp, CKPT_POOL_PAGES)?;
            let directory = match self.ckpt_format {
                CheckpointFormat::BTreeV2 => {
                    let mut entries = Vec::with_capacity(names.len());
                    for name in &names {
                        let t = &tables[name];
                        let overlay = Table::sorted_overlay(&t.heap);
                        let meta = paged::build_table_trees(
                            &mut pager,
                            &t.schema,
                            t.base.as_ref(),
                            &overlay,
                            &t.tombstones,
                            t.next_row,
                        )?;
                        metas.push((name.clone(), meta.clone()));
                        entries.push(paged::DirectoryEntry { schema: t.schema.clone(), meta });
                    }
                    paged::encode_directory_v2(&entries)?
                }
                CheckpointFormat::HeapChainV1 => {
                    // One heap chain per table, rows in row-id order (a
                    // deterministic page/op stream for the crash sweeps).
                    let mut scratch = Vec::new();
                    let mut directory = Vec::new();
                    codec::write_u64(&mut directory, names.len() as u64)?;
                    for name in &names {
                        let t = &tables[name];
                        let (head, nrows) = if t.live_rows == 0 {
                            (NO_PAGE, 0)
                        } else {
                            let overlay = Table::sorted_overlay(&t.heap);
                            let mut chain = ChainWriter::new(&mut pager, PageType::Heap)?;
                            let mut nrows = 0u64;
                            paged::for_each_live_row(
                                t.base.as_ref(),
                                &overlay,
                                &t.tombstones,
                                &mut |id, row| {
                                    scratch.clear();
                                    codec::write_u64(&mut scratch, id.0)?;
                                    codec::write_row(&mut scratch, row)?;
                                    chain.push_record(&mut pager, &scratch)?;
                                    nrows += 1;
                                    Ok(())
                                },
                            )?;
                            let (head, written) = chain.finish(&mut pager)?;
                            debug_assert_eq!(written, nrows);
                            (head, nrows)
                        };
                        codec::write_schema(&mut directory, &t.schema)?;
                        codec::write_u64(&mut directory, u64::from(head))?;
                        codec::write_u64(&mut directory, nrows)?;
                    }
                    directory
                }
            };
            let mut dir_chain = ChainWriter::new(&mut pager, PageType::Directory)?;
            dir_chain.push_record(&mut pager, &directory)?;
            let (dir_head, _) = dir_chain.finish(&mut pager)?;
            pager.set_root(dir_head);
            pager.flush()?;
        }
        self.backend.rename(&tmp, &ckpt)?; // commit point
        wal.reset()?;
        // Invalidate the group-commit watermark (log offsets restarted at
        // zero). Safe to do only now: the image published by the rename
        // already covers everything pre-reset waiters were waiting for.
        self.commit_queue.reset();
        // New epoch: replication offsets into the pre-truncation log are
        // now meaningless, and any tailing replica must renegotiate.
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.ckpt_format == CheckpointFormat::BTreeV2 {
            // Swap every table onto the fresh image and drop the overlays:
            // from here on, reads fault base pages in on demand. Contents
            // are unchanged, so versions (and cached snapshot views, which
            // keep the old image alive via their own `Arc`s) stay valid.
            // If the open fails the checkpoint is still durable and the
            // tables simply stay resident; the error is surfaced.
            let image = Arc::new(CheckpointImage::open(&*self.backend, &ckpt, CKPT_POOL_PAGES)?);
            for (name, meta) in metas {
                if let Some(t) = tables.get_mut(&name) {
                    t.reset_to_base(TableBase { image: Arc::clone(&image), meta: Arc::new(meta) });
                }
            }
            *self.image.lock() = Some(image);
        }
        Ok(())
    }

    /// The schema of a table.
    pub fn schema(&self, table: &str) -> Result<TableSchema> {
        let tables = self.tables.lock();
        tables
            .get(table)
            .map(|t| t.schema.clone())
            .ok_or_else(|| StorageError::NoSuchTable(table.to_string()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Replace a table's schema and rows wholesale (schema-evolution
    /// migration path; auto-committed, logged as drop + create + inserts).
    pub fn replace_table(&self, schema: TableSchema, rows: Vec<Row>) -> Result<()> {
        for row in &rows {
            schema.validate(row)?;
        }
        let name = schema.name.clone();
        {
            let tables = self.tables.lock();
            if !tables.contains_key(&name) {
                return Err(StorageError::NoSuchTable(name));
            }
        }
        self.drop_table(&name)?;
        self.create_table(schema)?;
        let tx = self.begin();
        for row in rows {
            self.insert(tx, &name, row)?;
        }
        self.commit(tx)
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Start a transaction.
    pub fn begin(&self) -> TxId {
        let tx = self.next_tx.fetch_add(1, Ordering::SeqCst);
        // quarry-audit: allow(QA102, reason = "HashMap::insert on the guarded map, not Database::insert; the name-based call graph over-approximates")
        self.active.lock().insert(tx, TxState::default());
        // Begin records make logs self-describing; recovery doesn't need them.
        let _ = self.log(&LogRecord::Begin { tx });
        tx
    }

    /// True when any active transaction in `active` holds uncommitted
    /// changes to `table`. Callers hold the `tables` lock (lock order is
    /// always tables → active).
    fn touched_by_active(active: &HashMap<TxId, TxState>, table: &str) -> bool {
        active.values().any(|st| st.undo.iter().any(|u| u.table() == table))
    }

    /// Tables touched by `state`, deduplicated.
    fn touched_tables(state: &TxState) -> Vec<String> {
        let mut names: Vec<String> = state.undo.iter().map(|u| u.table().to_string()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Commit: durable once this returns.
    ///
    /// Every touched table takes a fresh *post-commit* stamp on both its
    /// version fields, so the committed-content version only changes at
    /// commit boundaries — a [`Database::snapshot`] taken mid-transaction
    /// sorts strictly before the commit in version order.
    pub fn commit(&self, tx: TxId) -> Result<()> {
        {
            let mut tables = self.tables.lock();
            let mut active = self.active.lock();
            let state = active.remove(&tx).ok_or(StorageError::NoSuchTx(tx))?;
            for name in Self::touched_tables(&state) {
                if let Some(t) = tables.get_mut(&name) {
                    t.version = self.stamp();
                    // Another in-flight writer on the same table keeps it
                    // dirty; its commit/abort will publish a stable stamp.
                    if !Self::touched_by_active(&active, &name) {
                        t.stable_version = t.version;
                    }
                }
            }
        }
        self.log_durable(&LogRecord::Commit { tx })?;
        self.locks.release_all(tx);
        Ok(())
    }

    /// Abort: rolls back every in-memory change of `tx`.
    pub fn abort(&self, tx: TxId) -> Result<()> {
        {
            // Take the tables lock *before* removing the transaction from
            // the active set: a concurrent snapshot must never observe the
            // not-yet-rolled-back changes as committed state.
            let mut tables = self.tables.lock();
            let mut active = self.active.lock();
            let state = active.remove(&tx).ok_or(StorageError::NoSuchTx(tx))?;
            for undo in state.undo.iter().rev() {
                if let Some(t) = tables.get_mut(undo.table()) {
                    undo.apply_to(t);
                    t.version = self.stamp();
                }
            }
            for name in Self::touched_tables(&state) {
                if let Some(t) = tables.get_mut(&name) {
                    if !Self::touched_by_active(&active, &name) {
                        t.stable_version = t.version;
                    }
                }
            }
        }
        self.log(&LogRecord::Abort { tx })?;
        self.locks.release_all(tx);
        Ok(())
    }

    fn check_active(&self, tx: TxId) -> Result<()> {
        if self.active.lock().contains_key(&tx) {
            Ok(())
        } else {
            Err(StorageError::NoSuchTx(tx))
        }
    }

    fn push_undo(&self, tx: TxId, undo: Undo) {
        if let Some(st) = self.active.lock().get_mut(&tx) {
            st.undo.push(undo);
        }
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    /// Insert a row. Fails on duplicate primary key.
    pub fn insert(&self, tx: TxId, table: &str, row: Row) -> Result<RowId> {
        self.check_active(tx)?;
        self.locks.acquire(
            tx,
            LockTarget::Table(table.to_string()),
            LockMode::IntentionExclusive,
        )?;
        let mut tables = self.tables.lock();
        let t =
            tables.get_mut(table).ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
        t.schema.validate(&row)?;
        let key = t.schema.key_of(&row);
        if t.lookup_pk(&key)?.is_some() {
            return Err(StorageError::DuplicateKey(format!("{table} key {key:?} already exists")));
        }
        let row_id = RowId(t.next_row);
        // Lock the new row before publishing it.
        self.locks.acquire(tx, LockTarget::Row(table.to_string(), row_id), LockMode::Exclusive)?;
        self.log(&LogRecord::Insert { tx, table: table.to_string(), row_id, row: row.clone() })?;
        let stamp = self.stamp();
        t.apply_insert(stamp, row_id, row)?;
        // Register the undo entry while still holding the tables lock: a
        // snapshot taken in between must see the table as dirty.
        self.push_undo(tx, Undo::Insert { table: table.to_string(), row_id });
        drop(tables);
        Ok(row_id)
    }

    fn row_id_for_key(&self, table: &str, key: &[Value]) -> Result<RowId> {
        let tables = self.tables.lock();
        let t = tables.get(table).ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
        t.lookup_pk(key)?.ok_or_else(|| StorageError::NotFound(format!("{table} key {key:?}")))
    }

    /// Read one row by primary key (shared-locked until transaction end).
    pub fn get(&self, tx: TxId, table: &str, key: &[Value]) -> Result<Row> {
        self.check_active(tx)?;
        self.locks.acquire(tx, LockTarget::Table(table.to_string()), LockMode::IntentionShared)?;
        let row_id = self.row_id_for_key(table, key)?;
        self.locks.acquire(tx, LockTarget::Row(table.to_string(), row_id), LockMode::Shared)?;
        let tables = self.tables.lock();
        let t = tables.get(table).ok_or_else(|| StorageError::NoSuchTable(table.into()))?;
        t.effective_row(row_id)?
            .ok_or_else(|| StorageError::NotFound(format!("{table} key {key:?}")))
    }

    /// Replace the row at `key` with `row` (which may change the key).
    pub fn update(&self, tx: TxId, table: &str, key: &[Value], row: Row) -> Result<()> {
        self.check_active(tx)?;
        self.locks.acquire(
            tx,
            LockTarget::Table(table.to_string()),
            LockMode::IntentionExclusive,
        )?;
        let row_id = self.row_id_for_key(table, key)?;
        self.locks.acquire(tx, LockTarget::Row(table.to_string(), row_id), LockMode::Exclusive)?;
        let mut tables = self.tables.lock();
        let t =
            tables.get_mut(table).ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
        t.schema.validate(&row)?;
        let new_key = t.schema.key_of(&row);
        if new_key != key && t.pk.contains_key(&new_key) {
            return Err(StorageError::DuplicateKey(format!(
                "{table} key {new_key:?} already exists"
            )));
        }
        self.log(&LogRecord::Update { tx, table: table.to_string(), row_id, row: row.clone() })?;
        let stamp = self.stamp();
        let old = t
            .apply_update(stamp, row_id, row)?
            .ok_or_else(|| StorageError::NotFound(format!("{table} row {row_id}")))?;
        self.push_undo(tx, Undo::Update { table: table.to_string(), row_id, old });
        drop(tables);
        Ok(())
    }

    /// Delete the row at `key`.
    pub fn delete(&self, tx: TxId, table: &str, key: &[Value]) -> Result<()> {
        self.check_active(tx)?;
        self.locks.acquire(
            tx,
            LockTarget::Table(table.to_string()),
            LockMode::IntentionExclusive,
        )?;
        let row_id = self.row_id_for_key(table, key)?;
        self.locks.acquire(tx, LockTarget::Row(table.to_string(), row_id), LockMode::Exclusive)?;
        let mut tables = self.tables.lock();
        let t =
            tables.get_mut(table).ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
        self.log(&LogRecord::Delete { tx, table: table.to_string(), row_id })?;
        let stamp = self.stamp();
        let old = t
            .apply_delete(stamp, row_id)?
            .ok_or_else(|| StorageError::NotFound(format!("{table} row {row_id}")))?;
        self.push_undo(tx, Undo::Delete { table: table.to_string(), row_id, old });
        drop(tables);
        Ok(())
    }

    /// Scan a whole table (table-level shared lock; serializes against
    /// writers, including inserts — no phantoms).
    pub fn scan(&self, tx: TxId, table: &str) -> Result<Vec<Row>> {
        self.check_active(tx)?;
        self.locks.acquire(tx, LockTarget::Table(table.to_string()), LockMode::Shared)?;
        let tables = self.tables.lock();
        let t = tables.get(table).ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
        let overlay = Table::sorted_overlay(&t.heap);
        let mut out = Vec::with_capacity(t.live_rows as usize);
        paged::for_each_live_row(t.base.as_ref(), &overlay, &t.tombstones, &mut |_, row| {
            out.push(row.clone());
            Ok(())
        })?;
        Ok(out)
    }

    /// Equality probe on a secondary index.
    pub fn index_lookup(
        &self,
        tx: TxId,
        table: &str,
        column: &str,
        value: &Value,
    ) -> Result<Vec<Row>> {
        self.index_range(tx, table, column, Some(value), Some(value))
    }

    /// Range probe (inclusive bounds) on a secondary index.
    pub fn index_range(
        &self,
        tx: TxId,
        table: &str,
        column: &str,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Result<Vec<Row>> {
        self.check_active(tx)?;
        self.locks.acquire(tx, LockTarget::Table(table.to_string()), LockMode::IntentionShared)?;
        // Collect candidate row ids under the table mutex, then shared-lock them.
        let row_ids: Vec<RowId> = {
            let tables = self.tables.lock();
            let t =
                tables.get(table).ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
            t.index_candidates(column, lo, hi)?
        };
        let mut rows = Vec::with_capacity(row_ids.len());
        for row_id in row_ids {
            self.locks.acquire(tx, LockTarget::Row(table.to_string(), row_id), LockMode::Shared)?;
            let tables = self.tables.lock();
            let t = tables.get(table).ok_or_else(|| StorageError::NoSuchTable(table.into()))?;
            if let Some(r) = t.effective_row(row_id)? {
                rows.push(r);
            }
        }
        Ok(rows)
    }

    /// Filtered, projected read — the query planner's table-access
    /// primitive, with predicate and projection *pushdown*: `filter` is
    /// evaluated against each candidate row while it is still borrowed from
    /// the heap, and only the `projection` columns of accepted rows are
    /// cloned out. Non-matching rows are never copied at all.
    ///
    /// Rows come back in row-id (insertion) order for **both** access
    /// paths, so an index-routed read is bit-identical — including order —
    /// to a full scan with the same filter. Returns `(rows, scanned)` where
    /// `scanned` counts the candidate rows the filter examined.
    ///
    /// Locking matches the underlying path: `Full` takes a table-level
    /// shared lock (serializes against writers, no phantoms);
    /// `Index` takes intention-shared + per-row shared locks, like
    /// [`Database::index_range`].
    pub fn select(
        &self,
        tx: TxId,
        table: &str,
        access: ScanAccess<'_>,
        filter: &mut dyn FnMut(&[Value]) -> bool,
        projection: Option<&[usize]>,
    ) -> Result<(Vec<Row>, usize)> {
        self.check_active(tx)?;
        let materialize = |row: &Row| -> Row {
            match projection {
                Some(cols) => cols.iter().map(|&i| row[i].clone()).collect(),
                None => row.clone(),
            }
        };
        match access {
            ScanAccess::Full => {
                self.locks.acquire(tx, LockTarget::Table(table.to_string()), LockMode::Shared)?;
                let tables = self.tables.lock();
                let t = tables
                    .get(table)
                    .ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
                let overlay = Table::sorted_overlay(&t.heap);
                let mut out = Vec::new();
                let mut scanned = 0usize;
                paged::for_each_live_row(
                    t.base.as_ref(),
                    &overlay,
                    &t.tombstones,
                    &mut |_, row| {
                        scanned += 1;
                        if filter(row) {
                            out.push(materialize(row));
                        }
                        Ok(())
                    },
                )?;
                Ok((out, scanned))
            }
            ScanAccess::Index { column, lo, hi } => {
                self.locks.acquire(
                    tx,
                    LockTarget::Table(table.to_string()),
                    LockMode::IntentionShared,
                )?;
                let mut row_ids: Vec<RowId> = {
                    let tables = self.tables.lock();
                    let t = tables
                        .get(table)
                        .ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
                    t.index_candidates(column, lo, hi)?
                };
                // Row-id order = full-scan order; also canonicalizes the
                // lock-acquisition order.
                row_ids.sort_unstable();
                for row_id in &row_ids {
                    self.locks.acquire(
                        tx,
                        LockTarget::Row(table.to_string(), *row_id),
                        LockMode::Shared,
                    )?;
                }
                let tables = self.tables.lock();
                let t = tables
                    .get(table)
                    .ok_or_else(|| StorageError::NoSuchTable(table.to_string()))?;
                let mut out = Vec::new();
                let mut scanned = 0usize;
                for row_id in &row_ids {
                    if let Some(row) = t.effective_row(*row_id)? {
                        scanned += 1;
                        if filter(&row) {
                            out.push(materialize(&row));
                        }
                    }
                }
                Ok((out, scanned))
            }
        }
    }

    // ------------------------------------------------------------------
    // MVCC snapshots
    // ------------------------------------------------------------------

    /// Capture a consistent, immutable snapshot of all **committed**
    /// state, pinned to the current write-clock LSN.
    ///
    /// Reads against the returned [`DbSnapshot`] take no locks and never
    /// block (or are blocked by) writers. The snapshot is cheap when the
    /// database is quiet: per-table views are cached in the engine and
    /// re-used by `Arc` as long as a table's version is unchanged, so the
    /// steady-state cost is one `Arc` clone per table. Only tables that
    /// changed since the last snapshot are re-copied; tables with
    /// uncommitted in-flight changes are rolled back to their committed
    /// contents via the owning transactions' undo logs (strict 2PL makes
    /// undo entries of concurrent transactions row-disjoint, so the
    /// rollback order across transactions is immaterial).
    pub fn snapshot(&self) -> DbSnapshot {
        let tables = self.tables.lock();
        let active = self.active.lock();
        let mut cache = self.views.lock();
        cache.retain(|name, _| tables.contains_key(name));
        let mut out = HashMap::with_capacity(tables.len());
        for (name, t) in tables.iter() {
            let clean = t.version == t.stable_version;
            let view = if clean {
                // quarry-audit: allow(QA102, reason = "HashMap::get on the view cache, not Database::get; the name-based call graph over-approximates")
                let hit = cache.get(name).filter(|v| v.version() == t.version).cloned();
                match hit {
                    Some(v) => v,
                    None => {
                        let v = Arc::new(TableView::capture(
                            t.schema.clone(),
                            &t.heap,
                            &t.indexes,
                            t.base.clone(),
                            &t.tombstones,
                            t.live_rows,
                            t.version,
                        ));
                        // quarry-audit: allow(QA102, reason = "HashMap::insert on the view cache, not Database::insert")
                        cache.insert(name.clone(), Arc::clone(&v));
                        v
                    }
                }
            } else {
                // Dirty: subtract every active transaction's
                // uncommitted changes from a private clone. The view
                // is stamped with a fresh clock tick (never cached):
                // a fresh stamp can't alias any other content, and the
                // table will publish a real stable version at the next
                // commit or abort.
                let mut tmp = t.clone();
                for st in active.values() {
                    for undo in st.undo.iter().rev() {
                        if undo.table() == name.as_str() {
                            undo.apply_to(&mut tmp);
                        }
                    }
                }
                Arc::new(TableView::capture(
                    tmp.schema,
                    &tmp.heap,
                    &tmp.indexes,
                    tmp.base,
                    &tmp.tombstones,
                    tmp.live_rows,
                    self.stamp(),
                ))
            };
            // quarry-audit: allow(QA102, reason = "HashMap::insert on the result map, not Database::insert")
            out.insert(name.clone(), view);
        }
        let lsn = self.write_clock.load(Ordering::SeqCst);
        DbSnapshot::new(lsn, out)
    }

    /// Number of rows in a table (unlocked, diagnostics only).
    pub fn row_count(&self, table: &str) -> Result<usize> {
        let tables = self.tables.lock();
        tables
            .get(table)
            .map(|t| t.live_rows as usize)
            .ok_or_else(|| StorageError::NoSuchTable(table.to_string()))
    }

    // ------------------------------------------------------------------
    // Replication support (see `structured::replication`)
    // ------------------------------------------------------------------

    /// The current checkpoint epoch (see the `epoch` field docs): a WAL
    /// byte offset identifies a stream position only together with the
    /// epoch it was read under.
    pub fn checkpoint_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Current WAL append offset in bytes (0 for in-memory databases).
    /// At a transaction boundary under `Full`/`Normal` durability this
    /// equals the flushed file length, which makes it the primary-side
    /// target of the replication ack barrier (`docs/replication.md`).
    pub fn wal_len(&self) -> u64 {
        self.wal.lock().as_ref().map(Wal::len).unwrap_or(0)
    }

    /// Path of the WAL file (`None` for in-memory databases).
    pub fn wal_path(&self) -> Option<PathBuf> {
        self.wal.lock().as_ref().map(|w| w.path().to_path_buf())
    }

    /// The storage backend the WAL and checkpoints go through. A WAL
    /// tail reader must read through this backend so fault injection
    /// observes one consistent world: backend reads are not crash
    /// points, but they do die with an injected crash — exactly the
    /// "primary death" a replica must survive.
    pub fn storage_backend(&self) -> Arc<dyn StorageBackend> {
        Arc::clone(&self.backend)
    }

    /// The current write-clock value — the LSN a snapshot taken *now*
    /// would pin to.
    pub fn current_lsn(&self) -> u64 {
        self.write_clock.load(Ordering::SeqCst)
    }

    /// Capture a reseed payload: the current epoch, the WAL offset
    /// streaming resumes from, and a synthetic committed record stream
    /// that recreates every table when replayed into an empty database.
    /// Uncommitted changes of in-flight transactions are rolled back out
    /// of the capture exactly like [`Database::snapshot`] does. The
    /// offset is read under the same `tables` lock as the records, so
    /// frames at `>= start_offset` may double-cover the seed's tail —
    /// which is safe, because replaying committed records over state
    /// that already contains them is convergent (the checkpoint-recovery
    /// argument; see docs/durability.md).
    pub fn seed_state(&self) -> Result<super::replication::ReplicationSeed> {
        let tables = self.tables.lock();
        let active = self.active.lock();
        let epoch = self.epoch.load(Ordering::SeqCst);
        let start_offset = self.wal.lock().as_ref().map(Wal::len).unwrap_or(0);
        let tx = self.next_tx.fetch_add(1, Ordering::SeqCst);
        let mut names: Vec<String> = tables.keys().cloned().collect();
        names.sort();
        let mut records = Vec::new();
        for name in &names {
            records.push(LogRecord::CreateTable { schema: tables[name].schema.clone() });
        }
        records.push(LogRecord::Begin { tx });
        for name in &names {
            let t = &tables[name];
            let rolled_back;
            let t = if t.version == t.stable_version {
                t
            } else {
                // Dirty: subtract uncommitted in-flight changes from a
                // private clone (strict 2PL makes undo entries of
                // concurrent transactions row-disjoint).
                let mut tmp = t.clone();
                for st in active.values() {
                    for undo in st.undo.iter().rev() {
                        if undo.table() == name.as_str() {
                            undo.apply_to(&mut tmp);
                        }
                    }
                }
                rolled_back = tmp;
                &rolled_back
            };
            let overlay = Table::sorted_overlay(&t.heap);
            paged::for_each_live_row(t.base.as_ref(), &overlay, &t.tombstones, &mut |id, row| {
                records.push(LogRecord::Insert {
                    tx,
                    table: name.clone(),
                    row_id: id,
                    row: row.clone(),
                });
                Ok(())
            })?;
        }
        records.push(LogRecord::Commit { tx });
        Ok(super::replication::ReplicationSeed { epoch, start_offset, records })
    }

    /// Replication (replica side): append one already-encoded WAL frame
    /// payload verbatim to this database's own log and flush it, so the
    /// replica's log is a real recovery source for its applied history.
    pub fn replicate_append(&self, payload: &[u8]) -> Result<()> {
        let mut guard = self.wal.lock();
        if let Some(wal) = guard.as_mut() {
            wal.append(payload)?;
            wal.flush()?;
        }
        Ok(())
    }

    /// Replication (replica side): apply the DML records of one
    /// *committed* transaction in log order. Stamps and stable versions
    /// move exactly like recovery's redo pass, so the result is
    /// bit-identical to a local replay of the same records.
    pub fn replicate_apply_commit(&self, records: &[LogRecord]) -> Result<()> {
        let mut tables = self.tables.lock();
        for rec in records {
            match rec {
                LogRecord::Insert { table, row_id, row, .. } => {
                    let stamp = self.stamp();
                    if let Some(t) = tables.get_mut(table) {
                        t.apply_insert(stamp, *row_id, row.clone())?;
                    }
                }
                LogRecord::Update { table, row_id, row, .. } => {
                    let stamp = self.stamp();
                    if let Some(t) = tables.get_mut(table) {
                        t.apply_update(stamp, *row_id, row.clone())?;
                    }
                }
                LogRecord::Delete { table, row_id, .. } => {
                    let stamp = self.stamp();
                    if let Some(t) = tables.get_mut(table) {
                        t.apply_delete(stamp, *row_id)?;
                    }
                }
                _ => {}
            }
        }
        // The replica holds only committed history: every version it
        // reaches is immediately stable.
        for t in tables.values_mut() {
            t.stable_version = t.version;
        }
        Ok(())
    }

    /// Replication (replica side): apply one auto-committed DDL record.
    pub fn replicate_apply_ddl(&self, rec: &LogRecord) -> Result<()> {
        let mut tables = self.tables.lock();
        match rec {
            LogRecord::CreateTable { schema } => {
                let stamp = self.stamp();
                tables.insert(schema.name.clone(), Table::new(schema.clone(), stamp));
            }
            LogRecord::DropTable { table } => {
                tables.remove(table);
            }
            LogRecord::CreateIndex { table, column } => {
                if let Some(t) = tables.get_mut(table) {
                    t.build_index(column)?;
                    t.version = self.stamp();
                    t.stable_version = t.version;
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Replication (replica side): discard every table, cached view, and
    /// log byte ahead of a reseed. Any on-disk checkpoint image of *this*
    /// database is removed too — after a reseed the local log is the only
    /// recovery source until the next local checkpoint.
    pub fn replicate_reset(&self) -> Result<()> {
        let mut tables = self.tables.lock();
        let mut wal = self.wal.lock();
        tables.clear();
        self.views.lock().clear();
        if let Some(w) = wal.as_mut() {
            let ckpt = Self::checkpoint_path(w.path());
            w.reset()?;
            let _ = self.backend.remove_file(&ckpt);
        }
        *self.image.lock() = None;
        self.commit_queue.reset();
        self.epoch.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Replication (replica side): raise the transaction-id floor past
    /// every id seen in shipped history. Called at promotion so the new
    /// primary never reissues a transaction id that already appears in
    /// its log.
    pub fn adopt_tx_floor(&self, max_tx: u64) {
        self.next_tx.fetch_max(max_tx + 1, Ordering::SeqCst);
    }

    // ------------------------------------------------------------------
    // Auto-commit conveniences
    // ------------------------------------------------------------------

    /// Insert under a fresh single-operation transaction.
    pub fn insert_autocommit(&self, table: &str, row: Row) -> Result<RowId> {
        let tx = self.begin();
        match self.insert(tx, table, row) {
            Ok(id) => {
                self.commit(tx)?;
                Ok(id)
            }
            Err(e) => {
                let _ = self.abort(tx);
                Err(e)
            }
        }
    }

    /// Scan under a fresh single-operation transaction.
    pub fn scan_autocommit(&self, table: &str) -> Result<Vec<Row>> {
        let tx = self.begin();
        let out = self.scan(tx, table);
        match out {
            Ok(rows) => {
                self.commit(tx)?;
                Ok(rows)
            }
            Err(e) => {
                let _ = self.abort(tx);
                Err(e)
            }
        }
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database").field("tables", &self.table_names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::table::Column;
    use crate::value::DataType;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn people_schema() -> TableSchema {
        TableSchema::new(
            "people",
            vec![
                Column::new("name", DataType::Text),
                Column::new("age", DataType::Int),
                Column::nullable("city", DataType::Text),
            ],
            &["name"],
            &["age"],
        )
        .unwrap()
    }

    fn person(name: &str, age: i64, city: &str) -> Row {
        vec![name.into(), Value::Int(age), city.into()]
    }

    #[test]
    fn insert_get_update_delete_cycle() {
        let db = Database::in_memory();
        db.create_table(people_schema()).unwrap();
        let tx = db.begin();
        db.insert(tx, "people", person("ada", 36, "london")).unwrap();
        db.insert(tx, "people", person("alan", 41, "cambridge")).unwrap();
        assert_eq!(db.get(tx, "people", &["ada".into()]).unwrap()[1], Value::Int(36));
        db.update(tx, "people", &["ada".into()], person("ada", 37, "london")).unwrap();
        db.delete(tx, "people", &["alan".into()]).unwrap();
        db.commit(tx).unwrap();
        assert_eq!(db.row_count("people").unwrap(), 1);
    }

    #[test]
    fn duplicate_key_rejected() {
        let db = Database::in_memory();
        db.create_table(people_schema()).unwrap();
        db.insert_autocommit("people", person("x", 1, "a")).unwrap();
        let err = db.insert_autocommit("people", person("x", 2, "b")).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey(_)));
    }

    #[test]
    fn abort_rolls_back_everything() {
        let db = Database::in_memory();
        db.create_table(people_schema()).unwrap();
        db.insert_autocommit("people", person("keep", 1, "a")).unwrap();

        let tx = db.begin();
        db.insert(tx, "people", person("new", 2, "b")).unwrap();
        db.update(tx, "people", &["keep".into()], person("keep", 99, "z")).unwrap();
        db.delete(tx, "people", &["keep".into()]).unwrap();
        db.abort(tx).unwrap();

        let rows = db.scan_autocommit("people").unwrap();
        assert_eq!(rows, vec![person("keep", 1, "a")]);
        // Index state rolled back too.
        let tx = db.begin();
        let by_age = db.index_lookup(tx, "people", "age", &Value::Int(1)).unwrap();
        assert_eq!(by_age.len(), 1);
        let by_age99 = db.index_lookup(tx, "people", "age", &Value::Int(99)).unwrap();
        assert!(by_age99.is_empty());
        db.commit(tx).unwrap();
    }

    #[test]
    fn index_range_probe() {
        let db = Database::in_memory();
        db.create_table(people_schema()).unwrap();
        for i in 0..20 {
            db.insert_autocommit("people", person(&format!("p{i}"), i, "c")).unwrap();
        }
        let tx = db.begin();
        let rows = db
            .index_range(tx, "people", "age", Some(&Value::Int(5)), Some(&Value::Int(8)))
            .unwrap();
        assert_eq!(rows.len(), 4);
        db.commit(tx).unwrap();
    }

    #[test]
    fn scan_is_key_ordered_by_rowid_and_stable() {
        let db = Database::in_memory();
        db.create_table(people_schema()).unwrap();
        for name in ["c", "a", "b"] {
            db.insert_autocommit("people", person(name, 1, "x")).unwrap();
        }
        let rows = db.scan_autocommit("people").unwrap();
        let names: Vec<_> = rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["c", "a", "b"], "scan returns insertion order");
    }

    #[test]
    fn operations_on_unknown_entities_fail() {
        let db = Database::in_memory();
        assert!(matches!(db.insert_autocommit("ghost", vec![]), Err(StorageError::NoSuchTable(_))));
        db.create_table(people_schema()).unwrap();
        let tx = db.begin();
        assert!(matches!(db.get(tx, "people", &["ghost".into()]), Err(StorageError::NotFound(_))));
        db.commit(tx).unwrap();
        assert!(matches!(db.commit(999), Err(StorageError::NoSuchTx(999))));
    }

    #[test]
    fn two_phase_locking_isolates_writers() {
        let db = Arc::new(Database::in_memory());
        db.create_table(people_schema()).unwrap();
        db.insert_autocommit("people", person("shared", 0, "x")).unwrap();

        // Older tx writes the row; younger tx must fail (wait-die) on read.
        let t_old = db.begin();
        let t_young = db.begin();
        db.update(t_old, "people", &["shared".into()], person("shared", 1, "x")).unwrap();
        let err = db.get(t_young, "people", &["shared".into()]).unwrap_err();
        assert!(matches!(err, StorageError::TxAborted(_)));
        db.abort(t_young).unwrap();
        db.commit(t_old).unwrap();
    }

    #[test]
    fn concurrent_counter_has_no_lost_updates() {
        let db = Arc::new(Database::in_memory());
        db.create_table(people_schema()).unwrap();
        db.insert_autocommit("people", person("ctr", 0, "x")).unwrap();
        let threads = 4;
        let per_thread = 25;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                let mut done = 0;
                while done < per_thread {
                    let tx = db.begin();
                    let res = db.get(tx, "people", &["ctr".into()]).and_then(|row| {
                        let n = row[1].as_f64().unwrap() as i64;
                        db.update(tx, "people", &["ctr".into()], person("ctr", n + 1, "x"))
                    });
                    match res {
                        Ok(()) => {
                            db.commit(tx).unwrap();
                            done += 1;
                        }
                        Err(_) => {
                            let _ = db.abort(tx);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let rows = db.scan_autocommit("people").unwrap();
        assert_eq!(rows[0][1], Value::Int((threads * per_thread) as i64));
    }

    fn tmpwal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("quarry-db-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(Database::checkpoint_path(&p));
        let _ = std::fs::remove_file(Database::checkpoint_tmp_path(&p));
        p
    }

    #[test]
    fn durable_database_recovers_committed_work_only() {
        let p = tmpwal("recovery");
        {
            let db = Database::open(&p).unwrap();
            db.create_table(people_schema()).unwrap();
            db.insert_autocommit("people", person("committed", 1, "a")).unwrap();
            let tx = db.begin();
            db.insert(tx, "people", person("uncommitted", 2, "b")).unwrap();
            // Crash: drop db without commit.
        }
        let db = Database::open(&p).unwrap();
        let rows = db.scan_autocommit("people").unwrap();
        assert_eq!(rows, vec![person("committed", 1, "a")]);
        // The recovered database stays usable and durable.
        db.insert_autocommit("people", person("after", 3, "c")).unwrap();
        drop(db);
        let db = Database::open(&p).unwrap();
        assert_eq!(db.row_count("people").unwrap(), 2);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn recovery_replays_updates_and_deletes() {
        let p = tmpwal("recovery2");
        {
            let db = Database::open(&p).unwrap();
            db.create_table(people_schema()).unwrap();
            let tx = db.begin();
            db.insert(tx, "people", person("a", 1, "x")).unwrap();
            db.insert(tx, "people", person("b", 2, "x")).unwrap();
            db.commit(tx).unwrap();
            let tx = db.begin();
            db.update(tx, "people", &["a".into()], person("a", 10, "y")).unwrap();
            db.delete(tx, "people", &["b".into()]).unwrap();
            db.commit(tx).unwrap();
        }
        let db = Database::open(&p).unwrap();
        let rows = db.scan_autocommit("people").unwrap();
        assert_eq!(rows, vec![person("a", 10, "y")]);
        // Secondary index rebuilt by redo.
        let tx = db.begin();
        assert_eq!(db.index_lookup(tx, "people", "age", &Value::Int(10)).unwrap().len(), 1);
        db.commit(tx).unwrap();
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn checkpoint_compacts_log_and_preserves_state() {
        let p = tmpwal("checkpoint");
        {
            let db = Database::open(&p).unwrap();
            db.create_table(people_schema()).unwrap();
            // History: many inserts, updates, and deletes.
            for i in 0..50 {
                db.insert_autocommit("people", person(&format!("p{i}"), i, "x")).unwrap();
            }
            for i in 0..50 {
                let tx = db.begin();
                if i % 2 == 0 {
                    db.update(
                        tx,
                        "people",
                        &[format!("p{i}").into()],
                        person(&format!("p{i}"), i + 100, "y"),
                    )
                    .unwrap();
                } else {
                    db.delete(tx, "people", &[format!("p{i}").into()]).unwrap();
                }
                db.commit(tx).unwrap();
            }
            let before = std::fs::metadata(&p).unwrap().len();
            db.checkpoint().unwrap();
            let after = std::fs::metadata(&p).unwrap().len();
            assert!(after < before / 2, "log {before} → {after} should shrink");
            // The database keeps working after a checkpoint.
            db.insert_autocommit("people", person("post", 1, "z")).unwrap();
        }
        let db = Database::open(&p).unwrap();
        assert_eq!(db.row_count("people").unwrap(), 26);
        let tx = db.begin();
        assert_eq!(db.get(tx, "people", &["p0".into()]).unwrap()[1], Value::Int(100));
        assert!(db.get(tx, "people", &["p1".into()]).is_err(), "deleted row stays deleted");
        // Secondary index rebuilt from the snapshot.
        assert_eq!(db.index_lookup(tx, "people", "age", &Value::Int(100)).unwrap().len(), 1);
        db.commit(tx).unwrap();
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn checkpoint_survives_crash_at_every_operation() {
        use crate::faultfs::{CrashPlan, FaultBackend};

        // Reference state: three committed rows, one later update.
        let build = |db: &Database| {
            db.create_table(people_schema()).unwrap();
            for i in 0..3 {
                db.insert_autocommit("people", person(&format!("p{i}"), i, "x")).unwrap();
            }
            let tx = db.begin();
            db.update(tx, "people", &["p0".into()], person("p0", 100, "y")).unwrap();
            db.commit(tx).unwrap();
        };
        let expected = {
            let db = Database::in_memory();
            build(&db);
            db.scan_autocommit("people").unwrap()
        };

        // Count the checkpoint's operations with a recording backend.
        let p = tmpwal("ckpt-crash-rec");
        let total = {
            let rec = FaultBackend::recording(RealBackend);
            let db = Database::open_with(Arc::new(rec.clone()), &p).unwrap();
            build(&db);
            let before = rec.op_count();
            db.checkpoint().unwrap();
            rec.op_count() - before
        };
        assert!(total >= 3, "checkpoint is several ops (build, sync, rename, reset)");

        // Crash the checkpoint at every one of its operations; committed
        // state must survive every time — including the window between the
        // rename (publication) and the WAL reset.
        for k in 1..=total {
            let p = tmpwal(&format!("ckpt-crash-{k}"));
            let fb = FaultBackend::recording(RealBackend);
            let db = Database::open_with(Arc::new(fb.clone()), &p).unwrap();
            build(&db);
            let at = fb.op_count() + k;
            fb.arm(CrashPlan::kill_at(at));
            assert!(db.checkpoint().is_err(), "crash point {k} must fail the checkpoint");
            drop(db);
            let db = Database::open(&p).unwrap();
            assert_eq!(db.scan_autocommit("people").unwrap(), expected, "crash point {k}");
            let _ = std::fs::remove_file(&p);
            let _ = std::fs::remove_file(Database::checkpoint_path(&p));
            let _ = std::fs::remove_file(Database::checkpoint_tmp_path(&p));
        }
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(Database::checkpoint_path(&p));
    }

    #[test]
    fn legacy_json_database_opens_and_migrates_on_checkpoint() {
        let p = tmpwal("legacy-json");
        let schema = people_schema();
        // Fabricate a pre-paged-engine database: a WAL-format checkpoint
        // image and a WAL tail, both holding JSON records.
        {
            let mut ck = Wal::open(Database::checkpoint_path(&p)).unwrap();
            for rec in [
                LogRecord::Begin { tx: 0 },
                LogRecord::CreateTable { schema: schema.clone() },
                LogRecord::Insert {
                    tx: 0,
                    table: "people".into(),
                    row_id: RowId(0),
                    row: person("old", 50, "past"),
                },
                LogRecord::Commit { tx: 0 },
            ] {
                ck.append(&rec.encode_with(WalCodec::Json).unwrap()).unwrap();
            }
            ck.sync().unwrap();
            let mut wal = Wal::open(&p).unwrap();
            for rec in [
                LogRecord::Begin { tx: 1 },
                LogRecord::Insert {
                    tx: 1,
                    table: "people".into(),
                    row_id: RowId(1),
                    row: person("tail", 7, "log"),
                },
                LogRecord::Commit { tx: 1 },
            ] {
                wal.append(&rec.encode_with(WalCodec::Json).unwrap()).unwrap();
            }
            wal.sync().unwrap();
        }
        // The legacy database opens; new writes append *binary* records to
        // the same (JSON-prefixed) log.
        {
            let db = Database::open(&p).unwrap();
            assert_eq!(db.row_count("people").unwrap(), 2);
            db.insert_autocommit("people", person("new", 1, "now")).unwrap();
        }
        // Mixed-format replay works record-by-record.
        {
            let db = Database::open(&p).unwrap();
            assert_eq!(db.row_count("people").unwrap(), 3);
            // Checkpointing migrates the image to the paged binary format.
            db.checkpoint().unwrap();
        }
        assert!(Pager::is_paged(&RealBackend, &Database::checkpoint_path(&p)).unwrap());
        let db = Database::open(&p).unwrap();
        assert_eq!(db.row_count("people").unwrap(), 3);
        let tx = db.begin();
        assert_eq!(db.get(tx, "people", &["old".into()]).unwrap()[1], Value::Int(50));
        db.commit(tx).unwrap();
        std::fs::remove_file(&p).unwrap();
        std::fs::remove_file(Database::checkpoint_path(&p)).unwrap();
    }

    #[test]
    fn durability_modes_contract() {
        use crate::faultfs::{CrashPlan, FaultBackend, Op};

        // Full: one fsync boundary per commit/DDL.
        let p = tmpwal("dur-full");
        {
            let fb = FaultBackend::recording(RealBackend);
            let db = Database::open_with(Arc::new(fb.clone()), &p).unwrap();
            db.create_table(people_schema()).unwrap();
            db.insert_autocommit("people", person("a", 1, "x")).unwrap();
            let syncs = fb.ops().iter().filter(|o| matches!(o, Op::Sync { .. })).count();
            assert_eq!(syncs, 2, "create_table + autocommit insert");
        }
        let _ = std::fs::remove_file(&p);

        // Normal: commits flush to the OS (durable in the fault model's
        // flushed-is-durable terms) but never fsync.
        let p = tmpwal("dur-normal");
        {
            let fb = FaultBackend::recording(RealBackend);
            let mut db = Database::open_with(Arc::new(fb.clone()), &p).unwrap();
            db.set_durability(DurabilityMode::Normal);
            db.create_table(people_schema()).unwrap();
            db.insert_autocommit("people", person("a", 1, "x")).unwrap();
            assert!(!fb.ops().iter().any(|o| matches!(o, Op::Sync { .. })));
            // Power loss: everything already flushed survives.
            fb.arm(CrashPlan::kill_at(fb.op_count() + 1));
            drop(db);
        }
        {
            let db = Database::open(&p).unwrap();
            assert_eq!(db.row_count("people").unwrap(), 1);
        }
        let _ = std::fs::remove_file(&p);

        // Deferred: commits only buffer; a crash loses them...
        let p = tmpwal("dur-deferred");
        {
            let fb = FaultBackend::recording(RealBackend);
            let mut db = Database::open_with(Arc::new(fb.clone()), &p).unwrap();
            db.set_durability(DurabilityMode::Deferred);
            db.create_table(people_schema()).unwrap();
            db.insert_autocommit("people", person("a", 1, "x")).unwrap();
            fb.arm(CrashPlan::kill_at(fb.op_count() + 1));
            drop(db); // buffered frames die with the process-model
        }
        {
            let db = Database::open(&p).unwrap();
            assert!(db.row_count("people").is_err(), "deferred work was lost");
        }
        let _ = std::fs::remove_file(&p);

        // ...unless an explicit sync_wal() intervenes.
        let p = tmpwal("dur-deferred-sync");
        {
            let fb = FaultBackend::recording(RealBackend);
            let mut db = Database::open_with(Arc::new(fb.clone()), &p).unwrap();
            db.set_durability(DurabilityMode::Deferred);
            db.create_table(people_schema()).unwrap();
            db.insert_autocommit("people", person("a", 1, "x")).unwrap();
            db.sync_wal().unwrap();
            fb.arm(CrashPlan::kill_at(fb.op_count() + 1));
            drop(db);
        }
        {
            let db = Database::open(&p).unwrap();
            assert_eq!(db.row_count("people").unwrap(), 1);
        }
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn checkpoint_requires_quiescence_and_is_noop_in_memory() {
        let db = Database::in_memory();
        db.create_table(people_schema()).unwrap();
        db.checkpoint().unwrap(); // no-op, no error
        let tx = db.begin();
        db.insert(tx, "people", person("a", 1, "x")).unwrap();
        assert!(matches!(db.checkpoint(), Err(StorageError::TxAborted(_))));
        db.commit(tx).unwrap();
        db.checkpoint().unwrap();
    }

    fn snap_rows(db: &Database) -> Vec<Row> {
        db.snapshot().scan("people").unwrap()
    }

    #[test]
    fn snapshot_sees_committed_state_only() {
        let db = Database::in_memory();
        db.create_table(people_schema()).unwrap();
        db.insert_autocommit("people", person("base", 1, "a")).unwrap();

        let tx = db.begin();
        db.insert(tx, "people", person("pending", 2, "b")).unwrap();
        db.update(tx, "people", &["base".into()], person("base", 99, "z")).unwrap();

        // Mid-transaction snapshot: the uncommitted insert and update are
        // both invisible.
        assert_eq!(snap_rows(&db), vec![person("base", 1, "a")]);
        // The index state of the view is rolled back too.
        let snap = db.snapshot();
        let (rows, _) = snap
            .select(
                "people",
                ScanAccess::Index { column: "age", lo: Some(&Value::Int(99)), hi: None },
                &mut |_| true,
                None,
            )
            .unwrap();
        assert!(rows.is_empty(), "uncommitted index entries must not leak");

        db.commit(tx).unwrap();
        let mut after = snap_rows(&db);
        after.sort_by_key(|r| r[0].to_string());
        assert_eq!(after, vec![person("base", 99, "z"), person("pending", 2, "b")]);
        // The pre-commit snapshot is immutable: it still shows old state.
        assert_eq!(snap.scan("people").unwrap(), vec![person("base", 1, "a")]);
    }

    #[test]
    fn snapshot_is_stable_while_writers_proceed() {
        let db = Database::in_memory();
        db.create_table(people_schema()).unwrap();
        db.insert_autocommit("people", person("p0", 0, "x")).unwrap();
        let snap = db.snapshot();
        let lsn = snap.lsn();
        for i in 1..10 {
            db.insert_autocommit("people", person(&format!("p{i}"), i, "x")).unwrap();
        }
        assert_eq!(snap.row_count("people").unwrap(), 1);
        assert_eq!(snap.lsn(), lsn);
        let later = db.snapshot();
        assert!(later.lsn() > lsn, "LSN advances with committed writes");
        assert_eq!(later.row_count("people").unwrap(), 10);
    }

    #[test]
    fn snapshot_views_are_shared_until_tables_change() {
        let db = Database::in_memory();
        db.create_table(people_schema()).unwrap();
        db.insert_autocommit("people", person("a", 1, "x")).unwrap();
        let s1 = db.snapshot();
        let s2 = db.snapshot();
        assert!(
            Arc::ptr_eq(s1.table("people").unwrap(), s2.table("people").unwrap()),
            "unchanged table views are Arc-shared"
        );
        db.insert_autocommit("people", person("b", 2, "x")).unwrap();
        let s3 = db.snapshot();
        assert!(!Arc::ptr_eq(s1.table("people").unwrap(), s3.table("people").unwrap()));
        assert_ne!(
            s1.table_version("people").unwrap(),
            s3.table_version("people").unwrap(),
            "changed contents imply a new version"
        );
    }

    #[test]
    fn snapshot_excludes_aborted_work_and_matches_select_semantics() {
        let db = Database::in_memory();
        db.create_table(people_schema()).unwrap();
        for i in 0..8 {
            db.insert_autocommit("people", person(&format!("p{i}"), i, "x")).unwrap();
        }
        let tx = db.begin();
        db.delete(tx, "people", &["p3".into()]).unwrap();
        db.abort(tx).unwrap();

        let snap = db.snapshot();
        // Full-path and index-path reads agree with the live engine.
        let tx = db.begin();
        for access in [
            ScanAccess::Full,
            ScanAccess::Index { column: "age", lo: Some(&Value::Int(2)), hi: Some(&Value::Int(6)) },
        ] {
            let mut live_filter = |row: &[Value]| row[1].as_f64().unwrap() as i64 % 2 == 0;
            let live =
                db.select(tx, "people", access, &mut live_filter, Some(&[0, 1][..])).unwrap();
            let mut snap_filter = |row: &[Value]| row[1].as_f64().unwrap() as i64 % 2 == 0;
            let snapped = snap.select("people", access, &mut snap_filter, Some(&[0, 1])).unwrap();
            assert_eq!(live, snapped, "access {access:?}");
        }
        db.commit(tx).unwrap();

        // Unknown table / unindexed column give the live error kinds.
        assert!(matches!(snap.scan("ghost"), Err(StorageError::NoSuchTable(_))));
        let err = snap
            .select(
                "people",
                ScanAccess::Index { column: "city", lo: None, hi: None },
                &mut |_| true,
                None,
            )
            .unwrap_err();
        assert!(matches!(err, StorageError::SchemaViolation(_)));
    }

    #[test]
    fn concurrent_snapshots_see_consistent_prefixes() {
        let db = Arc::new(Database::in_memory());
        db.create_table(people_schema()).unwrap();
        let writer = {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..200i64 {
                    db.insert_autocommit("people", person(&format!("p{i:04}"), i, "x")).unwrap();
                }
            })
        };
        let mut last_lsn = 0;
        let mut last_len = 0;
        for _ in 0..300 {
            let snap = db.snapshot();
            let rows = snap.scan("people").unwrap();
            // Row-id order = insertion order, so a consistent cut is a
            // strict prefix of the writer's sequence.
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(row[1], Value::Int(i as i64), "snapshot must be a prefix");
            }
            assert!(rows.len() >= last_len, "later snapshots never lose writes");
            assert!(snap.lsn() >= last_lsn, "LSN is monotone");
            last_len = rows.len();
            last_lsn = snap.lsn();
            // Re-reading the same snapshot is repeatable.
            assert_eq!(snap.scan("people").unwrap().len(), rows.len());
        }
        writer.join().unwrap();
        assert_eq!(db.snapshot().row_count("people").unwrap(), 200);
    }

    #[test]
    fn btree_checkpoint_opens_lazily_and_reads_through_base() {
        let p = tmpwal("btree-lazy");
        let n = 300i64;
        {
            let db = Database::open(&p).unwrap();
            db.create_table(people_schema()).unwrap();
            for i in 0..n {
                db.insert_autocommit("people", person(&format!("p{i:03}"), i % 10, "x")).unwrap();
            }
            db.checkpoint().unwrap();
            // Post-checkpoint the live table itself is an empty overlay
            // over the fresh image.
            assert_eq!(db.overlay_row_count("people").unwrap(), 0);
            assert_eq!(db.row_count("people").unwrap(), n as usize);
        }
        let db = Database::open(&p).unwrap();
        // Lazy open: nothing materialized.
        assert_eq!(db.overlay_row_count("people").unwrap(), 0);
        assert_eq!(db.row_count("people").unwrap(), n as usize);
        assert!(db.image_pool_stats().is_some());

        // Point lookups, index probes, and scans read through the trees.
        let tx = db.begin();
        assert_eq!(db.get(tx, "people", &["p042".into()]).unwrap()[1], Value::Int(2));
        let by_age = db.index_lookup(tx, "people", "age", &Value::Int(3)).unwrap();
        assert_eq!(by_age.len(), 30);
        db.commit(tx).unwrap();
        let rows = db.scan_autocommit("people").unwrap();
        assert_eq!(rows.len(), n as usize);
        assert_eq!(rows[7][0], Value::Text("p007".into()), "row-id order preserved");
        // Stats follow the merged shape.
        let st = db.index_stats("people", "age").unwrap().unwrap();
        assert_eq!(st.entries, n as usize);
        assert_eq!(st.distinct, 10);
        std::fs::remove_file(&p).unwrap();
        std::fs::remove_file(Database::checkpoint_path(&p)).unwrap();
    }

    #[test]
    fn base_rows_update_delete_and_merge_across_checkpoints() {
        let p = tmpwal("btree-merge");
        {
            let db = Database::open(&p).unwrap();
            db.create_table(people_schema()).unwrap();
            for i in 0..50 {
                db.insert_autocommit("people", person(&format!("p{i:02}"), i, "x")).unwrap();
            }
            db.checkpoint().unwrap();
        }
        {
            // Mutate base rows through the overlay: update, delete,
            // key-change update, fresh insert.
            let db = Database::open(&p).unwrap();
            let tx = db.begin();
            db.update(tx, "people", &["p00".into()], person("p00", 100, "y")).unwrap();
            db.delete(tx, "people", &["p01".into()]).unwrap();
            db.update(tx, "people", &["p02".into()], person("renamed", 2, "z")).unwrap();
            db.insert(tx, "people", person("fresh", 7, "w")).unwrap();
            db.commit(tx).unwrap();
            assert_eq!(db.row_count("people").unwrap(), 50);
            // The old key of a renamed base row is gone; the new one hits.
            let tx = db.begin();
            assert!(db.get(tx, "people", &["p02".into()]).is_err());
            assert_eq!(db.get(tx, "people", &["renamed".into()]).unwrap()[1], Value::Int(2));
            // Index probe must not surface the shadowed base entry for the
            // updated row's old value.
            assert!(db.index_lookup(tx, "people", "age", &Value::Int(0)).unwrap().is_empty());
            assert_eq!(db.index_lookup(tx, "people", "age", &Value::Int(100)).unwrap().len(), 1);
            db.commit(tx).unwrap();
            // Fold the overlay into a second-generation image.
            db.checkpoint().unwrap();
            assert_eq!(db.overlay_row_count("people").unwrap(), 0);
        }
        let db = Database::open(&p).unwrap();
        assert_eq!(db.row_count("people").unwrap(), 50);
        let tx = db.begin();
        assert_eq!(db.get(tx, "people", &["p00".into()]).unwrap()[1], Value::Int(100));
        assert!(db.get(tx, "people", &["p01".into()]).is_err(), "deleted base row stays gone");
        assert_eq!(db.get(tx, "people", &["renamed".into()]).unwrap()[2], Value::Text("z".into()));
        assert_eq!(db.get(tx, "people", &["fresh".into()]).unwrap()[1], Value::Int(7));
        db.commit(tx).unwrap();
        std::fs::remove_file(&p).unwrap();
        std::fs::remove_file(Database::checkpoint_path(&p)).unwrap();
    }

    #[test]
    fn create_index_after_checkpoint_backfills_from_base() {
        let p = tmpwal("btree-backfill");
        {
            let db = Database::open(&p).unwrap();
            db.create_table(people_schema()).unwrap();
            for i in 0..40 {
                db.insert_autocommit("people", person(&format!("p{i:02}"), i, "x")).unwrap();
            }
            db.checkpoint().unwrap();
            // New index over a lazily-held table must see base rows.
            db.create_index("people", "city").unwrap();
            let tx = db.begin();
            assert_eq!(
                db.index_lookup(tx, "people", "city", &Value::Text("x".into())).unwrap().len(),
                40
            );
            db.commit(tx).unwrap();
            // Deleting a base row drops its backfilled entry too.
            let tx = db.begin();
            db.delete(tx, "people", &["p05".into()]).unwrap();
            db.commit(tx).unwrap();
            let tx = db.begin();
            assert_eq!(
                db.index_lookup(tx, "people", "city", &Value::Text("x".into())).unwrap().len(),
                39
            );
            db.commit(tx).unwrap();
            db.checkpoint().unwrap();
        }
        // The folded index survives recovery as a tree.
        let db = Database::open(&p).unwrap();
        let tx = db.begin();
        assert_eq!(
            db.index_lookup(tx, "people", "city", &Value::Text("x".into())).unwrap().len(),
            39
        );
        db.commit(tx).unwrap();
        std::fs::remove_file(&p).unwrap();
        std::fs::remove_file(Database::checkpoint_path(&p)).unwrap();
    }

    #[test]
    fn heap_chain_v1_format_knob_writes_materializing_images() {
        let p = tmpwal("v1-knob");
        {
            let mut db = Database::open(&p).unwrap();
            db.set_checkpoint_format(CheckpointFormat::HeapChainV1);
            assert_eq!(db.checkpoint_format(), CheckpointFormat::HeapChainV1);
            db.create_table(people_schema()).unwrap();
            for i in 0..30 {
                db.insert_autocommit("people", person(&format!("p{i:02}"), i, "x")).unwrap();
            }
            db.checkpoint().unwrap();
            // V1 keeps tables resident: no base swap.
            assert_eq!(db.overlay_row_count("people").unwrap(), 30);
        }
        // A v1 image materializes fully on open (legacy behavior)...
        let db = Database::open(&p).unwrap();
        assert_eq!(db.overlay_row_count("people").unwrap(), 30);
        assert_eq!(db.row_count("people").unwrap(), 30);
        // ...and the next default-format checkpoint migrates it to trees.
        db.checkpoint().unwrap();
        assert_eq!(db.overlay_row_count("people").unwrap(), 0);
        drop(db);
        let db = Database::open(&p).unwrap();
        assert_eq!(db.overlay_row_count("people").unwrap(), 0);
        assert_eq!(db.row_count("people").unwrap(), 30);
        std::fs::remove_file(&p).unwrap();
        std::fs::remove_file(Database::checkpoint_path(&p)).unwrap();
    }

    #[test]
    fn snapshots_over_bases_stay_stable_across_checkpoints() {
        let p = tmpwal("btree-snap");
        let db = Database::open(&p).unwrap();
        db.create_table(people_schema()).unwrap();
        for i in 0..20 {
            db.insert_autocommit("people", person(&format!("p{i:02}"), i, "x")).unwrap();
        }
        db.checkpoint().unwrap();
        // Snapshot over the lazy table reads through the base.
        let snap = db.snapshot();
        assert_eq!(snap.row_count("people").unwrap(), 20);
        assert_eq!(snap.scan("people").unwrap().len(), 20);
        // Keep writing and re-checkpoint: the old snapshot keeps reading
        // the superseded image through its own handle.
        let tx = db.begin();
        db.update(tx, "people", &["p00".into()], person("p00", 99, "y")).unwrap();
        db.commit(tx).unwrap();
        db.checkpoint().unwrap();
        let rows = snap.scan("people").unwrap();
        assert_eq!(rows[0][1], Value::Int(0), "old snapshot sees pre-update state");
        let fresh = db.snapshot();
        assert_eq!(fresh.scan("people").unwrap()[0][1], Value::Int(99));
        // Index access over the snapshot merges base + overlay like the
        // live engine.
        let (rows, scanned) = snap
            .select(
                "people",
                ScanAccess::Index {
                    column: "age",
                    lo: Some(&Value::Int(5)),
                    hi: Some(&Value::Int(9)),
                },
                &mut |_| true,
                None,
            )
            .unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(scanned, 5);
        std::fs::remove_file(&p).unwrap();
        std::fs::remove_file(Database::checkpoint_path(&p)).unwrap();
    }

    #[test]
    fn replace_table_migrates_rows() {
        let db = Database::in_memory();
        db.create_table(people_schema()).unwrap();
        db.insert_autocommit("people", person("a", 1, "x")).unwrap();
        let new_schema = TableSchema::new(
            "people",
            vec![Column::new("name", DataType::Text), Column::new("age", DataType::Int)],
            &["name"],
            &[],
        )
        .unwrap();
        db.replace_table(new_schema, vec![vec!["a".into(), Value::Int(1)]]).unwrap();
        let rows = db.scan_autocommit("people").unwrap();
        assert_eq!(rows, vec![vec![Value::Text("a".into()), Value::Int(1)]]);
    }
}
