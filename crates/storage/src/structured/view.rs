//! Immutable point-in-time views: [`TableView`] and [`DbSnapshot`].
//!
//! A [`DbSnapshot`] is the MVCC read half of the engine: an O(1)-to-clone
//! bundle of `Arc`-shared per-table views pinned to one LSN of the global
//! write clock. Snapshot reads take **no locks** — they never block
//! writers, writers never block them, and two snapshots of the same
//! version share their table views structurally. Writers keep the strict
//! 2PL + WAL path in [`super::engine::Database`]; see `docs/concurrency.md`.
//!
//! Since the B-tree checkpoint engine, a view captures a table the same
//! way the live engine holds it: a copy of the small in-memory overlay
//! (rows written since the last checkpoint, plus tombstones) stacked on an
//! `Arc`-shared [`TableBase`] slice of the checkpoint image. Capturing is
//! still O(overlay); base rows stay on disk and fault in through the
//! image's buffer pool on read. The image file is immutable once
//! published — a later checkpoint renames a *new* file over it while this
//! view keeps the old one alive (and readable) through its handle — so
//! snapshot reads stay repeatable without copying the corpus.

use crate::error::StorageError;
use crate::value::Value;
use crate::Result;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use super::engine::{IndexStats, ScanAccess};
use super::index::SecondaryIndex;
use super::paged::{self, TableBase};
use super::table::{Row, RowId, TableSchema};

/// An immutable copy of one table's committed state at a point in time.
///
/// Overlay rows are held sorted by row id and the base row tree is keyed
/// by row id, so both access paths of [`TableView::select`] produce rows
/// in exactly the same order as the live engine: row-id (insertion)
/// order.
#[derive(Debug)]
pub struct TableView {
    schema: TableSchema,
    /// Overlay rows sorted ascending by row id.
    overlay: Vec<(RowId, Row)>,
    /// Column name → overlay secondary index, cloned from the live table.
    indexes: HashMap<String, SecondaryIndex>,
    /// The checkpoint image slice under the overlay, if any.
    base: Option<TableBase>,
    /// Base row ids deleted or superseded since the checkpoint.
    tombstones: HashSet<RowId>,
    /// Exact live rows across base + overlay.
    live_rows: u64,
    /// The table's write version at capture time; equal versions imply
    /// identical contents (see `Table::version` in the engine).
    version: u64,
}

impl TableView {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn capture(
        schema: TableSchema,
        heap: &HashMap<RowId, Row>,
        indexes: &HashMap<String, SecondaryIndex>,
        base: Option<TableBase>,
        tombstones: &HashSet<RowId>,
        live_rows: u64,
        version: u64,
    ) -> TableView {
        let mut overlay: Vec<(RowId, Row)> =
            heap.iter().map(|(id, row)| (*id, row.clone())).collect();
        overlay.sort_unstable_by_key(|(id, _)| *id);
        TableView {
            schema,
            overlay,
            indexes: indexes.clone(),
            base,
            tombstones: tombstones.clone(),
            live_rows,
            version,
        }
    }

    /// The captured write version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The captured schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.live_rows as usize
    }

    fn overlay_row(&self, id: RowId) -> Option<&Row> {
        self.overlay.binary_search_by_key(&id, |(rid, _)| *rid).ok().map(|i| &self.overlay[i].1)
    }

    /// The overlay as the borrowed slice the merge helpers consume.
    fn overlay_refs(&self) -> Vec<(RowId, &Row)> {
        self.overlay.iter().map(|(id, row)| (*id, row)).collect()
    }

    /// Names of the indexed columns, sorted (mirrors
    /// `Database::indexed_columns`).
    pub fn indexed_columns(&self) -> Vec<String> {
        let mut names: Vec<String> = self.indexes.keys().cloned().collect();
        names.sort();
        names
    }

    /// Cardinality statistics of one secondary index (`None` when the
    /// column carries no index). Matches `Database::index_stats`: exact
    /// for in-memory tables, estimated (base + overlay distinct, capped
    /// at the row count) over a checkpoint base.
    pub fn index_stats(&self, column: &str) -> Option<IndexStats> {
        let ix = self.indexes.get(column)?;
        let distinct = match self.base.as_ref().and_then(|b| b.meta.indexes.get(column)) {
            Some(m) => (m.distinct as usize + ix.distinct_values()).min(self.live_rows as usize),
            None => ix.distinct_values(),
        };
        Some(IndexStats { entries: self.live_rows as usize, distinct })
    }

    /// Filtered, projected read mirroring `Database::select` bit for bit:
    /// same row order (row-id order on both paths), same `(rows, scanned)`
    /// accounting, same error kinds — but lock-free.
    pub fn select(
        &self,
        access: ScanAccess<'_>,
        filter: &mut dyn FnMut(&[Value]) -> bool,
        projection: Option<&[usize]>,
    ) -> Result<(Vec<Row>, usize)> {
        let materialize = |row: &Row| -> Row {
            match projection {
                Some(cols) => cols.iter().map(|&i| row[i].clone()).collect(),
                None => row.clone(),
            }
        };
        match access {
            ScanAccess::Full => {
                let mut out = Vec::new();
                let mut scanned = 0usize;
                let overlay = self.overlay_refs();
                paged::for_each_live_row(
                    self.base.as_ref(),
                    &overlay,
                    &self.tombstones,
                    &mut |_, row| {
                        scanned += 1;
                        if filter(row) {
                            out.push(materialize(row));
                        }
                        Ok(())
                    },
                )?;
                Ok((out, scanned))
            }
            ScanAccess::Index { column, lo, hi } => {
                let ix = self.indexes.get(column).ok_or_else(|| {
                    StorageError::SchemaViolation(format!(
                        "no index on {}.{column}",
                        self.schema.name
                    ))
                })?;
                let shadowed = |id: RowId| {
                    self.overlay.binary_search_by_key(&id, |(rid, _)| *rid).is_ok()
                        || self.tombstones.contains(&id)
                };
                let mut row_ids =
                    paged::merged_index_ids(self.base.as_ref(), column, ix, &shadowed, lo, hi)?;
                // Row-id order = full-scan order.
                row_ids.sort_unstable();
                let mut out = Vec::new();
                let mut scanned = 0usize;
                for row_id in row_ids {
                    if let Some(row) = self.overlay_row(row_id) {
                        scanned += 1;
                        if filter(row) {
                            out.push(materialize(row));
                        }
                    } else if !self.tombstones.contains(&row_id) {
                        if let Some(b) = &self.base {
                            if row_id.0 < b.meta.next_row {
                                if let Some(row) = b.get_row(row_id)? {
                                    scanned += 1;
                                    if filter(&row) {
                                        out.push(materialize(&row));
                                    }
                                }
                            }
                        }
                    }
                }
                Ok((out, scanned))
            }
        }
    }

    /// All rows in row-id order (mirrors `Database::scan`).
    pub fn scan(&self) -> Result<Vec<Row>> {
        let overlay = self.overlay_refs();
        let mut out = Vec::with_capacity(self.live_rows as usize);
        paged::for_each_live_row(self.base.as_ref(), &overlay, &self.tombstones, &mut |_, row| {
            out.push(row.clone());
            Ok(())
        })?;
        Ok(out)
    }
}

/// A consistent, immutable snapshot of every table's **committed** state,
/// pinned to one LSN of the database's write clock.
///
/// Cloning is O(tables): only `Arc` roots are copied. Every read method
/// mirrors its `Database` counterpart — same results, same ordering, same
/// error kinds — so query plans execute identically over either.
#[derive(Debug, Clone)]
pub struct DbSnapshot {
    lsn: u64,
    tables: HashMap<String, Arc<TableView>>,
}

impl DbSnapshot {
    pub(crate) fn new(lsn: u64, tables: HashMap<String, Arc<TableView>>) -> DbSnapshot {
        DbSnapshot { lsn, tables }
    }

    /// The write-clock value this snapshot is pinned to: the snapshot
    /// holds every write stamped `<= lsn` that had committed at capture
    /// time, and no write stamped later.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// The captured view of one table.
    pub fn table(&self, table: &str) -> Result<&Arc<TableView>> {
        self.tables.get(table).ok_or_else(|| StorageError::NoSuchTable(table.to_string()))
    }

    /// The schema of a table (mirrors `Database::schema`).
    pub fn schema(&self, table: &str) -> Result<TableSchema> {
        Ok(self.table(table)?.schema().clone())
    }

    /// Names of all tables, sorted (mirrors `Database::table_names`).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// The captured write version of a table; keys the query cache.
    pub fn table_version(&self, table: &str) -> Result<u64> {
        Ok(self.table(table)?.version())
    }

    /// Names of the indexed columns of a table, sorted.
    pub fn indexed_columns(&self, table: &str) -> Result<Vec<String>> {
        Ok(self.table(table)?.indexed_columns())
    }

    /// Index cardinality statistics (mirrors `Database::index_stats`).
    pub fn index_stats(&self, table: &str, column: &str) -> Result<Option<IndexStats>> {
        Ok(self.table(table)?.index_stats(column))
    }

    /// Number of rows in a table (mirrors `Database::row_count`).
    pub fn row_count(&self, table: &str) -> Result<usize> {
        Ok(self.table(table)?.row_count())
    }

    /// Filtered, projected, lock-free read (mirrors `Database::select`).
    pub fn select(
        &self,
        table: &str,
        access: ScanAccess<'_>,
        filter: &mut dyn FnMut(&[Value]) -> bool,
        projection: Option<&[usize]>,
    ) -> Result<(Vec<Row>, usize)> {
        self.table(table)?.select(access, filter, projection)
    }

    /// All rows of a table in row-id order (mirrors `Database::scan`).
    pub fn scan(&self, table: &str) -> Result<Vec<Row>> {
        self.table(table)?.scan()
    }
}
