//! Replica-side WAL application: the storage half of log shipping.
//!
//! A primary streams its committed WAL frames to replicas (the network
//! legs live in `quarry-serve`); this module owns what a replica *does*
//! with them. The contract mirrors crash recovery exactly — a replica is
//! a database permanently running the redo pass:
//!
//! - **Frames apply at commit boundaries.** DML records buffer per
//!   transaction and apply only when that transaction's `Commit` frame
//!   arrives, through the same convergent `apply_*` paths recovery uses.
//!   A primary that dies mid-transaction therefore leaves the replica at
//!   the previous transaction boundary — never a hybrid — which is what
//!   the failover crash sweep asserts bit-for-bit.
//! - **Positions are `(epoch, offset)` pairs.** A WAL byte offset means
//!   nothing across a truncation, so every handshake carries the
//!   primary's checkpoint epoch, and any mismatch forces a **reseed**: a
//!   synthetic committed record stream recreating the primary's current
//!   tables ([`Database::seed_state`]), applied atomically here.
//! - **Reseeds are all-or-nothing.** Seed records buffer in the applier
//!   and install in one step when the seed ends; a promotion that lands
//!   mid-seed sees the pre-reseed state, which is itself a valid
//!   transaction boundary.
//!
//! Everything here is deterministic: no clocks, no randomness — the
//! applied state is a pure function of the frames received.

use crate::Result;
use std::collections::HashMap;
use std::sync::Arc;

use super::engine::Database;
use super::recovery::LogRecord;

/// A reseed payload captured on the primary: everything a blank replica
/// needs to reach the primary's committed state and start tailing.
#[derive(Debug, Clone)]
pub struct ReplicationSeed {
    /// The primary's checkpoint epoch at capture time.
    pub epoch: u64,
    /// WAL offset streaming resumes from. Frames at `>= start_offset`
    /// may re-cover the seed's tail; replaying them is convergent.
    pub start_offset: u64,
    /// Synthetic committed record stream recreating every table.
    pub records: Vec<LogRecord>,
}

/// How far a replica has gotten, as advertised to the primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicaPosition {
    /// The source epoch the offset belongs to.
    pub epoch: u64,
    /// Source-WAL byte offset applied through (the ack LSN).
    pub offset: u64,
}

/// Applies a shipped WAL stream to a local [`Database`].
///
/// Owned by the replication client; all methods are `&mut self`, with the
/// client responsible for locking (promotion must serialize against frame
/// application, so the applier lives behind one mutex — see the
/// `applier` entry in `audit/lock-order.toml`).
pub struct ReplicaApplier {
    db: Arc<Database>,
    /// DML of transactions whose commit frame has not arrived yet.
    pending: HashMap<u64, Vec<LogRecord>>,
    /// Position applied through, in source coordinates.
    position: ReplicaPosition,
    /// Highest transaction id seen in shipped history (promotion floor).
    max_tx: u64,
    /// True once any stream state exists (a fresh applier must always be
    /// seeded or resumed from offset 0 of a matching epoch).
    attached: bool,
    /// Seed records buffered between `begin_reseed` and `finish_reseed`.
    seed: Option<(ReplicaPosition, Vec<LogRecord>)>,
}

impl ReplicaApplier {
    /// An applier over `db`. The database should be otherwise idle: the
    /// applier is its only writer until promotion.
    pub fn new(db: Arc<Database>) -> ReplicaApplier {
        ReplicaApplier {
            db,
            pending: HashMap::new(),
            position: ReplicaPosition::default(),
            max_tx: 0,
            attached: false,
            seed: None,
        }
    }

    /// The database being applied into.
    pub fn database(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    /// Position applied through (the value to ack).
    pub fn position(&self) -> ReplicaPosition {
        self.position
    }

    /// True once the applier has been seeded or resumed at least once.
    pub fn attached(&self) -> bool {
        self.attached
    }

    /// Transactions currently buffered awaiting their commit frame.
    pub fn pending_txs(&self) -> usize {
        self.pending.len()
    }

    /// Adopt a resume position (the primary confirmed our `(epoch,
    /// offset)` is still live).
    pub fn resume(&mut self, epoch: u64, offset: u64) {
        self.position = ReplicaPosition { epoch, offset };
        self.attached = true;
        self.seed = None;
    }

    /// Start buffering a reseed targeted at `(epoch, start_offset)`.
    /// Nothing is applied (and nothing local is discarded) until
    /// [`ReplicaApplier::finish_reseed`] — an interrupted seed leaves the
    /// replica exactly where it was.
    pub fn begin_reseed(&mut self, epoch: u64, start_offset: u64) {
        self.seed = Some((ReplicaPosition { epoch, offset: start_offset }, Vec::new()));
    }

    /// Buffer one seed record (already decoded from its frame payload).
    /// Ignored unless a reseed is open.
    pub fn seed_record(&mut self, payload: &[u8]) -> Result<()> {
        if let Some((_, records)) = self.seed.as_mut() {
            records.push(LogRecord::decode(payload)?);
        }
        Ok(())
    }

    /// Atomically install the buffered seed: clear the local database,
    /// replay the seed records, and adopt the seed's position. No-op if
    /// no reseed is open.
    pub fn finish_reseed(&mut self) -> Result<()> {
        let Some((position, records)) = self.seed.take() else { return Ok(()) };
        self.db.replicate_reset()?;
        self.pending.clear();
        for rec in &records {
            if let Some(tx) = rec.tx() {
                self.max_tx = self.max_tx.max(tx);
            }
            self.db.replicate_append(&rec.encode()?)?;
            self.route(rec)?;
        }
        self.position = position;
        self.attached = true;
        Ok(())
    }

    /// Apply one shipped WAL frame payload. Advances the applied
    /// position by the frame's on-log footprint (`8 + payload.len()`),
    /// mirroring the source log's layout byte for byte.
    pub fn apply_frame(&mut self, payload: &[u8]) -> Result<()> {
        let rec = LogRecord::decode(payload)?;
        if let Some(tx) = rec.tx() {
            self.max_tx = self.max_tx.max(tx);
        }
        self.db.replicate_append(payload)?;
        self.route(&rec)?;
        self.position.offset += 8 + payload.len() as u64;
        Ok(())
    }

    /// Route one decoded record: buffer DML per transaction, apply on
    /// commit, drop on abort, apply DDL immediately (auto-committed at
    /// the source).
    fn route(&mut self, rec: &LogRecord) -> Result<()> {
        match rec {
            LogRecord::Begin { tx } => {
                self.pending.insert(*tx, Vec::new());
            }
            LogRecord::Insert { tx, .. }
            | LogRecord::Update { tx, .. }
            | LogRecord::Delete { tx, .. } => {
                self.pending.entry(*tx).or_default().push(rec.clone());
            }
            LogRecord::Commit { tx } => {
                let records = self.pending.remove(tx).unwrap_or_default();
                self.db.replicate_apply_commit(&records)?;
            }
            LogRecord::Abort { tx } => {
                self.pending.remove(tx);
            }
            LogRecord::CreateTable { .. }
            | LogRecord::DropTable { .. }
            | LogRecord::CreateIndex { .. } => {
                self.db.replicate_apply_ddl(rec)?;
            }
        }
        Ok(())
    }

    /// Promote: the replica becomes a primary. Buffered DML of
    /// unfinished transactions is discarded (their commits never
    /// arrived — exactly what redo recovery does), an open reseed is
    /// abandoned, the transaction-id floor moves past shipped history,
    /// and the local log is forced to stable storage.
    pub fn promote(&mut self) -> Result<()> {
        self.seed = None;
        self.pending.clear();
        self.db.adopt_tx_floor(self.max_tx);
        self.db.sync_wal()
    }
}

impl std::fmt::Debug for ReplicaApplier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaApplier")
            .field("position", &self.position)
            .field("pending_txs", &self.pending.len())
            .field("attached", &self.attached)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::table::{Column, TableSchema};
    use crate::value::{DataType, Value};
    use crate::wal::{TailPoll, WalTail};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("quarry-repl-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(
            name,
            vec![Column::new("id", DataType::Int), Column::new("val", DataType::Text)],
            &["id"],
            &[],
        )
        .unwrap()
    }

    /// Canonical comparable rendering of a database (schemas + rows in
    /// row-id order), the same shape the integration harness dumps.
    fn dump(db: &Database) -> String {
        let mut out = String::new();
        for name in db.table_names() {
            out.push_str(&format!("{:?}\n", db.schema(&name).unwrap()));
            for row in db.scan_autocommit(&name).unwrap() {
                out.push_str(&format!("{row:?}\n"));
            }
        }
        out
    }

    fn insert(db: &Database, table: &str, id: i64, val: &str) {
        db.insert_autocommit(table, vec![Value::Int(id), Value::Text(val.into())]).unwrap();
    }

    #[test]
    fn seed_recreates_the_primary_bit_for_bit() {
        let dir = tmpdir("seed");
        let primary = Database::open(dir.join("primary.wal")).unwrap();
        primary.create_table(schema("t")).unwrap();
        primary.create_index("t", "val").unwrap();
        for i in 0..20 {
            insert(&primary, "t", i, &format!("v{i}"));
        }
        let tx = primary.begin();
        primary.delete(tx, "t", &[Value::Int(7)]).unwrap();
        primary.commit(tx).unwrap();

        let seed = primary.seed_state().unwrap();
        let replica = Arc::new(Database::open(dir.join("replica.wal")).unwrap());
        let mut applier = ReplicaApplier::new(Arc::clone(&replica));
        applier.begin_reseed(seed.epoch, seed.start_offset);
        for rec in &seed.records {
            applier.seed_record(&rec.encode().unwrap()).unwrap();
        }
        applier.finish_reseed().unwrap();
        assert_eq!(dump(&primary), dump(&replica));
        // The index arrived through the schema and is live on the replica.
        assert_eq!(replica.indexed_columns("t").unwrap(), vec!["val".to_string()]);
        assert!(applier.attached());

        // Replica's own WAL is a real recovery source: reopen and compare.
        drop(applier);
        drop(replica);
        let reopened = Database::open(dir.join("replica.wal")).unwrap();
        assert_eq!(dump(&primary), dump(&reopened));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_excludes_uncommitted_in_flight_changes() {
        let dir = tmpdir("seed-dirty");
        let primary = Database::open(dir.join("primary.wal")).unwrap();
        primary.create_table(schema("t")).unwrap();
        insert(&primary, "t", 1, "committed");
        let open_tx = primary.begin();
        primary.insert(open_tx, "t", vec![Value::Int(2), Value::Text("dirty".into())]).unwrap();

        let seed = primary.seed_state().unwrap();
        let replica = Arc::new(Database::in_memory());
        let mut applier = ReplicaApplier::new(Arc::clone(&replica));
        applier.begin_reseed(seed.epoch, seed.start_offset);
        for rec in &seed.records {
            applier.seed_record(&rec.encode().unwrap()).unwrap();
        }
        applier.finish_reseed().unwrap();
        assert_eq!(replica.row_count("t").unwrap(), 1, "uncommitted row must not ship");
        primary.abort(open_tx).unwrap();
        assert_eq!(dump(&primary), dump(&replica));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tailed_frames_apply_at_commit_boundaries() {
        let dir = tmpdir("tail-apply");
        let primary = Database::open(dir.join("primary.wal")).unwrap();
        let mut tail = WalTail::new(primary.storage_backend(), primary.wal_path().unwrap(), 0);
        let replica = Arc::new(Database::in_memory());
        let mut applier = ReplicaApplier::new(Arc::clone(&replica));
        applier.resume(primary.checkpoint_epoch(), 0);

        let mut pump = |applier: &mut ReplicaApplier| loop {
            match tail.poll().unwrap() {
                TailPoll::Records(recs) => {
                    for r in &recs {
                        applier.apply_frame(&r.payload).unwrap();
                    }
                }
                TailPoll::Idle => break,
                TailPoll::Truncated => panic!("no truncation expected"),
            }
        };

        primary.create_table(schema("t")).unwrap();
        insert(&primary, "t", 1, "a");
        insert(&primary, "t", 2, "b");
        pump(&mut applier);
        // Position check before dump(): dumping the primary scans through
        // an auto-commit transaction, which itself appends to its WAL.
        assert_eq!(applier.position().offset, primary.wal_len());
        assert_eq!(dump(&primary), dump(&replica));

        // An uncommitted transaction ships but must not apply.
        let open_tx = primary.begin();
        primary.insert(open_tx, "t", vec![Value::Int(3), Value::Text("c".into())]).unwrap();
        primary.sync_wal().unwrap();
        pump(&mut applier);
        assert_eq!(replica.row_count("t").unwrap(), 2);
        assert_eq!(applier.pending_txs(), 1);

        primary.commit(open_tx).unwrap();
        pump(&mut applier);
        assert_eq!(replica.row_count("t").unwrap(), 3);
        assert_eq!(dump(&primary), dump(&replica));

        // Promotion discards nothing here (no pending) and floors tx ids.
        applier.promote().unwrap();
        let tx = replica.begin();
        replica.insert(tx, "t", vec![Value::Int(9), Value::Text("post".into())]).unwrap();
        replica.commit(tx).unwrap();
        assert_eq!(replica.row_count("t").unwrap(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_reseed_leaves_prior_state_intact() {
        let dir = tmpdir("reseed-interrupt");
        let primary = Database::open(dir.join("primary.wal")).unwrap();
        primary.create_table(schema("t")).unwrap();
        insert(&primary, "t", 1, "old");

        let replica = Arc::new(Database::in_memory());
        let mut applier = ReplicaApplier::new(Arc::clone(&replica));
        // First seed completes.
        let seed = primary.seed_state().unwrap();
        applier.begin_reseed(seed.epoch, seed.start_offset);
        for rec in &seed.records {
            applier.seed_record(&rec.encode().unwrap()).unwrap();
        }
        applier.finish_reseed().unwrap();
        let before = dump(&replica);

        // Second seed starts but is interrupted mid-stream by promotion.
        insert(&primary, "t", 2, "new");
        let seed2 = primary.seed_state().unwrap();
        applier.begin_reseed(seed2.epoch, seed2.start_offset);
        applier.seed_record(&seed2.records[0].encode().unwrap()).unwrap();
        applier.promote().unwrap();
        assert_eq!(dump(&replica), before, "partial seed must not leak");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncation_is_visible_to_the_tail() {
        let dir = tmpdir("ckpt-trunc");
        let primary = Database::open(dir.join("primary.wal")).unwrap();
        let epoch0 = primary.checkpoint_epoch();
        let mut tail = WalTail::new(primary.storage_backend(), primary.wal_path().unwrap(), 0);
        primary.create_table(schema("t")).unwrap();
        insert(&primary, "t", 1, "a");
        assert!(matches!(tail.poll().unwrap(), TailPoll::Records(_)));
        primary.checkpoint().unwrap();
        assert_eq!(primary.checkpoint_epoch(), epoch0 + 1);
        assert_eq!(tail.poll().unwrap(), TailPoll::Truncated);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
