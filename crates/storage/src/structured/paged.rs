//! Paged checkpoint images behind the engine: B-tree table bases and the
//! merged base + overlay read path.
//!
//! Since PR 9 a checkpoint image holds three B-trees per table (rows by
//! row id, primary keys, and one tree per secondary index) instead of a
//! sequential heap chain. That turns the image from a load-once stream
//! into a *random-access base*: [`super::engine::Database`] keeps each
//! table as a small in-memory **overlay** (rows written since the last
//! checkpoint, plus tombstones for deleted base rows) stacked on an
//! immutable [`TableBase`], and faults base pages through the image's
//! buffer pool on demand. Opening a database no longer materializes any
//! rows; resident memory after `open` is bounded by the pool, not the
//! corpus.
//!
//! Everything here is read-path plumbing shared by the live engine and
//! the MVCC [`super::view::TableView`]s, so both read worlds merge the
//! same way: overlay shadows base, tombstones hide base rows, row-id
//! order everywhere a heap scan used to be.
//!
//! The directory format is versioned. A v2 directory starts with a
//! `u64::MAX` sentinel (impossible as a v1 table count); anything else is
//! the PR-7 heap-chain layout, which the engine still loads by
//! materializing — migration to trees happens on the next checkpoint.

use crate::btree::{self, BTree, KeyOrder};
use crate::codec;
use crate::error::StorageError;
use crate::faultfs::StorageBackend;
use crate::page::NO_PAGE;
use crate::pager::{Pager, PoolStats};
use crate::value::Value;
use crate::Result;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

use super::index::SecondaryIndex;
use super::table::{Row, RowId, TableSchema};

/// First varint of a v2 directory. A v1 directory starts with its table
/// count, which can never be `u64::MAX`.
const DIRECTORY_V2_SENTINEL: u64 = u64::MAX;
/// Directory format version written after the sentinel.
const DIRECTORY_V2_VERSION: u64 = 2;

/// One open checkpoint image: a paged file plus the buffer pool its
/// readers share. All tables of a checkpoint share one image (and one
/// pool), mirroring how they share the file.
pub(crate) struct CheckpointImage {
    /// The pager; a mutex because reads go through the LRU pool.
    pub(crate) pager: Mutex<Pager>,
}

impl std::fmt::Debug for CheckpointImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointImage").finish()
    }
}

impl CheckpointImage {
    /// Open the image at `path` with a bounded buffer pool.
    pub(crate) fn open(
        backend: &dyn StorageBackend,
        path: &Path,
        pool_pages: usize,
    ) -> Result<CheckpointImage> {
        Ok(CheckpointImage { pager: Mutex::new(Pager::open(backend, path, pool_pages)?) })
    }

    /// Buffer-pool counters (bench/diagnostics).
    pub(crate) fn pool_stats(&self) -> PoolStats {
        self.pager.lock().pool_stats()
    }

    /// Pages currently cached by the pool (bench/diagnostics).
    pub(crate) fn cached_pages(&self) -> usize {
        self.pager.lock().cached_pages()
    }
}

/// Tree roots and statistics of one secondary index inside an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct IndexMeta {
    /// Root page of the `(value, row id)` tree.
    pub(crate) root: u32,
    /// Distinct indexed values at checkpoint time (planner estimate).
    pub(crate) distinct: u64,
}

/// Tree roots and counters of one table inside an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BaseMeta {
    /// Root of the row tree: `row id → encoded row`.
    pub(crate) row_root: u32,
    /// Root of the primary-key tree: `pk values → row id`.
    pub(crate) pk_root: u32,
    /// Live rows in the image.
    pub(crate) nrows: u64,
    /// Row-id allocator floor: fresh inserts start here.
    pub(crate) next_row: u64,
    /// Column name → secondary-index tree.
    pub(crate) indexes: HashMap<String, IndexMeta>,
}

/// One table's slice of a checkpoint image: the shared image handle plus
/// this table's tree roots. Cloning is two `Arc` bumps.
#[derive(Debug, Clone)]
pub(crate) struct TableBase {
    pub(crate) image: Arc<CheckpointImage>,
    pub(crate) meta: Arc<BaseMeta>,
}

impl TableBase {
    /// Point lookup in the row tree.
    pub(crate) fn get_row(&self, id: RowId) -> Result<Option<Row>> {
        if self.meta.row_root == NO_PAGE {
            return Ok(None);
        }
        let mut pg = self.image.pager.lock();
        let tree = BTree::open(self.meta.row_root, KeyOrder::RowId);
        match tree.lookup(&mut pg, &btree::row_key(id.0))? {
            Some(bytes) => Ok(Some(decode_base_row(&bytes)?)),
            None => Ok(None),
        }
    }

    /// Point lookup in the primary-key tree.
    pub(crate) fn lookup_pk(&self, key: &[Value]) -> Result<Option<RowId>> {
        if self.meta.pk_root == NO_PAGE {
            return Ok(None);
        }
        let mut pg = self.image.pager.lock();
        let tree = BTree::open(self.meta.pk_root, KeyOrder::PkValues);
        match tree.lookup(&mut pg, &btree::pk_key(key)?)? {
            Some(bytes) => Ok(Some(decode_row_id(&bytes)?)),
            None => Ok(None),
        }
    }
}

/// Encode a row as a row-tree value.
pub(crate) fn encode_base_row(row: &Row) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    codec::write_row(&mut out, row)?;
    Ok(out)
}

/// Decode a row-tree value, rejecting trailing bytes.
fn decode_base_row(bytes: &[u8]) -> Result<Row> {
    let pos = &mut 0usize;
    let row = codec::read_row(bytes, pos)?;
    if *pos != bytes.len() {
        return Err(StorageError::Corrupt("base row value has trailing bytes".into()));
    }
    Ok(row)
}

/// Decode a pk-tree value (a row id), rejecting trailing bytes.
fn decode_row_id(bytes: &[u8]) -> Result<RowId> {
    let pos = &mut 0usize;
    let id = codec::read_u64(bytes, pos)?;
    if *pos != bytes.len() {
        return Err(StorageError::Corrupt("pk value has trailing bytes".into()));
    }
    Ok(RowId(id))
}

fn page_id(v: u64, what: &str) -> Result<u32> {
    u32::try_from(v)
        .map_err(|_| StorageError::Corrupt(format!("{what} {v} overflows the page-id range")))
}

// ---------------------------------------------------------------------
// Directory v2
// ---------------------------------------------------------------------

/// One table's directory entry in a v2 image.
#[derive(Debug, Clone)]
pub(crate) struct DirectoryEntry {
    pub(crate) schema: TableSchema,
    pub(crate) meta: BaseMeta,
}

/// Encode a v2 directory (sentinel, version, then per-table schema +
/// tree roots). Index entries are written sorted by column name so the
/// byte stream is deterministic under the crash sweeps.
pub(crate) fn encode_directory_v2(entries: &[DirectoryEntry]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    codec::write_u64(&mut out, DIRECTORY_V2_SENTINEL)?;
    codec::write_u64(&mut out, DIRECTORY_V2_VERSION)?;
    codec::write_u64(&mut out, entries.len() as u64)?;
    for e in entries {
        codec::write_schema(&mut out, &e.schema)?;
        codec::write_u64(&mut out, u64::from(e.meta.row_root))?;
        codec::write_u64(&mut out, u64::from(e.meta.pk_root))?;
        codec::write_u64(&mut out, e.meta.nrows)?;
        codec::write_u64(&mut out, e.meta.next_row)?;
        let mut cols: Vec<&String> = e.meta.indexes.keys().collect();
        cols.sort();
        codec::write_u64(&mut out, cols.len() as u64)?;
        for col in cols {
            let im = &e.meta.indexes[col];
            codec::write_str(&mut out, col)?;
            codec::write_u64(&mut out, u64::from(im.root))?;
            codec::write_u64(&mut out, im.distinct)?;
        }
    }
    Ok(out)
}

/// Decode a directory if it is v2; `Ok(None)` means the bytes are a v1
/// (heap-chain) directory and the caller should use the legacy loader.
pub(crate) fn decode_directory_v2(dir: &[u8]) -> Result<Option<Vec<DirectoryEntry>>> {
    let pos = &mut 0usize;
    if codec::read_u64(dir, pos)? != DIRECTORY_V2_SENTINEL {
        return Ok(None);
    }
    let version = codec::read_u64(dir, pos)?;
    if version != DIRECTORY_V2_VERSION {
        return Err(StorageError::Corrupt(format!(
            "unknown checkpoint directory version {version}"
        )));
    }
    let ntables = codec::read_u64(dir, pos)? as usize;
    let mut entries = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let schema = codec::read_schema(dir, pos)?;
        let row_root = page_id(codec::read_u64(dir, pos)?, "row-tree root")?;
        let pk_root = page_id(codec::read_u64(dir, pos)?, "pk-tree root")?;
        let nrows = codec::read_u64(dir, pos)?;
        let next_row = codec::read_u64(dir, pos)?;
        let nindexes = codec::read_u64(dir, pos)? as usize;
        let mut indexes = HashMap::with_capacity(nindexes);
        for _ in 0..nindexes {
            let col = codec::read_str(dir, pos)?;
            let root = page_id(codec::read_u64(dir, pos)?, "index-tree root")?;
            let distinct = codec::read_u64(dir, pos)?;
            indexes.insert(col, IndexMeta { root, distinct });
        }
        entries.push(DirectoryEntry {
            schema,
            meta: BaseMeta { row_root, pk_root, nrows, next_row, indexes },
        });
    }
    if *pos != dir.len() {
        return Err(StorageError::Corrupt("checkpoint directory has trailing bytes".into()));
    }
    Ok(Some(entries))
}

// ---------------------------------------------------------------------
// Merged reads
// ---------------------------------------------------------------------

/// Stream every live row in row-id order: the base image's row tree
/// merged with the (sorted) overlay. Overlay rows shadow base rows with
/// the same id; tombstoned base rows are skipped. Base pages fault
/// through the image's buffer pool, so peak memory is one row plus the
/// pool — never the table.
pub(crate) fn for_each_live_row(
    base: Option<&TableBase>,
    overlay: &[(RowId, &Row)],
    tombstones: &HashSet<RowId>,
    f: &mut dyn FnMut(RowId, &Row) -> Result<()>,
) -> Result<()> {
    let mut oi = 0usize;
    if let Some(b) = base {
        if b.meta.row_root != NO_PAGE {
            let mut pg = b.image.pager.lock();
            let tree = BTree::open(b.meta.row_root, KeyOrder::RowId);
            let mut cur = tree.cursor_first(&mut pg)?;
            while let Some((k, v)) = cur.next(&mut pg)? {
                let id = RowId(btree::decode_row_key(&k)?);
                while oi < overlay.len() && overlay[oi].0 < id {
                    f(overlay[oi].0, overlay[oi].1)?;
                    oi += 1;
                }
                if oi < overlay.len() && overlay[oi].0 == id {
                    f(id, overlay[oi].1)?; // overlay shadows base
                    oi += 1;
                    continue;
                }
                if tombstones.contains(&id) {
                    continue;
                }
                let row = decode_base_row(&v)?;
                f(id, &row)?;
            }
        }
    }
    while oi < overlay.len() {
        f(overlay[oi].0, overlay[oi].1)?;
        oi += 1;
    }
    Ok(())
}

/// Candidate row ids for an index probe over `[lo, hi]` (inclusive,
/// either bound optional), merged from the base index tree and the
/// overlay index in **(value, row-id) order** — the order the in-memory
/// `SecondaryIndex::range` has always returned. `shadowed` filters stale
/// base entries: a base row that was updated or deleted since the
/// checkpoint is represented by the overlay (or by nothing), never by
/// its old base index entry.
pub(crate) fn merged_index_ids(
    base: Option<&TableBase>,
    column: &str,
    overlay: &SecondaryIndex,
    shadowed: &dyn Fn(RowId) -> bool,
    lo: Option<&Value>,
    hi: Option<&Value>,
) -> Result<Vec<RowId>> {
    if let (Some(lo), Some(hi)) = (lo, hi) {
        if lo > hi {
            return Ok(Vec::new()); // inverted window, like SecondaryIndex::range
        }
    }
    let over = overlay.range_pairs(lo, hi);
    let base_ix = base.and_then(|b| b.meta.indexes.get(column).map(|m| (b, m)));
    let Some((b, m)) = base_ix else {
        // No base tree for this column (in-memory table, or an index
        // created after the checkpoint and backfilled into the overlay).
        return Ok(over.into_iter().map(|(_, id)| id).collect());
    };
    let mut out = Vec::with_capacity(over.len());
    let mut oi = 0usize;
    if m.root != NO_PAGE {
        let mut pg = b.image.pager.lock();
        let tree = BTree::open(m.root, KeyOrder::ValueRowId);
        let mut cur = match lo {
            Some(v) => tree.cursor_seek(&mut pg, &btree::index_key(v, 0)?)?,
            None => tree.cursor_first(&mut pg)?,
        };
        while let Some((k, _)) = cur.next(&mut pg)? {
            let (val, rid) = btree::decode_index_key(&k)?;
            if let Some(hi) = hi {
                if &val > hi {
                    break;
                }
            }
            let id = RowId(rid);
            while oi < over.len() && (&over[oi].0, over[oi].1) < (&val, id) {
                out.push(over[oi].1);
                oi += 1;
            }
            if !shadowed(id) {
                out.push(id);
            }
        }
    }
    while oi < over.len() {
        out.push(over[oi].1);
        oi += 1;
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Image construction
// ---------------------------------------------------------------------

/// Build one table's trees inside the image under construction and
/// return their roots. Rows stream in row-id order from the merged
/// live-row iterator (so the row tree takes the append-optimized split
/// path), while pk and index keys arrive in row-id order — effectively
/// random key order — exercising real mid-node splits under the crash
/// sweeps. Distinct-value counts fall out of the index trees' group
/// accounting as they build.
pub(crate) fn build_table_trees(
    pager: &mut Pager,
    schema: &TableSchema,
    base: Option<&TableBase>,
    overlay: &[(RowId, &Row)],
    tombstones: &HashSet<RowId>,
    next_row: u64,
) -> Result<BaseMeta> {
    let mut row_tree = BTree::create(pager, KeyOrder::RowId)?;
    let mut pk_tree = BTree::create(pager, KeyOrder::PkValues)?;
    let mut ix_cols: Vec<String> = schema.indexes.clone();
    ix_cols.sort();
    let mut ix_trees = Vec::with_capacity(ix_cols.len());
    for col in &ix_cols {
        let ci = schema.column_index(col).ok_or_else(|| {
            StorageError::Corrupt(format!("indexed column {col} missing from schema"))
        })?;
        ix_trees.push((col.clone(), ci, BTree::create(pager, KeyOrder::ValueRowId)?, 0u64));
    }
    let mut nrows = 0u64;
    let mut idbuf = Vec::new();
    for_each_live_row(base, overlay, tombstones, &mut |id, row| {
        row_tree.insert(pager, &btree::row_key(id.0), &encode_base_row(row)?)?;
        idbuf.clear();
        codec::write_u64(&mut idbuf, id.0)?;
        pk_tree.insert(pager, &btree::pk_key(&schema.key_of(row))?, &idbuf)?;
        for (col, ci, tree, distinct) in ix_trees.iter_mut() {
            let value = row.get(*ci).ok_or_else(|| {
                StorageError::Corrupt(format!("row {id:?} is missing indexed column {col}"))
            })?;
            let out = tree.insert(pager, &btree::index_key(value, id.0)?, &[])?;
            if out.new_group {
                *distinct += 1;
            }
        }
        nrows += 1;
        Ok(())
    })?;
    let indexes = ix_trees
        .into_iter()
        .map(|(col, _, tree, distinct)| (col, IndexMeta { root: tree.root(), distinct }))
        .collect();
    Ok(BaseMeta { row_root: row_tree.root(), pk_root: pk_tree.root(), nrows, next_row, indexes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultfs::RealBackend;
    use crate::structured::table::Column;
    use crate::value::DataType;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("quarry-paged-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.qpg", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![Column::new("k", DataType::Text), Column::new("n", DataType::Int)],
            &["k"],
            &["n"],
        )
        .unwrap()
    }

    #[test]
    fn directory_v2_round_trips_and_v1_is_recognized() {
        let entries = vec![DirectoryEntry {
            schema: schema(),
            meta: BaseMeta {
                row_root: 3,
                pk_root: 7,
                nrows: 42,
                next_row: 50,
                indexes: HashMap::from([("n".to_string(), IndexMeta { root: 9, distinct: 12 })]),
            },
        }];
        let bytes = encode_directory_v2(&entries).unwrap();
        let back = decode_directory_v2(&bytes).unwrap().expect("v2 directory");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].meta, entries[0].meta);
        assert_eq!(back[0].schema.name, "t");

        // A v1 directory (plain table count first) is not misdetected.
        let mut v1 = Vec::new();
        codec::write_u64(&mut v1, 1).unwrap();
        assert!(decode_directory_v2(&v1).unwrap().is_none());
    }

    #[test]
    fn build_and_merge_round_trip() {
        let p = tmp("build");
        let sch = schema();
        let rows: Vec<(RowId, Row)> = (0..500u64)
            .map(|i| (RowId(i), vec![Value::Text(format!("k{i:04}")), Value::Int((i % 7) as i64)]))
            .collect();
        let refs: Vec<(RowId, &Row)> = rows.iter().map(|(id, r)| (*id, r)).collect();
        let meta = {
            let mut pager = Pager::create(&RealBackend, &p, 8).unwrap();
            let meta =
                build_table_trees(&mut pager, &sch, None, &refs, &HashSet::new(), 500).unwrap();
            pager.flush().unwrap();
            meta
        };
        assert_eq!(meta.nrows, 500);
        assert_eq!(meta.indexes["n"].distinct, 7);

        let image = Arc::new(CheckpointImage::open(&RealBackend, &p, 8).unwrap());
        let base = TableBase { image, meta: Arc::new(meta) };
        // Point reads.
        assert_eq!(base.get_row(RowId(123)).unwrap().unwrap(), rows[123].1);
        assert!(base.get_row(RowId(999)).unwrap().is_none());
        assert_eq!(base.lookup_pk(&[Value::Text("k0042".into())]).unwrap(), Some(RowId(42)));
        assert_eq!(base.lookup_pk(&[Value::Text("nope".into())]).unwrap(), None);

        // Merged scan with an overlay shadowing one row, adding one, and a
        // tombstone deleting another.
        let shadow: Row = vec![Value::Text("k0010".into()), Value::Int(99)];
        let fresh: Row = vec![Value::Text("zz".into()), Value::Int(1)];
        let overlay = vec![(RowId(10), &shadow), (RowId(700), &fresh)];
        let tomb: HashSet<RowId> = HashSet::from([RowId(20)]);
        let mut seen = Vec::new();
        for_each_live_row(Some(&base), &overlay, &tomb, &mut |id, row| {
            seen.push((id, row.clone()));
            Ok(())
        })
        .unwrap();
        assert_eq!(seen.len(), 500); // 500 - 1 tombstone + 1 fresh
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0), "row-id order");
        assert!(!seen.iter().any(|(id, _)| *id == RowId(20)));
        assert_eq!(seen.iter().find(|(id, _)| *id == RowId(10)).unwrap().1[1], Value::Int(99));
        assert_eq!(seen.last().unwrap().0, RowId(700));

        // Merged index probe: base entries minus shadowed/tombstoned plus
        // overlay entries, in (value, row-id) order.
        let mut over_ix = SecondaryIndex::new();
        over_ix.insert(Value::Int(99), RowId(10));
        over_ix.insert(Value::Int(1), RowId(700));
        let shadowed = |id: RowId| id == RowId(10) || id == RowId(20);
        let ids = merged_index_ids(
            Some(&base),
            "n",
            &over_ix,
            &shadowed,
            Some(&Value::Int(1)),
            Some(&Value::Int(1)),
        )
        .unwrap();
        // Base rows with n == 1: ids ≡ 1 (mod 7) → 1, 8, 15, ... minus none
        // shadowed in this range except none; plus overlay RowId(700).
        assert!(ids.contains(&RowId(1)) && ids.contains(&RowId(8)) && ids.contains(&RowId(700)));
        assert!(!ids.contains(&RowId(10)) && !ids.contains(&RowId(20)));
        let expected: usize = (0..500).filter(|i| i % 7 == 1 && *i != 15).count();
        // RowId(15) has n == 1 and is not shadowed — recount without the
        // bogus exclusion: every id ≡ 1 (mod 7) in 0..500 stays.
        let _ = expected;
        assert_eq!(ids.len(), (0..500u64).filter(|i| i % 7 == 1).count() + 1);

        std::fs::remove_file(&p).unwrap();
    }
}
