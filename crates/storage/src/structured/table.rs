//! Table schemas, rows, and schema validation.

use crate::error::StorageError;
use crate::value::{DataType, Value};
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Internal identifier of a stored row, unique within its table forever
/// (never reused after deletion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowId(pub u64);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row:{}", self.0)
    }
}

/// One stored row: values positionally aligned with the schema's columns.
pub type Row = Vec<Value>;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name, unique within the table.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

impl Column {
    /// Shorthand constructor for a NOT NULL column.
    pub fn new(name: &str, dtype: DataType) -> Column {
        Column { name: name.to_string(), dtype, nullable: false }
    }

    /// Shorthand constructor for a nullable column.
    pub fn nullable(name: &str, dtype: DataType) -> Column {
        Column { name: name.to_string(), dtype, nullable: true }
    }
}

/// A table schema: named, typed columns plus a primary key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name, unique within a database.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<Column>,
    /// Indexes (into `columns`) of the primary-key columns, in key order.
    pub key: Vec<usize>,
    /// Names of columns carrying a secondary index.
    pub indexes: Vec<String>,
}

impl TableSchema {
    /// Build a schema; `key` and `indexes` are column names.
    ///
    /// Errors if names are duplicated or a key/index column is unknown, or a
    /// key column is nullable.
    pub fn new(
        name: &str,
        columns: Vec<Column>,
        key: &[&str],
        indexes: &[&str],
    ) -> Result<TableSchema> {
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.as_str()) {
                return Err(StorageError::SchemaViolation(format!(
                    "duplicate column {} in table {name}",
                    c.name
                )));
            }
        }
        let resolve = |n: &str| {
            columns.iter().position(|c| c.name == n).ok_or_else(|| {
                StorageError::SchemaViolation(format!("unknown column {n} in table {name}"))
            })
        };
        let key_idx: Vec<usize> = key.iter().map(|n| resolve(n)).collect::<Result<_>>()?;
        if key_idx.is_empty() {
            return Err(StorageError::SchemaViolation(format!(
                "table {name} needs at least one key column"
            )));
        }
        for &k in &key_idx {
            if columns[k].nullable {
                return Err(StorageError::SchemaViolation(format!(
                    "key column {} of {name} must be NOT NULL",
                    columns[k].name
                )));
            }
        }
        let mut index_names = Vec::with_capacity(indexes.len());
        for n in indexes {
            resolve(n)?;
            index_names.push(n.to_string());
        }
        Ok(TableSchema { name: name.to_string(), columns, key: key_idx, indexes: index_names })
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Extract the primary-key values of a row.
    pub fn key_of(&self, row: &Row) -> Vec<Value> {
        self.key.iter().map(|&i| row[i].clone()).collect()
    }

    /// Validate a row against this schema (arity, types, nullability).
    pub fn validate(&self, row: &Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(StorageError::SchemaViolation(format!(
                "table {}: expected {} values, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.columns) {
            if v.is_null() {
                if !c.nullable {
                    return Err(StorageError::SchemaViolation(format!(
                        "table {}: column {} is NOT NULL",
                        self.name, c.name
                    )));
                }
            } else if !v.fits(c.dtype) {
                return Err(StorageError::SchemaViolation(format!(
                    "table {}: column {} expects {}, got {v}",
                    self.name, c.name, c.dtype
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "cities",
            vec![
                Column::new("name", DataType::Text),
                Column::new("population", DataType::Int),
                Column::nullable("area", DataType::Float),
            ],
            &["name"],
            &["population"],
        )
        .unwrap()
    }

    #[test]
    fn valid_row_passes() {
        let s = schema();
        s.validate(&vec!["Madison".into(), Value::Int(250_000), Value::Float(77.0)]).unwrap();
        // Int widens into Float column; NULL allowed in nullable column.
        s.validate(&vec!["X".into(), Value::Int(1), Value::Int(3)]).unwrap();
        s.validate(&vec!["X".into(), Value::Int(1), Value::Null]).unwrap();
    }

    #[test]
    fn arity_type_and_null_violations() {
        let s = schema();
        assert!(s.validate(&vec!["Madison".into()]).is_err());
        assert!(s.validate(&vec!["M".into(), "not a number".into(), Value::Null]).is_err());
        assert!(s.validate(&vec![Value::Null, Value::Int(1), Value::Null]).is_err());
    }

    #[test]
    fn key_extraction() {
        let s = schema();
        let row: Row = vec!["Madison".into(), Value::Int(1), Value::Null];
        assert_eq!(s.key_of(&row), vec![Value::Text("Madison".into())]);
    }

    #[test]
    fn schema_construction_errors() {
        let cols = vec![Column::new("a", DataType::Int), Column::new("a", DataType::Int)];
        assert!(TableSchema::new("t", cols, &["a"], &[]).is_err());

        let cols = vec![Column::new("a", DataType::Int)];
        assert!(TableSchema::new("t", cols.clone(), &["b"], &[]).is_err());
        assert!(TableSchema::new("t", cols.clone(), &[], &[]).is_err());
        assert!(TableSchema::new("t", cols, &["a"], &["zz"]).is_err());

        let cols = vec![Column::nullable("a", DataType::Int)];
        assert!(TableSchema::new("t", cols, &["a"], &[]).is_err());
    }

    #[test]
    fn column_index_lookup() {
        let s = schema();
        assert_eq!(s.column_index("area"), Some(2));
        assert_eq!(s.column_index("nope"), None);
    }
}
