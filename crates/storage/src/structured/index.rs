//! Secondary indexes: ordered value → row-id maps kept in lockstep with the
//! heap. Equality and range probes both come off the same B-tree.

use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use super::table::RowId;

/// One secondary index over a single column.
#[derive(Debug, Clone, Default)]
pub struct SecondaryIndex {
    map: BTreeMap<Value, BTreeSet<RowId>>,
    entries: usize,
}

impl SecondaryIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `row` under `value`.
    pub fn insert(&mut self, value: Value, row: RowId) {
        if self.map.entry(value).or_default().insert(row) {
            self.entries += 1;
        }
    }

    /// Remove `row` from under `value` (no-op if absent).
    pub fn remove(&mut self, value: &Value, row: RowId) {
        if let Some(set) = self.map.get_mut(value) {
            if set.remove(&row) {
                self.entries -= 1;
            }
            if set.is_empty() {
                self.map.remove(value);
            }
        }
    }

    /// Rows whose indexed value equals `value`.
    pub fn get(&self, value: &Value) -> impl Iterator<Item = RowId> + '_ {
        self.map.get(value).into_iter().flatten().copied()
    }

    /// Rows whose indexed value falls in `[lo, hi]` (either bound optional).
    /// An inverted window (`lo > hi`) is an empty result, not a panic — the
    /// planner derives bounds from arbitrary user conjunctions.
    pub fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<RowId> {
        if let (Some(lo), Some(hi)) = (lo, hi) {
            if lo > hi {
                return Vec::new();
            }
        }
        let lo = lo.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        let hi = hi.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        self.map.range((lo, hi)).flat_map(|(_, rows)| rows.iter().copied()).collect()
    }

    /// Like [`range`](Self::range), but yields `(value, row)` pairs in
    /// `(value, row-id)` order — the merge key used when combining this
    /// overlay index with a checkpoint image's index tree.
    pub fn range_pairs(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<(Value, RowId)> {
        if let (Some(lo), Some(hi)) = (lo, hi) {
            if lo > hi {
                return Vec::new();
            }
        }
        let lo = lo.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        let hi = hi.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        self.map
            .range((lo, hi))
            .flat_map(|(v, rows)| rows.iter().map(move |r| (v.clone(), *r)))
            .collect()
    }

    /// Total (value, row) pairs indexed.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Distinct indexed values (used by the optimizer's selectivity model).
    pub fn distinct_values(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut ix = SecondaryIndex::new();
        ix.insert(Value::Int(10), RowId(1));
        ix.insert(Value::Int(10), RowId(2));
        ix.insert(Value::Int(20), RowId(3));
        assert_eq!(ix.get(&Value::Int(10)).count(), 2);
        assert_eq!(ix.len(), 3);
        ix.remove(&Value::Int(10), RowId(1));
        assert_eq!(ix.get(&Value::Int(10)).collect::<Vec<_>>(), vec![RowId(2)]);
        assert_eq!(ix.len(), 2);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut ix = SecondaryIndex::new();
        ix.insert(Value::Int(1), RowId(5));
        ix.insert(Value::Int(1), RowId(5));
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut ix = SecondaryIndex::new();
        ix.remove(&Value::Int(1), RowId(5));
        assert!(ix.is_empty());
    }

    #[test]
    fn range_queries_inclusive() {
        let mut ix = SecondaryIndex::new();
        for i in 0..10 {
            ix.insert(Value::Int(i), RowId(i as u64));
        }
        let rows = ix.range(Some(&Value::Int(3)), Some(&Value::Int(6)));
        assert_eq!(rows, vec![RowId(3), RowId(4), RowId(5), RowId(6)]);
        let open = ix.range(Some(&Value::Int(8)), None);
        assert_eq!(open, vec![RowId(8), RowId(9)]);
        let all = ix.range(None, None);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn mixed_numeric_types_share_order() {
        let mut ix = SecondaryIndex::new();
        ix.insert(Value::Int(2), RowId(1));
        ix.insert(Value::Float(2.5), RowId(2));
        ix.insert(Value::Int(3), RowId(3));
        let rows = ix.range(Some(&Value::Float(2.1)), Some(&Value::Int(3)));
        assert_eq!(rows, vec![RowId(2), RowId(3)]);
    }

    #[test]
    fn distinct_values_counts_keys() {
        let mut ix = SecondaryIndex::new();
        ix.insert(Value::Int(1), RowId(1));
        ix.insert(Value::Int(1), RowId(2));
        ix.insert(Value::Int(2), RowId(3));
        assert_eq!(ix.distinct_values(), 2);
    }
}
