//! WAL record schema and redo recovery.
//!
//! Records are binary-encoded through [`crate::codec`] (one per WAL
//! frame), prefixed with a format byte so logs written by older versions —
//! which used JSON — still replay: `0x01` selects the binary-v1 decoder,
//! and `0x7B` (ASCII `{`, the first byte of every JSON object) falls back
//! to serde_json. The two formats may be mixed record-by-record within one
//! log, which is exactly what happens when a new binary engine appends to
//! a log begun by an old JSON one.
//!
//! Recovery is redo-only: a first pass finds the committed transaction
//! set; a second pass reapplies, in log order, the operations of exactly
//! those transactions. A crash discards all in-memory state, and the redo
//! pass filters out records of uncommitted transactions, so no undo pass
//! is needed.

use crate::codec;
use crate::error::StorageError;
use crate::Result;
use serde::{Deserialize, Serialize};

use super::table::{Row, RowId, TableSchema};

/// Format byte opening every binary-v1 record.
pub const BINARY_V1: u8 = 0x01;
/// First byte of every legacy JSON record (`{`).
const JSON_OPEN: u8 = b'{';

/// Which wire format [`LogRecord::encode_with`] emits. Decoding always
/// accepts both; this knob exists so the storage bench can measure the
/// legacy JSON path against binary on identical workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalCodec {
    /// Compact binary (the default).
    #[default]
    BinaryV1,
    /// Legacy serde_json (pre-paged-engine logs).
    Json,
}

/// Record kind tags for the binary encoding.
const K_CREATE_TABLE: u8 = 0;
const K_DROP_TABLE: u8 = 1;
const K_CREATE_INDEX: u8 = 2;
const K_BEGIN: u8 = 3;
const K_INSERT: u8 = 4;
const K_UPDATE: u8 = 5;
const K_DELETE: u8 = 6;
const K_COMMIT: u8 = 7;
const K_ABORT: u8 = 8;

/// Everything the structured store writes to its WAL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// DDL: a table was created (auto-committed).
    CreateTable {
        /// The new table's schema.
        schema: TableSchema,
    },
    /// DDL: a table was dropped (auto-committed).
    DropTable {
        /// Name of the dropped table.
        table: String,
    },
    /// DDL: a secondary index was created on an existing table
    /// (auto-committed; redo rebuilds the index from the recovered heap).
    CreateIndex {
        /// Table the index belongs to.
        table: String,
        /// Indexed column name.
        column: String,
    },
    /// Transaction start.
    Begin {
        /// Transaction id.
        tx: u64,
    },
    /// A row insert by `tx`.
    Insert {
        /// Transaction id.
        tx: u64,
        /// Target table.
        table: String,
        /// Heap row id assigned at runtime (re-used verbatim at redo).
        row_id: RowId,
        /// The inserted row.
        row: Row,
    },
    /// A full-row update by `tx`.
    Update {
        /// Transaction id.
        tx: u64,
        /// Target table.
        table: String,
        /// Heap row id.
        row_id: RowId,
        /// The new row image.
        row: Row,
    },
    /// A row deletion by `tx`.
    Delete {
        /// Transaction id.
        tx: u64,
        /// Target table.
        table: String,
        /// Heap row id.
        row_id: RowId,
    },
    /// Transaction commit — the durability point.
    Commit {
        /// Transaction id.
        tx: u64,
    },
    /// Transaction abort (informational; aborted work is never redone).
    Abort {
        /// Transaction id.
        tx: u64,
    },
}

impl LogRecord {
    /// Serialize for a WAL frame in the default (binary) format.
    pub fn encode(&self) -> Result<Vec<u8>> {
        self.encode_with(WalCodec::BinaryV1)
    }

    /// Serialize in an explicit format.
    pub fn encode_with(&self, format: WalCodec) -> Result<Vec<u8>> {
        match format {
            WalCodec::Json => serde_json::to_vec(self).map_err(Into::into),
            WalCodec::BinaryV1 => {
                let mut out = vec![BINARY_V1];
                let w = &mut out;
                match self {
                    LogRecord::CreateTable { schema } => {
                        w.push(K_CREATE_TABLE);
                        codec::write_schema(w, schema)?;
                    }
                    LogRecord::DropTable { table } => {
                        w.push(K_DROP_TABLE);
                        codec::write_str(w, table)?;
                    }
                    LogRecord::CreateIndex { table, column } => {
                        w.push(K_CREATE_INDEX);
                        codec::write_str(w, table)?;
                        codec::write_str(w, column)?;
                    }
                    LogRecord::Begin { tx } => {
                        w.push(K_BEGIN);
                        codec::write_u64(w, *tx)?;
                    }
                    LogRecord::Insert { tx, table, row_id, row } => {
                        w.push(K_INSERT);
                        codec::write_u64(w, *tx)?;
                        codec::write_str(w, table)?;
                        codec::write_u64(w, row_id.0)?;
                        codec::write_row(w, row)?;
                    }
                    LogRecord::Update { tx, table, row_id, row } => {
                        w.push(K_UPDATE);
                        codec::write_u64(w, *tx)?;
                        codec::write_str(w, table)?;
                        codec::write_u64(w, row_id.0)?;
                        codec::write_row(w, row)?;
                    }
                    LogRecord::Delete { tx, table, row_id } => {
                        w.push(K_DELETE);
                        codec::write_u64(w, *tx)?;
                        codec::write_str(w, table)?;
                        codec::write_u64(w, row_id.0)?;
                    }
                    LogRecord::Commit { tx } => {
                        w.push(K_COMMIT);
                        codec::write_u64(w, *tx)?;
                    }
                    LogRecord::Abort { tx } => {
                        w.push(K_ABORT);
                        codec::write_u64(w, *tx)?;
                    }
                }
                Ok(out)
            }
        }
    }

    /// Deserialize from a WAL frame payload (either format).
    pub fn decode(bytes: &[u8]) -> Result<LogRecord> {
        match bytes.first() {
            Some(&BINARY_V1) => Self::decode_binary(&bytes[1..]),
            Some(&JSON_OPEN) => serde_json::from_slice(bytes)
                .map_err(|e| StorageError::Corrupt(format!("undecodable log record: {e}"))),
            Some(&b) => {
                Err(StorageError::Corrupt(format!("unknown log record format byte {b:#04x}")))
            }
            None => Err(StorageError::Corrupt("empty log record".into())),
        }
    }

    fn decode_binary(data: &[u8]) -> Result<LogRecord> {
        let pos = &mut 0usize;
        let &kind = data
            .first()
            .ok_or_else(|| StorageError::Corrupt("log record missing kind byte".into()))?;
        *pos = 1;
        let rec = match kind {
            K_CREATE_TABLE => LogRecord::CreateTable { schema: codec::read_schema(data, pos)? },
            K_DROP_TABLE => LogRecord::DropTable { table: codec::read_str(data, pos)? },
            K_CREATE_INDEX => LogRecord::CreateIndex {
                table: codec::read_str(data, pos)?,
                column: codec::read_str(data, pos)?,
            },
            K_BEGIN => LogRecord::Begin { tx: codec::read_u64(data, pos)? },
            K_INSERT => LogRecord::Insert {
                tx: codec::read_u64(data, pos)?,
                table: codec::read_str(data, pos)?,
                row_id: RowId(codec::read_u64(data, pos)?),
                row: codec::read_row(data, pos)?,
            },
            K_UPDATE => LogRecord::Update {
                tx: codec::read_u64(data, pos)?,
                table: codec::read_str(data, pos)?,
                row_id: RowId(codec::read_u64(data, pos)?),
                row: codec::read_row(data, pos)?,
            },
            K_DELETE => LogRecord::Delete {
                tx: codec::read_u64(data, pos)?,
                table: codec::read_str(data, pos)?,
                row_id: RowId(codec::read_u64(data, pos)?),
            },
            K_COMMIT => LogRecord::Commit { tx: codec::read_u64(data, pos)? },
            K_ABORT => LogRecord::Abort { tx: codec::read_u64(data, pos)? },
            other => {
                return Err(StorageError::Corrupt(format!("unknown log record kind {other}")));
            }
        };
        if *pos != data.len() {
            return Err(StorageError::Corrupt(format!(
                "log record has {} trailing bytes",
                data.len() - *pos
            )));
        }
        Ok(rec)
    }

    /// The transaction this record belongs to, if any (DDL records are
    /// auto-committed and carry no transaction).
    pub fn tx(&self) -> Option<u64> {
        match self {
            LogRecord::Begin { tx }
            | LogRecord::Insert { tx, .. }
            | LogRecord::Update { tx, .. }
            | LogRecord::Delete { tx, .. }
            | LogRecord::Commit { tx }
            | LogRecord::Abort { tx } => Some(*tx),
            LogRecord::CreateTable { .. }
            | LogRecord::DropTable { .. }
            | LogRecord::CreateIndex { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::table::Column;
    use crate::value::{DataType, Value};

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { tx: 1 },
            LogRecord::Insert {
                tx: 1,
                table: "t".into(),
                row_id: RowId(3),
                row: vec![Value::Int(1), Value::Text("x".into()), Value::Null],
            },
            LogRecord::Update {
                tx: 1,
                table: "t".into(),
                row_id: RowId(3),
                row: vec![Value::Float(2.5)],
            },
            LogRecord::Delete { tx: 1, table: "t".into(), row_id: RowId(3) },
            LogRecord::Commit { tx: 1 },
            LogRecord::Abort { tx: 2 },
            LogRecord::CreateTable {
                schema: TableSchema::new("t", vec![Column::new("a", DataType::Int)], &["a"], &[])
                    .unwrap(),
            },
            LogRecord::DropTable { table: "t".into() },
            LogRecord::CreateIndex { table: "t".into(), column: "a".into() },
        ]
    }

    #[test]
    fn encode_decode_round_trip_both_formats() {
        for r in sample_records() {
            for fmt in [WalCodec::BinaryV1, WalCodec::Json] {
                let bytes = r.encode_with(fmt).unwrap();
                assert_eq!(LogRecord::decode(&bytes).unwrap(), r, "{fmt:?}");
            }
        }
    }

    #[test]
    fn binary_is_smaller_than_json() {
        for r in sample_records() {
            let bin = r.encode_with(WalCodec::BinaryV1).unwrap();
            let json = r.encode_with(WalCodec::Json).unwrap();
            assert!(bin.len() < json.len(), "{r:?}: binary {} vs json {}", bin.len(), json.len());
        }
    }

    #[test]
    fn formats_may_mix_within_one_log() {
        // Exactly the situation after an engine upgrade: JSON prefix,
        // binary suffix, decoded record-by-record.
        let records = sample_records();
        let mixed: Vec<Vec<u8>> = records
            .iter()
            .enumerate()
            .map(|(i, r)| {
                r.encode_with(if i % 2 == 0 { WalCodec::Json } else { WalCodec::BinaryV1 }).unwrap()
            })
            .collect();
        for (bytes, want) in mixed.iter().zip(&records) {
            assert_eq!(&LogRecord::decode(bytes).unwrap(), want);
        }
    }

    #[test]
    fn tx_extraction() {
        assert_eq!(LogRecord::Begin { tx: 9 }.tx(), Some(9));
        assert_eq!(LogRecord::DropTable { table: "x".into() }.tx(), None);
    }

    #[test]
    fn garbage_decodes_to_corrupt_error() {
        assert!(matches!(LogRecord::decode(b"not json"), Err(StorageError::Corrupt(_))));
        assert!(matches!(LogRecord::decode(b""), Err(StorageError::Corrupt(_))));
        // Valid format byte, bogus kind.
        assert!(matches!(LogRecord::decode(&[BINARY_V1, 99]), Err(StorageError::Corrupt(_))));
        // Truncated binary insert.
        let full = LogRecord::Insert {
            tx: 7,
            table: "tab".into(),
            row_id: RowId(1),
            row: vec![Value::Int(5)],
        }
        .encode()
        .unwrap();
        for cut in 1..full.len() {
            assert!(
                matches!(LogRecord::decode(&full[..cut]), Err(StorageError::Corrupt(_))),
                "prefix of {cut} bytes must not decode"
            );
        }
        // Trailing bytes are rejected too.
        let mut padded = full;
        padded.push(0);
        assert!(matches!(LogRecord::decode(&padded), Err(StorageError::Corrupt(_))));
    }
}
