//! WAL record schema and redo recovery.
//!
//! Records are JSON-encoded (one per WAL frame). Recovery is redo-only: a
//! first pass finds the committed transaction set; a second pass reapplies,
//! in log order, the operations of exactly those transactions. A crash
//! discards all in-memory state, and the redo pass filters out records of
//! uncommitted transactions, so no undo pass is needed.

use crate::error::StorageError;
use crate::Result;
use serde::{Deserialize, Serialize};

use super::table::{Row, RowId, TableSchema};

/// Everything the structured store writes to its WAL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// DDL: a table was created (auto-committed).
    CreateTable {
        /// The new table's schema.
        schema: TableSchema,
    },
    /// DDL: a table was dropped (auto-committed).
    DropTable {
        /// Name of the dropped table.
        table: String,
    },
    /// DDL: a secondary index was created on an existing table
    /// (auto-committed; redo rebuilds the index from the recovered heap).
    CreateIndex {
        /// Table the index belongs to.
        table: String,
        /// Indexed column name.
        column: String,
    },
    /// Transaction start.
    Begin {
        /// Transaction id.
        tx: u64,
    },
    /// A row insert by `tx`.
    Insert {
        /// Transaction id.
        tx: u64,
        /// Target table.
        table: String,
        /// Heap row id assigned at runtime (re-used verbatim at redo).
        row_id: RowId,
        /// The inserted row.
        row: Row,
    },
    /// A full-row update by `tx`.
    Update {
        /// Transaction id.
        tx: u64,
        /// Target table.
        table: String,
        /// Heap row id.
        row_id: RowId,
        /// The new row image.
        row: Row,
    },
    /// A row deletion by `tx`.
    Delete {
        /// Transaction id.
        tx: u64,
        /// Target table.
        table: String,
        /// Heap row id.
        row_id: RowId,
    },
    /// Transaction commit — the durability point.
    Commit {
        /// Transaction id.
        tx: u64,
    },
    /// Transaction abort (informational; aborted work is never redone).
    Abort {
        /// Transaction id.
        tx: u64,
    },
}

impl LogRecord {
    /// Serialize for a WAL frame.
    pub fn encode(&self) -> Result<Vec<u8>> {
        serde_json::to_vec(self).map_err(Into::into)
    }

    /// Deserialize from a WAL frame payload.
    pub fn decode(bytes: &[u8]) -> Result<LogRecord> {
        serde_json::from_slice(bytes)
            .map_err(|e| StorageError::Corrupt(format!("undecodable log record: {e}")))
    }

    /// The transaction this record belongs to, if any (DDL records are
    /// auto-committed and carry no transaction).
    pub fn tx(&self) -> Option<u64> {
        match self {
            LogRecord::Begin { tx }
            | LogRecord::Insert { tx, .. }
            | LogRecord::Update { tx, .. }
            | LogRecord::Delete { tx, .. }
            | LogRecord::Commit { tx }
            | LogRecord::Abort { tx } => Some(*tx),
            LogRecord::CreateTable { .. }
            | LogRecord::DropTable { .. }
            | LogRecord::CreateIndex { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::table::Column;
    use crate::value::{DataType, Value};

    #[test]
    fn encode_decode_round_trip() {
        let records = vec![
            LogRecord::Begin { tx: 1 },
            LogRecord::Insert {
                tx: 1,
                table: "t".into(),
                row_id: RowId(3),
                row: vec![Value::Int(1), Value::Text("x".into()), Value::Null],
            },
            LogRecord::Update {
                tx: 1,
                table: "t".into(),
                row_id: RowId(3),
                row: vec![Value::Float(2.5)],
            },
            LogRecord::Delete { tx: 1, table: "t".into(), row_id: RowId(3) },
            LogRecord::Commit { tx: 1 },
            LogRecord::Abort { tx: 2 },
            LogRecord::CreateTable {
                schema: TableSchema::new("t", vec![Column::new("a", DataType::Int)], &["a"], &[])
                    .unwrap(),
            },
            LogRecord::DropTable { table: "t".into() },
            LogRecord::CreateIndex { table: "t".into(), column: "a".into() },
        ];
        for r in records {
            let bytes = r.encode().unwrap();
            assert_eq!(LogRecord::decode(&bytes).unwrap(), r);
        }
    }

    #[test]
    fn tx_extraction() {
        assert_eq!(LogRecord::Begin { tx: 9 }.tx(), Some(9));
        assert_eq!(LogRecord::DropTable { table: "x".into() }.tx(), None);
    }

    #[test]
    fn garbage_decodes_to_corrupt_error() {
        assert!(matches!(LogRecord::decode(b"not json"), Err(StorageError::Corrupt(_))));
    }
}
