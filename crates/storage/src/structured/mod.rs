//! The "final structure" store: a small relational engine.
//!
//! The blueprint argues the final extracted structure — edited concurrently
//! by many users — belongs in an RDBMS "to ensure fast and correct
//! concurrency control". This module is that engine, from scratch:
//!
//! - typed, schema-checked tables with primary keys ([`table`]);
//! - secondary B-tree indexes maintained on every write ([`index`]);
//! - strict two-phase locking with intention locks and wait-die deadlock
//!   avoidance ([`lock`]);
//! - a write-ahead log and redo recovery that restores exactly the
//!   committed prefix after a crash ([`recovery`]);
//! - lock-free MVCC snapshot reads pinned to a write-clock LSN ([`view`]);
//! - the [`Database`] façade tying them together ([`engine`]).

pub mod engine;
pub mod index;
pub mod lock;
pub(crate) mod paged;
pub mod recovery;
pub mod replication;
pub mod table;
pub mod view;

pub use engine::{CheckpointFormat, Database, IndexStats, ScanAccess, TxId};
pub use lock::{LockManager, LockMode};
pub use recovery::{LogRecord, WalCodec};
pub use replication::{ReplicaApplier, ReplicaPosition, ReplicationSeed};
pub use table::{Column, Row, RowId, TableSchema};
pub use view::{DbSnapshot, TableView};
