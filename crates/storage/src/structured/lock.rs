//! Hierarchical strict two-phase locking with wait-die deadlock avoidance.
//!
//! Two granularities: a table lock and row locks. Intention modes (`IS`,
//! `IX`) on the table let row-level readers and writers coexist while still
//! letting whole-table operations (scans take `S`, bulk rewrites take `X`)
//! conflict correctly with them.
//!
//! Deadlock handling is *wait-die*: on conflict, an older transaction
//! (smaller id) waits; a younger one aborts immediately with
//! [`StorageError::TxAborted`]. Every victim is the younger party, so the
//! oldest active transaction can never be aborted and always makes progress
//! — no cycles, no deadlock detector thread.

use crate::error::StorageError;
use crate::Result;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;

use super::table::RowId;

/// Lock modes, hierarchical-locking style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Intention shared (table level only).
    IntentionShared,
    /// Intention exclusive (table level only).
    IntentionExclusive,
    /// Shared.
    Shared,
    /// Exclusive.
    Exclusive,
}

impl LockMode {
    /// Classic compatibility matrix (no SIX mode).
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (IntentionShared, Exclusive) | (Exclusive, IntentionShared) => false,
            (IntentionShared, _) | (_, IntentionShared) => true,
            (IntentionExclusive, IntentionExclusive) => true,
            (IntentionExclusive, _) | (_, IntentionExclusive) => false,
            (Shared, Shared) => true,
            _ => false,
        }
    }

    /// True if holding `self` already grants everything `want` would.
    pub fn covers(self, want: LockMode) -> bool {
        use LockMode::*;
        self == want
            || self == Exclusive
            || (self == Shared && want == IntentionShared)
            || (self == IntentionExclusive && want == IntentionShared)
    }
}

/// What a lock attaches to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LockTarget {
    /// The whole table.
    Table(String),
    /// One row of a table.
    Row(String, RowId),
}

#[derive(Default)]
struct LockState {
    /// Current holders and their strongest granted mode.
    holders: HashMap<u64, LockMode>,
}

impl LockState {
    fn grantable(&self, tx: u64, mode: LockMode) -> bool {
        self.holders.iter().all(|(&h, &m)| h == tx || m.compatible(mode))
    }
}

/// The lock table. One instance per [`super::Database`].
#[derive(Default)]
pub struct LockManager {
    state: Mutex<HashMap<LockTarget, LockState>>,
    wakeup: Condvar,
}

impl LockManager {
    /// Create an empty lock manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire `mode` on `target` for transaction `tx` (wait-die on
    /// conflict). Re-acquiring a covered mode is a no-op; upgrades (e.g.
    /// `Shared` → `Exclusive`) are granted when no other holder conflicts.
    pub fn acquire(&self, tx: u64, target: LockTarget, mode: LockMode) -> Result<()> {
        let mut state = self.state.lock();
        loop {
            let entry = state.entry(target.clone()).or_default();
            if let Some(&held) = entry.holders.get(&tx) {
                if held.covers(mode) {
                    return Ok(());
                }
            }
            if entry.grantable(tx, mode) {
                let slot = entry.holders.entry(tx).or_insert(mode);
                // Keep the strongest of held and requested (upgrade).
                if !slot.covers(mode) {
                    *slot = mode;
                }
                return Ok(());
            }
            // Conflict: wait-die. Die if any conflicting holder is older.
            let oldest_conflicting = entry
                .holders
                .iter()
                .filter(|(&h, &m)| h != tx && !m.compatible(mode))
                .map(|(&h, _)| h)
                .min()
                // quarry-audit: allow(QA101, reason = "this branch is reached only when a conflicting holder exists")
                .expect("conflict implies a conflicting holder");
            if oldest_conflicting < tx {
                return Err(StorageError::TxAborted(format!(
                    "wait-die: tx {tx} is younger than conflicting tx {oldest_conflicting} on {target:?}"
                )));
            }
            self.wakeup.wait(&mut state);
        }
    }

    /// Release every lock held by `tx` (end of transaction — strict 2PL).
    pub fn release_all(&self, tx: u64) {
        let mut state = self.state.lock();
        state.retain(|_, ls| {
            ls.holders.remove(&tx);
            !ls.holders.is_empty()
        });
        self.wakeup.notify_all();
    }

    /// Number of targets currently locked (diagnostics).
    pub fn locked_targets(&self) -> usize {
        self.state.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn row(t: &str, id: u64) -> LockTarget {
        LockTarget::Row(t.to_string(), RowId(id))
    }

    #[test]
    fn compatibility_matrix_spot_checks() {
        use LockMode::*;
        assert!(IntentionShared.compatible(IntentionExclusive));
        assert!(IntentionShared.compatible(Shared));
        assert!(!IntentionShared.compatible(Exclusive));
        assert!(IntentionExclusive.compatible(IntentionExclusive));
        assert!(!IntentionExclusive.compatible(Shared));
        assert!(Shared.compatible(Shared));
        assert!(!Shared.compatible(Exclusive));
        assert!(!Exclusive.compatible(Exclusive));
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.acquire(1, row("t", 1), LockMode::Shared).unwrap();
        lm.acquire(2, row("t", 1), LockMode::Shared).unwrap();
        assert_eq!(lm.locked_targets(), 1);
    }

    #[test]
    fn younger_writer_dies_on_conflict() {
        let lm = LockManager::new();
        lm.acquire(1, row("t", 1), LockMode::Exclusive).unwrap();
        let err = lm.acquire(2, row("t", 1), LockMode::Shared).unwrap_err();
        assert!(matches!(err, StorageError::TxAborted(_)));
    }

    #[test]
    fn older_waits_until_release() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(5, row("t", 1), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            // tx 3 is older than tx 5, so it waits rather than dying.
            lm2.acquire(3, row("t", 1), LockMode::Exclusive).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!waiter.is_finished(), "older tx must block, not die");
        lm.release_all(5);
        waiter.join().unwrap();
    }

    #[test]
    fn reacquire_and_upgrade() {
        let lm = LockManager::new();
        lm.acquire(1, row("t", 9), LockMode::Shared).unwrap();
        lm.acquire(1, row("t", 9), LockMode::Shared).unwrap();
        lm.acquire(1, row("t", 9), LockMode::Exclusive).unwrap(); // sole holder upgrade
                                                                  // Now nobody else can share it.
        assert!(lm.acquire(2, row("t", 9), LockMode::Shared).is_err());
        lm.release_all(1);
        lm.acquire(2, row("t", 9), LockMode::Shared).unwrap();
    }

    #[test]
    fn upgrade_blocked_by_other_reader_dies_if_younger() {
        let lm = LockManager::new();
        lm.acquire(1, row("t", 2), LockMode::Shared).unwrap();
        lm.acquire(2, row("t", 2), LockMode::Shared).unwrap();
        // tx 2 (younger) tries to upgrade while tx 1 still reads → dies.
        assert!(lm.acquire(2, row("t", 2), LockMode::Exclusive).is_err());
    }

    #[test]
    fn table_intention_locks_allow_row_concurrency() {
        let lm = LockManager::new();
        let table = LockTarget::Table("t".into());
        lm.acquire(1, table.clone(), LockMode::IntentionExclusive).unwrap();
        lm.acquire(2, table.clone(), LockMode::IntentionExclusive).unwrap();
        lm.acquire(1, row("t", 1), LockMode::Exclusive).unwrap();
        lm.acquire(2, row("t", 2), LockMode::Exclusive).unwrap();
        // But a table scan (S) conflicts with the intention-exclusive holders.
        assert!(lm.acquire(3, table, LockMode::Shared).is_err());
    }

    #[test]
    fn release_all_clears_state() {
        let lm = LockManager::new();
        lm.acquire(1, row("a", 1), LockMode::Exclusive).unwrap();
        lm.acquire(1, row("b", 2), LockMode::Shared).unwrap();
        lm.release_all(1);
        assert_eq!(lm.locked_targets(), 0);
    }

    #[test]
    fn no_deadlock_under_contention() {
        // 8 threads × 50 increments over 4 rows: wait-die guarantees progress.
        let lm = Arc::new(LockManager::new());
        let next_tx = Arc::new(std::sync::atomic::AtomicU64::new(1));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let lm = Arc::clone(&lm);
            let next_tx = Arc::clone(&next_tx);
            handles.push(std::thread::spawn(move || {
                let mut done = 0;
                while done < 50 {
                    let tx = next_tx.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    let a = row("t", t % 4);
                    let b = row("t", (t + 1) % 4);
                    let r = lm
                        .acquire(tx, a, LockMode::Exclusive)
                        .and_then(|()| lm.acquire(tx, b, LockMode::Exclusive));
                    if r.is_ok() {
                        done += 1;
                    }
                    lm.release_all(tx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lm.locked_targets(), 0);
    }
}
