//! Append-only segment store for intermediate structured data.
//!
//! The blueprint observes that the system "often executes only sequential
//! reads and writes over intermediate structured data, in which case such
//! data can best be kept in the file systems". This store is that device:
//! records append to a current segment file; segments seal at a size
//! threshold; reads are whole-store sequential scans. No indexes, no updates
//! — by design.
//!
//! Frames reuse the WAL layout (`len`,`crc32`,`payload`) so torn tails are
//! detected on scan.

use crate::error::StorageError;
use crate::wal::crc32;
use crate::Result;
use bytes::Bytes;
use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// An append-only, segmented record store rooted at a directory.
pub struct FileStore {
    dir: PathBuf,
    segment_bytes: u64,
    current: Option<BufWriter<File>>,
    current_len: u64,
    current_id: u64,
    records_written: u64,
}

impl FileStore {
    /// Default segment size: 4 MiB.
    pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

    /// Open a store rooted at `dir`, creating the directory if needed.
    /// Appending resumes in a fresh segment after the highest existing one.
    pub fn open(dir: impl AsRef<Path>) -> Result<FileStore> {
        Self::with_segment_bytes(dir, Self::DEFAULT_SEGMENT_BYTES)
    }

    /// Open with a custom segment-seal threshold (useful in tests).
    pub fn with_segment_bytes(dir: impl AsRef<Path>, segment_bytes: u64) -> Result<FileStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let next_id = Self::segment_ids(&dir)?.last().map(|id| id + 1).unwrap_or(0);
        Ok(FileStore {
            dir,
            segment_bytes: segment_bytes.max(1),
            current: None,
            current_len: 0,
            current_id: next_id,
            records_written: 0,
        })
    }

    fn segment_path(dir: &Path, id: u64) -> PathBuf {
        dir.join(format!("seg-{id:08}.qfs"))
    }

    fn segment_ids(dir: &Path) -> Result<Vec<u64>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix("seg-").and_then(|n| n.strip_suffix(".qfs")) {
                if let Ok(id) = rest.parse::<u64>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// Append one record. Seals the current segment first if it is full.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        if self.current.is_none() || self.current_len >= self.segment_bytes {
            self.roll()?;
        }
        let w = self.current.as_mut().expect("rolled above");
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(&crc32(payload).to_le_bytes())?;
        w.write_all(payload)?;
        self.current_len += 8 + payload.len() as u64;
        self.records_written += 1;
        Ok(())
    }

    fn roll(&mut self) -> Result<()> {
        if let Some(mut w) = self.current.take() {
            w.flush()?;
        }
        let path = Self::segment_path(&self.dir, self.current_id);
        let file = OpenOptions::new().create_new(true).write(true).open(path)?;
        self.current = Some(BufWriter::new(file));
        self.current_len = 0;
        self.current_id += 1;
        Ok(())
    }

    /// Flush and fsync the active segment.
    pub fn sync(&mut self) -> Result<()> {
        if let Some(w) = self.current.as_mut() {
            w.flush()?;
            w.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Records appended through this handle's lifetime.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Sequentially scan every record in the store, oldest segment first.
    ///
    /// Buffers pending writes first so a scan sees everything appended.
    pub fn scan(&mut self) -> Result<Scan> {
        if let Some(w) = self.current.as_mut() {
            w.flush()?;
        }
        let ids = Self::segment_ids(&self.dir)?;
        Ok(Scan { dir: self.dir.clone(), ids, next_segment: 0, reader: None })
    }

    /// Number of sealed + active segments on disk.
    pub fn segment_count(&self) -> Result<usize> {
        Ok(Self::segment_ids(&self.dir)?.len())
    }
}

impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStore")
            .field("dir", &self.dir)
            .field("records_written", &self.records_written)
            .finish()
    }
}

/// Iterator over all records of a [`FileStore`].
pub struct Scan {
    dir: PathBuf,
    ids: Vec<u64>,
    next_segment: usize,
    reader: Option<BufReader<File>>,
}

impl Scan {
    fn next_record(&mut self) -> Result<Option<Bytes>> {
        loop {
            if self.reader.is_none() {
                let Some(&id) = self.ids.get(self.next_segment) else {
                    return Ok(None);
                };
                self.next_segment += 1;
                let f = File::open(FileStore::segment_path(&self.dir, id))?;
                self.reader = Some(BufReader::new(f));
            }
            let r = self.reader.as_mut().expect("set above");
            let mut header = [0u8; 8];
            match r.read_exact(&mut header) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                    self.reader = None; // clean end of segment
                    continue;
                }
                Err(e) => return Err(e.into()),
            }
            let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
            let mut payload = vec![0u8; len];
            if r.read_exact(&mut payload).is_err() {
                // Torn tail of the final segment: end the scan cleanly.
                self.reader = None;
                self.next_segment = self.ids.len();
                return Ok(None);
            }
            if crc32(&payload) != crc {
                return Err(StorageError::Corrupt("filestore record checksum".into()));
            }
            return Ok(Some(Bytes::from(payload)));
        }
    }
}

impl Iterator for Scan {
    type Item = Result<Bytes>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("quarry-fs-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_then_scan_round_trips() {
        let dir = tmpdir("roundtrip");
        let mut fsr = FileStore::open(&dir).unwrap();
        for i in 0..100u32 {
            fsr.append(format!("record {i}").as_bytes()).unwrap();
        }
        let got: Vec<String> =
            fsr.scan().unwrap().map(|r| String::from_utf8(r.unwrap().to_vec()).unwrap()).collect();
        assert_eq!(got.len(), 100);
        assert_eq!(got[0], "record 0");
        assert_eq!(got[99], "record 99");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_at_threshold() {
        let dir = tmpdir("roll");
        let mut fsr = FileStore::with_segment_bytes(&dir, 64).unwrap();
        for _ in 0..20 {
            fsr.append(&[0u8; 32]).unwrap();
        }
        assert!(fsr.segment_count().unwrap() > 3);
        let n = fsr.scan().unwrap().count();
        assert_eq!(n, 20);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_appends_into_new_segment() {
        let dir = tmpdir("reopen");
        {
            let mut fsr = FileStore::open(&dir).unwrap();
            fsr.append(b"first run").unwrap();
            fsr.sync().unwrap();
        }
        let mut fsr = FileStore::open(&dir).unwrap();
        fsr.append(b"second run").unwrap();
        let got: Vec<Bytes> = fsr.scan().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![Bytes::from("first run"), Bytes::from("second run")]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_scans_empty() {
        let dir = tmpdir("empty");
        let mut fsr = FileStore::open(&dir).unwrap();
        assert_eq!(fsr.scan().unwrap().count(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_record_surfaces_error() {
        let dir = tmpdir("corrupt");
        {
            let mut fsr = FileStore::open(&dir).unwrap();
            fsr.append(b"good data here").unwrap();
            fsr.sync().unwrap();
        }
        // Flip a payload byte.
        let seg = FileStore::segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        fs::write(&seg, &data).unwrap();
        let mut fsr = FileStore::open(&dir).unwrap();
        let results: Vec<_> = fsr.scan().unwrap().collect();
        assert!(results.iter().any(|r| r.is_err()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_ends_scan_cleanly() {
        let dir = tmpdir("torn");
        {
            let mut fsr = FileStore::open(&dir).unwrap();
            fsr.append(b"complete").unwrap();
            fsr.sync().unwrap();
        }
        // Append a header promising more bytes than exist.
        let seg = FileStore::segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        data.extend_from_slice(&100u32.to_le_bytes());
        data.extend_from_slice(&0u32.to_le_bytes());
        data.extend_from_slice(b"short");
        fs::write(&seg, &data).unwrap();
        let mut fsr = FileStore::open(&dir).unwrap();
        let got: Vec<_> = fsr.scan().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![Bytes::from("complete")]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn records_written_counter() {
        let dir = tmpdir("counter");
        let mut fsr = FileStore::open(&dir).unwrap();
        fsr.append(b"a").unwrap();
        fsr.append(b"b").unwrap();
        assert_eq!(fsr.records_written(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
