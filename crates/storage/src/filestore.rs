//! Append-only segment store for intermediate structured data.
//!
//! The blueprint observes that the system "often executes only sequential
//! reads and writes over intermediate structured data, in which case such
//! data can best be kept in the file systems". This store is that device:
//! records append to a current segment file; segments seal at a size
//! threshold; reads are whole-store sequential scans. No indexes, no updates
//! — by design.
//!
//! Frames reuse the WAL layout (`len`,`crc32`,`payload`, checksum over
//! length + payload — see [`frame_crc`](crate::wal::frame_crc)) so torn and
//! zero-filled tails are detected on scan. All file I/O goes through a
//! [`StorageBackend`] so fault-injection tests cover this store too.

use crate::error::StorageError;
use crate::faultfs::{BackendFile, RealBackend, StorageBackend};
use crate::wal::frame_crc;
use crate::Result;
use bytes::Bytes;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An append-only, segmented record store rooted at a directory.
pub struct FileStore {
    dir: PathBuf,
    backend: Arc<dyn StorageBackend>,
    segment_bytes: u64,
    current: Option<BufWriter<Box<dyn BackendFile>>>,
    current_len: u64,
    current_id: u64,
    records_written: u64,
}

impl FileStore {
    /// Default segment size: 4 MiB.
    pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

    /// Open a store rooted at `dir`, creating the directory if needed.
    /// Appending resumes in a fresh segment after the highest existing one.
    pub fn open(dir: impl AsRef<Path>) -> Result<FileStore> {
        Self::with_segment_bytes(dir, Self::DEFAULT_SEGMENT_BYTES)
    }

    /// Open with a custom segment-seal threshold (useful in tests).
    pub fn with_segment_bytes(dir: impl AsRef<Path>, segment_bytes: u64) -> Result<FileStore> {
        Self::open_with(Arc::new(RealBackend), dir, segment_bytes)
    }

    /// Open against an explicit storage backend.
    pub fn open_with(
        backend: Arc<dyn StorageBackend>,
        dir: impl AsRef<Path>,
        segment_bytes: u64,
    ) -> Result<FileStore> {
        let dir = dir.as_ref().to_path_buf();
        backend.create_dir_all(&dir)?;
        let next_id = Self::segment_ids(&*backend, &dir)?.last().map(|id| id + 1).unwrap_or(0);
        Ok(FileStore {
            dir,
            backend,
            segment_bytes: segment_bytes.max(1),
            current: None,
            current_len: 0,
            current_id: next_id,
            records_written: 0,
        })
    }

    fn segment_path(dir: &Path, id: u64) -> PathBuf {
        dir.join(format!("seg-{id:08}.qfs"))
    }

    fn segment_ids(backend: &dyn StorageBackend, dir: &Path) -> Result<Vec<u64>> {
        let mut ids = Vec::new();
        for name in backend.list_dir(dir)? {
            if let Some(rest) = name.strip_prefix("seg-").and_then(|n| n.strip_suffix(".qfs")) {
                if let Ok(id) = rest.parse::<u64>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// Append one record. Seals the current segment first if it is full.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        if self.current.is_none() || self.current_len >= self.segment_bytes {
            self.roll()?;
        }
        let w = self.current.as_mut().expect("rolled above");
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(&frame_crc(payload).to_le_bytes())?;
        w.write_all(payload)?;
        self.current_len += 8 + payload.len() as u64;
        self.records_written += 1;
        Ok(())
    }

    fn roll(&mut self) -> Result<()> {
        if let Some(mut w) = self.current.take() {
            w.flush()?;
        }
        let path = Self::segment_path(&self.dir, self.current_id);
        let file = self.backend.create_new(&path)?;
        self.current = Some(BufWriter::new(file));
        self.current_len = 0;
        self.current_id += 1;
        Ok(())
    }

    /// Flush and fsync the active segment.
    pub fn sync(&mut self) -> Result<()> {
        if let Some(w) = self.current.as_mut() {
            w.flush()?;
            w.get_mut().sync_data()?;
        }
        Ok(())
    }

    /// Records appended through this handle's lifetime.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Sequentially scan every record in the store, oldest segment first.
    ///
    /// Buffers pending writes first so a scan sees everything appended.
    pub fn scan(&mut self) -> Result<Scan> {
        if let Some(w) = self.current.as_mut() {
            w.flush()?;
        }
        let ids = Self::segment_ids(&*self.backend, &self.dir)?;
        Ok(Scan {
            backend: Arc::clone(&self.backend),
            dir: self.dir.clone(),
            ids,
            next_segment: 0,
            segment: None,
        })
    }

    /// Number of sealed + active segments on disk.
    pub fn segment_count(&self) -> Result<usize> {
        Ok(Self::segment_ids(&*self.backend, &self.dir)?.len())
    }
}

impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStore")
            .field("dir", &self.dir)
            .field("records_written", &self.records_written)
            .finish()
    }
}

/// Iterator over all records of a [`FileStore`].
pub struct Scan {
    backend: Arc<dyn StorageBackend>,
    dir: PathBuf,
    ids: Vec<u64>,
    next_segment: usize,
    segment: Option<(Vec<u8>, usize)>,
}

impl Scan {
    fn next_record(&mut self) -> Result<Option<Bytes>> {
        loop {
            if self.segment.is_none() {
                let Some(&id) = self.ids.get(self.next_segment) else {
                    return Ok(None);
                };
                self.next_segment += 1;
                // Segments seal at a few MiB, so reading one whole keeps the
                // scan simple and lets any backend serve it.
                let data = self.backend.read(&FileStore::segment_path(&self.dir, id))?;
                self.segment = Some((data, 0));
            }
            let (data, pos) = self.segment.as_mut().expect("set above");
            if *pos >= data.len() {
                self.segment = None; // clean end of segment
                continue;
            }
            if *pos + 8 > data.len() {
                // Torn header at the tail of the final segment.
                self.segment = None;
                self.next_segment = self.ids.len();
                return Ok(None);
            }
            let len = u32::from_le_bytes(data[*pos..*pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[*pos + 4..*pos + 8].try_into().unwrap());
            let start = *pos + 8;
            let end = match start.checked_add(len) {
                Some(e) if e <= data.len() => e,
                _ => {
                    // Torn tail of the final segment: end the scan cleanly.
                    self.segment = None;
                    self.next_segment = self.ids.len();
                    return Ok(None);
                }
            };
            let payload = &data[start..end];
            let record = if frame_crc(payload) == crc {
                Ok(Some(Bytes::copy_from_slice(payload)))
            } else {
                Err(StorageError::Corrupt("filestore record checksum".into()))
            };
            // Advance past the frame either way so a corrupt record surfaces
            // once and the scan can continue (or end) behind it.
            *pos = end;
            return record;
        }
    }
}

impl Iterator for Scan {
    type Item = Result<Bytes>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("quarry-fs-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_then_scan_round_trips() {
        let dir = tmpdir("roundtrip");
        let mut fsr = FileStore::open(&dir).unwrap();
        for i in 0..100u32 {
            fsr.append(format!("record {i}").as_bytes()).unwrap();
        }
        let got: Vec<String> =
            fsr.scan().unwrap().map(|r| String::from_utf8(r.unwrap().to_vec()).unwrap()).collect();
        assert_eq!(got.len(), 100);
        assert_eq!(got[0], "record 0");
        assert_eq!(got[99], "record 99");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_at_threshold() {
        let dir = tmpdir("roll");
        let mut fsr = FileStore::with_segment_bytes(&dir, 64).unwrap();
        for _ in 0..20 {
            fsr.append(&[0u8; 32]).unwrap();
        }
        assert!(fsr.segment_count().unwrap() > 3);
        let n = fsr.scan().unwrap().count();
        assert_eq!(n, 20);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_appends_into_new_segment() {
        let dir = tmpdir("reopen");
        {
            let mut fsr = FileStore::open(&dir).unwrap();
            fsr.append(b"first run").unwrap();
            fsr.sync().unwrap();
        }
        let mut fsr = FileStore::open(&dir).unwrap();
        fsr.append(b"second run").unwrap();
        let got: Vec<Bytes> = fsr.scan().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![Bytes::from("first run"), Bytes::from("second run")]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_scans_empty() {
        let dir = tmpdir("empty");
        let mut fsr = FileStore::open(&dir).unwrap();
        assert_eq!(fsr.scan().unwrap().count(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_record_surfaces_error() {
        let dir = tmpdir("corrupt");
        {
            let mut fsr = FileStore::open(&dir).unwrap();
            fsr.append(b"good data here").unwrap();
            fsr.sync().unwrap();
        }
        // Flip a payload byte.
        let seg = FileStore::segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        fs::write(&seg, &data).unwrap();
        let mut fsr = FileStore::open(&dir).unwrap();
        let results: Vec<_> = fsr.scan().unwrap().collect();
        assert!(results.iter().any(|r| r.is_err()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_ends_scan_cleanly() {
        let dir = tmpdir("torn");
        {
            let mut fsr = FileStore::open(&dir).unwrap();
            fsr.append(b"complete").unwrap();
            fsr.sync().unwrap();
        }
        // Append a header promising more bytes than exist.
        let seg = FileStore::segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        data.extend_from_slice(&100u32.to_le_bytes());
        data.extend_from_slice(&0u32.to_le_bytes());
        data.extend_from_slice(b"short");
        fs::write(&seg, &data).unwrap();
        let mut fsr = FileStore::open(&dir).unwrap();
        let got: Vec<_> = fsr.scan().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![Bytes::from("complete")]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn records_written_counter() {
        let dir = tmpdir("counter");
        let mut fsr = FileStore::open(&dir).unwrap();
        fsr.append(b"a").unwrap();
        fsr.append(b"b").unwrap();
        assert_eq!(fsr.records_written(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
