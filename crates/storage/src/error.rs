//! Error type shared by every storage component.

use std::fmt;
use std::io;

/// Everything that can go wrong in the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// A WAL or segment record failed its checksum (torn write / corruption).
    Corrupt(String),
    /// Referenced table does not exist.
    NoSuchTable(String),
    /// Referenced row/version/document does not exist.
    NotFound(String),
    /// Row violates the table schema (arity, type, null constraint).
    SchemaViolation(String),
    /// Primary-key uniqueness violated.
    DuplicateKey(String),
    /// Transaction aborted by the concurrency-control policy (wait-die).
    TxAborted(String),
    /// Operation used a transaction id that is not active.
    NoSuchTx(u64),
    /// Serialization failure.
    Encode(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            StorageError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StorageError::NotFound(m) => write!(f, "not found: {m}"),
            StorageError::SchemaViolation(m) => write!(f, "schema violation: {m}"),
            StorageError::DuplicateKey(m) => write!(f, "duplicate key: {m}"),
            StorageError::TxAborted(m) => write!(f, "transaction aborted: {m}"),
            StorageError::NoSuchTx(id) => write!(f, "no such transaction: {id}"),
            StorageError::Encode(m) => write!(f, "encode error: {m}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<serde_json::Error> for StorageError {
    fn from(e: serde_json::Error) -> Self {
        StorageError::Encode(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::NoSuchTable("cities".into());
        assert!(e.to_string().contains("cities"));
        let e = StorageError::TxAborted("wait-die".into());
        assert!(e.to_string().contains("wait-die"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: StorageError = io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
