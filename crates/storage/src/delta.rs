//! Line-oriented delta encoding.
//!
//! The snapshot store keeps most document versions as a delta against the
//! previous version. The encoding is a sequence of [`DeltaOp`]s over *lines*:
//! `Copy { start, len }` references a run of lines in the base text, and
//! `Insert(text)` supplies new lines verbatim. A greedy longest-run matcher
//! over a line-hash index produces compact deltas for the
//! "mostly-unchanged page" workload in a single pass — the same trade-off
//! Subversion's xdelta makes.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One instruction of a delta script.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaOp {
    /// Copy `len` lines of the base starting at line `start`.
    Copy {
        /// 0-based first line in the base text.
        start: u32,
        /// Number of lines to copy.
        len: u32,
    },
    /// Insert these lines (joined with `\n` when applying).
    Insert(Vec<String>),
}

/// A delta script transforming one text into another.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Delta {
    /// Ops in application order.
    pub ops: Vec<DeltaOp>,
    /// True when the target text ended with a trailing newline.
    pub trailing_newline: bool,
}

impl Delta {
    /// Approximate encoded size in bytes: insert payloads plus a fixed cost
    /// per op. Used by the snapshot store to decide delta vs full storage and
    /// by the E4 experiment to report space savings.
    pub fn encoded_size(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Copy { .. } => 8,
                DeltaOp::Insert(lines) => 8 + lines.iter().map(|l| l.len() + 1).sum::<usize>(),
            })
            .sum()
    }
}

fn split_lines(text: &str) -> Vec<&str> {
    if text.is_empty() {
        return Vec::new();
    }
    text.split('\n').collect()
}

/// Compute a delta that transforms `base` into `target`.
///
/// Guarantee (property-tested): `apply(&diff(base, target), base) == target`
/// for every pair of strings.
pub fn diff(base: &str, target: &str) -> Delta {
    let base_lines = split_lines(base);
    let target_lines = split_lines(target);
    let trailing_newline = target.ends_with('\n');
    // Strip the phantom empty line produced by a trailing '\n'.
    let target_lines =
        if trailing_newline { &target_lines[..target_lines.len() - 1] } else { &target_lines[..] };
    let base_trailing = base.ends_with('\n');
    let base_lines =
        if base_trailing { &base_lines[..base_lines.len() - 1] } else { &base_lines[..] };

    // Index base lines by content for O(1) candidate lookup.
    let mut index: HashMap<&str, Vec<u32>> = HashMap::with_capacity(base_lines.len());
    for (i, line) in base_lines.iter().enumerate() {
        index.entry(line).or_default().push(i as u32);
    }

    let mut ops: Vec<DeltaOp> = Vec::new();
    let mut pending_insert: Vec<String> = Vec::new();
    let mut ti = 0usize;
    while ti < target_lines.len() {
        // Find the base position giving the longest run match starting at ti.
        let mut best: Option<(u32, u32)> = None; // (base start, run len)
        if let Some(starts) = index.get(target_lines[ti]) {
            for &s in starts {
                let mut len = 0u32;
                while (ti + len as usize) < target_lines.len()
                    && (s + len) < base_lines.len() as u32
                    && base_lines[(s + len) as usize] == target_lines[ti + len as usize]
                {
                    len += 1;
                }
                if best.is_none_or(|(_, bl)| len > bl) {
                    best = Some((s, len));
                }
            }
        }
        match best {
            // Runs of ≥2 lines are worth a Copy op; single-line matches are
            // usually cheaper inlined (op overhead > line length for short lines).
            Some((s, len)) if len >= 2 => {
                if !pending_insert.is_empty() {
                    ops.push(DeltaOp::Insert(std::mem::take(&mut pending_insert)));
                }
                ops.push(DeltaOp::Copy { start: s, len });
                ti += len as usize;
            }
            _ => {
                pending_insert.push(target_lines[ti].to_string());
                ti += 1;
            }
        }
    }
    if !pending_insert.is_empty() {
        ops.push(DeltaOp::Insert(pending_insert));
    }
    Delta { ops, trailing_newline }
}

/// Apply a delta to its base text, producing the target text.
///
/// Returns `None` if the delta references lines outside the base (i.e. it was
/// produced against a different base).
pub fn apply(delta: &Delta, base: &str) -> Option<String> {
    let base_trailing = base.ends_with('\n');
    let mut base_lines = split_lines(base);
    if base_trailing {
        base_lines.pop();
    }
    let mut out: Vec<&str> = Vec::new();
    for op in &delta.ops {
        match op {
            DeltaOp::Copy { start, len } => {
                let s = *start as usize;
                let e = s + *len as usize;
                if e > base_lines.len() {
                    return None;
                }
                out.extend_from_slice(&base_lines[s..e]);
            }
            DeltaOp::Insert(lines) => out.extend(lines.iter().map(String::as_str)),
        }
    }
    let mut text = out.join("\n");
    if delta.trailing_newline {
        text.push('\n');
    }
    Some(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(a: &str, b: &str) {
        let d = diff(a, b);
        assert_eq!(apply(&d, a).as_deref(), Some(b), "base={a:?} target={b:?}");
    }

    #[test]
    fn identical_texts_are_one_copy() {
        let text = "alpha\nbeta\ngamma\ndelta";
        let d = diff(text, text);
        assert_eq!(d.ops, vec![DeltaOp::Copy { start: 0, len: 4 }]);
        round_trip(text, text);
    }

    #[test]
    fn empty_and_nonempty_cases() {
        round_trip("", "");
        round_trip("", "hello\nworld");
        round_trip("hello\nworld", "");
        round_trip("a\n", "a\n");
        round_trip("a", "a\n");
        round_trip("a\n", "a");
    }

    #[test]
    fn small_edit_produces_small_delta() {
        let base: String = (0..200).map(|i| format!("line number {i}\n")).collect();
        let target = base.replacen("line number 100", "line number one hundred", 1);
        let d = diff(&base, &target);
        assert_eq!(apply(&d, &base).unwrap(), target);
        assert!(
            d.encoded_size() < base.len() / 10,
            "delta {} vs base {}",
            d.encoded_size(),
            base.len()
        );
    }

    #[test]
    fn appended_lines() {
        let base = "one\ntwo\nthree";
        let target = "one\ntwo\nthree\nfour\nfive";
        round_trip(base, target);
        let d = diff(base, target);
        assert!(matches!(d.ops[0], DeltaOp::Copy { start: 0, len: 3 }));
    }

    #[test]
    fn reordered_blocks_round_trip() {
        round_trip("a\nb\nc\nd\ne\nf", "d\ne\nf\na\nb\nc");
    }

    #[test]
    fn apply_rejects_mismatched_base() {
        let d = diff("a\nb\nc\nd", "a\nb\nc\nd\nx");
        assert!(apply(&d, "a").is_none());
    }

    #[test]
    fn repeated_lines_handled() {
        round_trip("x\nx\nx\nx", "x\nx\ny\nx\nx");
    }

    proptest! {
        #[test]
        fn prop_round_trip(a in "(\\PC{0,12}\n){0,20}\\PC{0,12}", b in "(\\PC{0,12}\n){0,20}\\PC{0,12}") {
            let d = diff(&a, &b);
            prop_assert_eq!(apply(&d, &a), Some(b));
        }

        #[test]
        fn prop_self_diff_is_compact(a in "([a-z ]{0,30}\n){1,30}") {
            let d = diff(&a, &a);
            // Self-delta never stores payload bytes (single-line texts are
            // the exception: runs below two lines inline as inserts).
            let all_copies = d.ops.iter().all(|op| matches!(op, DeltaOp::Copy { .. }));
            prop_assert!(all_copies || a.trim().is_empty() || a.lines().count() < 2);
        }
    }
}
