//! Deterministic fault-injection I/O layer for the storage stack.
//!
//! Everything the storage layer does to stable storage — WAL appends and
//! fsyncs, checkpoint renames, log truncations, segment creation — flows
//! through a [`StorageBackend`], so a test can interpose on the exact
//! operation stream a workload produces. Two backends ship here:
//!
//! - [`RealBackend`]: plain `std::fs`, used by default everywhere;
//! - [`FaultBackend`]: wraps another backend, records every mutating
//!   operation, and — when armed with a [`CrashPlan`] — simulates a power
//!   failure at the N-th operation: that operation does not happen (or, for
//!   a write, only a configured prefix of its bytes reaches the file), and
//!   every later operation fails too, exactly as if the process had died.
//!
//! The operation counter makes crashes *deterministic and enumerable*: a
//! recorded workload that performs T operations defines T crash points, and
//! the recovery differential harness (see `tests/durability.rs`) replays
//! the workload once per crash point, restarts from the surviving files,
//! and asserts the recovered database equals a clean prefix of the
//! workload — never a hybrid state.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// A writable file handle handed out by a [`StorageBackend`].
///
/// Most storage-layer writers are append-only (the WAL, filestore segments,
/// snapshot images), so the core interface is a sequential [`Write`] plus
/// the two durability-relevant operations: `sync_data` (the fsync boundary)
/// and `truncate` (which also repositions the cursor at the new end). The
/// paged checkpoint engine ([`crate::pager`]) additionally needs
/// positioned I/O — `write_at` / `read_at` / `file_len` — to update
/// fixed-size pages in place; positioned calls may move the cursor, so a
/// file is driven either sequentially or positioned, never both.
pub trait BackendFile: Write + Send {
    /// Flush OS buffers for the file's *data* to stable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Set the file's length to `len` and position the cursor there.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
    /// Write all of `buf` at an absolute offset (may move the cursor).
    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()>;
    /// Fill `buf` exactly from an absolute offset (may move the cursor).
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
    /// Current length of the file in bytes.
    fn file_len(&mut self) -> io::Result<u64>;
}

/// The storage layer's window onto the filesystem. Every mutating
/// operation the WAL, filestore, snapshot persistence, and checkpointing
/// perform is a method here, so a wrapping backend can count, log, tear,
/// or fail each one.
pub trait StorageBackend: fmt::Debug + Send + Sync {
    /// Open `path` for appending, creating it if needed, truncated to
    /// `truncate_to` bytes with the cursor at the new end.
    fn open_append(&self, path: &Path, truncate_to: u64) -> io::Result<Box<dyn BackendFile>>;
    /// Create a brand-new file for writing; fails if `path` exists.
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn BackendFile>>;
    /// Open an *existing* file for positioned read/write, unmodified.
    /// Like [`StorageBackend::read`] this is not a mutating operation — it
    /// takes no crash point; mutation happens through the returned handle.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn BackendFile>>;
    /// Read a whole file. Missing files surface as `ErrorKind::NotFound`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` to `to` (the checkpoint publication step).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Create a directory and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// File names (not paths) of a directory's entries.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>>;
}

// ---------------------------------------------------------------------
// Real backend
// ---------------------------------------------------------------------

/// The production backend: direct `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealBackend;

struct RealFile(File);

impl Write for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl BackendFile for RealFile {
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)?;
        self.0.seek(SeekFrom::Start(len))?;
        Ok(())
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(offset))?;
        self.0.write_all(buf)
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(offset))?;
        self.0.read_exact(buf)
    }

    fn file_len(&mut self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }
}

impl StorageBackend for RealBackend {
    fn open_append(&self, path: &Path, truncate_to: u64) -> io::Result<Box<dyn BackendFile>> {
        let file = OpenOptions::new()
            .create(true)
            .truncate(false) // length is managed explicitly below
            .read(true)
            .write(true)
            .open(path)?;
        let mut f = RealFile(file);
        f.truncate(truncate_to)?;
        Ok(Box::new(f))
    }

    fn create_new(&self, path: &Path) -> io::Result<Box<dyn BackendFile>> {
        // Read access matters: a pager building a B-tree image reads pages
        // back through the same handle once the buffer pool starts evicting.
        let file = OpenOptions::new().create_new(true).read(true).write(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn BackendFile>> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        Ok(data)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)?;
        // Make the rename itself durable: fsync the parent directory so the
        // new directory entry survives power loss (best effort — not every
        // filesystem lets you open a directory for syncing).
        if let Some(parent) = to.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_data();
            }
        }
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(path)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }
}

// ---------------------------------------------------------------------
// Fault backend
// ---------------------------------------------------------------------

/// One recorded mutating operation, in workload order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Bytes written to an open file (one `write` call).
    Write {
        /// Target file.
        path: PathBuf,
        /// Size of the write in bytes.
        bytes: usize,
    },
    /// `sync_data` on an open file — the durability boundary.
    Sync {
        /// Target file.
        path: PathBuf,
    },
    /// A file truncated to a length (WAL reset, open-time tail trim).
    Truncate {
        /// Target file.
        path: PathBuf,
        /// New length.
        len: u64,
    },
    /// An atomic rename (checkpoint publication).
    Rename {
        /// Source path.
        from: PathBuf,
        /// Destination path.
        to: PathBuf,
    },
    /// A file deletion.
    Remove {
        /// Target file.
        path: PathBuf,
    },
    /// A file created (`create_new` — filestore segments, checkpoints).
    Create {
        /// Target file.
        path: PathBuf,
    },
    /// A directory created.
    CreateDir {
        /// Target directory.
        path: PathBuf,
    },
}

impl Op {
    /// Short label for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Write { .. } => "write",
            Op::Sync { .. } => "sync",
            Op::Truncate { .. } => "truncate",
            Op::Rename { .. } => "rename",
            Op::Remove { .. } => "remove",
            Op::Create { .. } => "create",
            Op::CreateDir { .. } => "create-dir",
        }
    }
}

/// Where (and how) a [`FaultBackend`] kills its process-model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// 1-based index of the mutating operation at which to crash: that
    /// operation fails (wholly or torn) and every later one fails too.
    pub crash_at: u64,
    /// For a crashing `Write`, how many leading bytes of that write reach
    /// the file before the failure — a torn write. `None` tears at 0.
    pub tear_bytes: Option<usize>,
}

impl CrashPlan {
    /// Crash cleanly before the `n`-th mutating operation takes effect.
    pub fn kill_at(n: u64) -> CrashPlan {
        CrashPlan { crash_at: n, tear_bytes: None }
    }

    /// Crash at the `n`-th operation, persisting the first `bytes` bytes
    /// if that operation is a write.
    pub fn tear_at(n: u64, bytes: usize) -> CrashPlan {
        CrashPlan { crash_at: n, tear_bytes: Some(bytes) }
    }
}

struct FaultState {
    ops: u64,
    plan: Option<CrashPlan>,
    crashed: bool,
    log: Vec<Op>,
}

/// What a crashing operation is still allowed to do.
enum Admission {
    /// Proceed normally.
    Proceed,
    /// This is the crash point: persist at most this many bytes (writes
    /// only), then fail.
    Tear(usize),
}

impl FaultState {
    /// Gate one mutating operation: count it, log it, and decide whether
    /// it proceeds, tears, or fails because the process-model is dead.
    fn admit(&mut self, op: Op) -> io::Result<Admission> {
        if self.crashed {
            return Err(crash_error(self.ops));
        }
        self.ops += 1;
        self.log.push(op);
        if let Some(plan) = self.plan {
            if self.ops == plan.crash_at {
                self.crashed = true;
                return Ok(Admission::Tear(plan.tear_bytes.unwrap_or(0)));
            }
        }
        Ok(Admission::Proceed)
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.crashed {
            Err(crash_error(self.ops))
        } else {
            Ok(())
        }
    }
}

fn crash_error(op: u64) -> io::Error {
    io::Error::other(format!("faultfs: simulated crash (power failure after operation {op})"))
}

/// A backend that wraps another, records the mutating-operation stream,
/// and optionally kills the process-model at a planned crash point.
///
/// Clones share one operation counter, so every file handle and path
/// operation of one "process" draws from the same stream.
#[derive(Clone)]
pub struct FaultBackend {
    inner: Arc<dyn StorageBackend>,
    state: Arc<Mutex<FaultState>>,
}

impl fmt::Debug for FaultBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state();
        f.debug_struct("FaultBackend")
            .field("ops", &st.ops)
            .field("plan", &st.plan)
            .field("crashed", &st.crashed)
            .finish()
    }
}

impl FaultBackend {
    /// Record-only wrapper: counts and logs operations, never crashes.
    pub fn recording(inner: impl StorageBackend + 'static) -> FaultBackend {
        FaultBackend {
            inner: Arc::new(inner),
            state: Arc::new(Mutex::new(FaultState {
                ops: 0,
                plan: None,
                crashed: false,
                log: Vec::new(),
            })),
        }
    }

    /// Wrapper armed with a crash plan.
    pub fn with_plan(inner: impl StorageBackend + 'static, plan: CrashPlan) -> FaultBackend {
        let b = FaultBackend::recording(inner);
        b.state().plan = Some(plan);
        b
    }

    fn state(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arm (or replace) the crash plan mid-run: lets a test record a
    /// workload prefix fault-free, then kill a later phase at an exact
    /// operation.
    pub fn arm(&self, plan: CrashPlan) {
        self.state().plan = Some(plan);
    }

    /// Mutating operations observed so far.
    pub fn op_count(&self) -> u64 {
        self.state().ops
    }

    /// True once the planned crash point has fired.
    pub fn crashed(&self) -> bool {
        self.state().crashed
    }

    /// The recorded operation stream, in order.
    pub fn ops(&self) -> Vec<Op> {
        self.state().log.clone()
    }
}

struct FaultFile {
    path: PathBuf,
    inner: Box<dyn BackendFile>,
    state: Arc<Mutex<FaultState>>,
}

impl FaultFile {
    fn state(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let admission =
            self.state().admit(Op::Write { path: self.path.clone(), bytes: buf.len() })?;
        match admission {
            Admission::Proceed => {
                self.inner.write_all(buf)?;
                Ok(buf.len())
            }
            Admission::Tear(keep) => {
                let keep = keep.min(buf.len());
                self.inner.write_all(&buf[..keep])?;
                let _ = self.inner.flush();
                Err(crash_error(self.state().ops))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        // Flushing moves no new bytes (writes were counted individually);
        // it only fails once the process-model is dead.
        self.state().check_alive()?;
        self.inner.flush()
    }
}

impl BackendFile for FaultFile {
    fn sync_data(&mut self) -> io::Result<()> {
        let admission = self.state().admit(Op::Sync { path: self.path.clone() })?;
        match admission {
            Admission::Proceed => self.inner.sync_data(),
            Admission::Tear(_) => Err(crash_error(self.state().ops)),
        }
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let admission = self.state().admit(Op::Truncate { path: self.path.clone(), len })?;
        match admission {
            Admission::Proceed => self.inner.truncate(len),
            Admission::Tear(_) => Err(crash_error(self.state().ops)),
        }
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        let admission =
            self.state().admit(Op::Write { path: self.path.clone(), bytes: buf.len() })?;
        match admission {
            Admission::Proceed => self.inner.write_at(offset, buf),
            Admission::Tear(keep) => {
                // A torn positioned write persists a leading prefix at the
                // target offset, mirroring the sequential-write model.
                let keep = keep.min(buf.len());
                if keep > 0 {
                    self.inner.write_at(offset, &buf[..keep])?;
                }
                Err(crash_error(self.state().ops))
            }
        }
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.state().check_alive()?;
        self.inner.read_at(offset, buf)
    }

    fn file_len(&mut self) -> io::Result<u64> {
        self.state().check_alive()?;
        self.inner.file_len()
    }
}

impl StorageBackend for FaultBackend {
    fn open_append(&self, path: &Path, truncate_to: u64) -> io::Result<Box<dyn BackendFile>> {
        let admission =
            self.state().admit(Op::Truncate { path: path.to_path_buf(), len: truncate_to })?;
        if let Admission::Tear(_) = admission {
            return Err(crash_error(self.state().ops));
        }
        let inner = self.inner.open_append(path, truncate_to)?;
        Ok(Box::new(FaultFile { path: path.to_path_buf(), inner, state: Arc::clone(&self.state) }))
    }

    fn create_new(&self, path: &Path) -> io::Result<Box<dyn BackendFile>> {
        let admission = self.state().admit(Op::Create { path: path.to_path_buf() })?;
        if let Admission::Tear(_) = admission {
            return Err(crash_error(self.state().ops));
        }
        let inner = self.inner.create_new(path)?;
        Ok(Box::new(FaultFile { path: path.to_path_buf(), inner, state: Arc::clone(&self.state) }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        // Reads are not mutating: they take no crash point, but a dead
        // process-model cannot read either.
        self.state().check_alive()?;
        self.inner.read(path)
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn BackendFile>> {
        // Opening an existing file mutates nothing (no crash point); the
        // handle's own writes and syncs are gated like any other.
        self.state().check_alive()?;
        let inner = self.inner.open_rw(path)?;
        Ok(Box::new(FaultFile { path: path.to_path_buf(), inner, state: Arc::clone(&self.state) }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let admission =
            self.state().admit(Op::Rename { from: from.to_path_buf(), to: to.to_path_buf() })?;
        match admission {
            Admission::Proceed => self.inner.rename(from, to),
            Admission::Tear(_) => Err(crash_error(self.state().ops)),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let admission = self.state().admit(Op::Remove { path: path.to_path_buf() })?;
        match admission {
            Admission::Proceed => self.inner.remove_file(path),
            Admission::Tear(_) => Err(crash_error(self.state().ops)),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let admission = self.state().admit(Op::CreateDir { path: path.to_path_buf() })?;
        match admission {
            Admission::Proceed => self.inner.create_dir_all(path),
            Admission::Tear(_) => Err(crash_error(self.state().ops)),
        }
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        self.state().check_alive()?;
        self.inner.list_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("quarry-faultfs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.bin", std::process::id()))
    }

    #[test]
    fn recording_backend_counts_and_logs_ops() {
        let p = tmp("record");
        let _ = std::fs::remove_file(&p);
        let b = FaultBackend::recording(RealBackend);
        let mut f = b.open_append(&p, 0).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(b.op_count(), 3, "truncate + write + sync");
        let kinds: Vec<&str> = b.ops().iter().map(Op::kind).collect();
        assert_eq!(kinds, vec!["truncate", "write", "sync"]);
        assert!(!b.crashed());
        assert_eq!(b.read(&p).unwrap(), b"hello");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn crash_point_fails_that_op_and_all_later_ones() {
        let p = tmp("kill");
        let _ = std::fs::remove_file(&p);
        let b = FaultBackend::with_plan(RealBackend, CrashPlan::kill_at(2));
        let mut f = b.open_append(&p, 0).unwrap(); // op 1: truncate
        let err = f.write_all(b"doomed").unwrap_err(); // op 2: crash
        assert!(err.to_string().contains("simulated crash"), "{err}");
        assert!(b.crashed());
        assert!(f.write_all(b"more").is_err(), "process-model stays dead");
        assert!(f.sync_data().is_err());
        assert!(b.read(&p).is_err(), "reads die with the process too");
        // Nothing of the crashing write reached the file.
        assert_eq!(std::fs::read(&p).unwrap(), b"");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn torn_write_persists_exactly_the_prefix() {
        let p = tmp("tear");
        let _ = std::fs::remove_file(&p);
        let b = FaultBackend::with_plan(RealBackend, CrashPlan::tear_at(3, 4));
        let mut f = b.open_append(&p, 0).unwrap(); // op 1
        f.write_all(b"intact|").unwrap(); // op 2
        assert!(f.write_all(b"torn-away").is_err()); // op 3: 4 bytes survive
        drop(f);
        assert_eq!(std::fs::read(&p).unwrap(), b"intact|torn");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn positioned_io_round_trips_and_tears() {
        let p = tmp("posio");
        let _ = std::fs::remove_file(&p);
        std::fs::write(&p, b"0123456789").unwrap();
        let b = FaultBackend::recording(RealBackend);
        let mut f = b.open_rw(&p).unwrap();
        assert_eq!(b.op_count(), 0, "open_rw takes no crash point");
        f.write_at(4, b"XY").unwrap(); // op 1
        let mut buf = [0u8; 3];
        f.read_at(3, &mut buf).unwrap();
        assert_eq!(&buf, b"3XY");
        assert_eq!(f.file_len().unwrap(), 10);
        assert_eq!(b.op_count(), 1, "only the write counts");
        drop(f);

        // A torn positioned write persists a prefix at the offset.
        let b = FaultBackend::with_plan(RealBackend, CrashPlan::tear_at(1, 1));
        let mut f = b.open_rw(&p).unwrap();
        assert!(f.write_at(0, b"ab").is_err());
        drop(f);
        assert_eq!(std::fs::read(&p).unwrap(), b"a123XY6789");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn rename_and_remove_are_crash_points() {
        let a = tmp("mv-src");
        let bpath = tmp("mv-dst");
        std::fs::write(&a, b"x").unwrap();
        let _ = std::fs::remove_file(&bpath);
        let fb = FaultBackend::with_plan(RealBackend, CrashPlan::kill_at(1));
        assert!(fb.rename(&a, &bpath).is_err());
        assert!(a.exists(), "crashing rename must not move the file");
        assert!(!bpath.exists());
        std::fs::remove_file(&a).unwrap();
    }
}
