//! Compact binary encoding for values, rows, and table schemas.
//!
//! The storage hot paths — WAL records, checkpoint heap pages, and the
//! persisted snapshot store — all encode through this module instead of
//! JSON (see `docs/storage.md` for the motivation and the byte-level
//! format). The encoding is length-prefixed throughout: integers are
//! LEB128 varints (signed values zigzag-encoded first), floats are their
//! IEEE-754 bits in little-endian order (so NaN payloads and signed zeros
//! round-trip exactly), and strings are a byte-length varint followed by
//! UTF-8 bytes. Nothing here is self-describing beyond a one-byte tag per
//! value; framing, versioning, and checksums belong to the callers
//! ([`crate::wal`], [`crate::page`], [`crate::snapshot`]).
//!
//! Writers are generic over [`std::io::Write`] so callers can stream
//! straight into a `BufWriter` without materializing the whole encoding;
//! readers work on in-memory slices with an explicit cursor and return
//! [`StorageError::Corrupt`] on any truncation, overlong varint, bad tag,
//! or invalid UTF-8.

use crate::error::StorageError;
use crate::structured::{Column, Row, TableSchema};
use crate::value::{DataType, Value};
use crate::Result;
use std::io::Write;

/// Value tags. `Bool` gets two tags so every value is `tag + payload`
/// with no separate payload byte for booleans.
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_TEXT: u8 = 5;

fn corrupt(what: &str) -> StorageError {
    StorageError::Corrupt(format!("binary codec: {what}"))
}

// ---------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------

/// Write an unsigned LEB128 varint (1–10 bytes).
pub fn write_u64<W: Write>(w: &mut W, mut v: u64) -> Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Read an unsigned LEB128 varint, advancing `pos`.
pub fn read_u64(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut out: u64 = 0;
    for shift in (0..64).step_by(7) {
        let &byte = data.get(*pos).ok_or_else(|| corrupt("truncated varint"))?;
        *pos += 1;
        out |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            // Bits past the 64th must be zero in the final (10th) byte.
            if shift == 63 && byte > 1 {
                return Err(corrupt("varint overflows u64"));
            }
            return Ok(out);
        }
    }
    Err(corrupt("varint longer than 10 bytes"))
}

/// Write a signed integer, zigzag-encoded so small magnitudes stay small.
pub fn write_i64<W: Write>(w: &mut W, v: i64) -> Result<()> {
    write_u64(w, ((v << 1) ^ (v >> 63)) as u64)
}

/// Read a zigzag-encoded signed integer.
pub fn read_i64(data: &[u8], pos: &mut usize) -> Result<i64> {
    let z = read_u64(data, pos)?;
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

// ---------------------------------------------------------------------
// Strings and byte runs
// ---------------------------------------------------------------------

/// Write a length-prefixed string.
pub fn write_str<W: Write>(w: &mut W, s: &str) -> Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Read `n` raw bytes, advancing `pos`.
fn read_exact<'d>(data: &'d [u8], pos: &mut usize, n: usize) -> Result<&'d [u8]> {
    let end = pos.checked_add(n).filter(|&e| e <= data.len());
    let end = end.ok_or_else(|| corrupt("truncated byte run"))?;
    let out = &data[*pos..end];
    *pos = end;
    Ok(out)
}

/// Read a length-prefixed string.
pub fn read_str(data: &[u8], pos: &mut usize) -> Result<String> {
    let len = read_u64(data, pos)?;
    let len = usize::try_from(len).map_err(|_| corrupt("string length overflows usize"))?;
    let bytes = read_exact(data, pos, len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string is not UTF-8"))
}

// ---------------------------------------------------------------------
// Values and rows
// ---------------------------------------------------------------------

/// Write one [`Value`] as `tag + payload`.
pub fn write_value<W: Write>(w: &mut W, v: &Value) -> Result<()> {
    match v {
        Value::Null => w.write_all(&[TAG_NULL])?,
        Value::Bool(false) => w.write_all(&[TAG_FALSE])?,
        Value::Bool(true) => w.write_all(&[TAG_TRUE])?,
        Value::Int(i) => {
            w.write_all(&[TAG_INT])?;
            write_i64(w, *i)?;
        }
        Value::Float(f) => {
            w.write_all(&[TAG_FLOAT])?;
            w.write_all(&f.to_bits().to_le_bytes())?;
        }
        Value::Text(s) => {
            w.write_all(&[TAG_TEXT])?;
            write_str(w, s)?;
        }
    }
    Ok(())
}

/// Read one [`Value`].
pub fn read_value(data: &[u8], pos: &mut usize) -> Result<Value> {
    let &tag = data.get(*pos).ok_or_else(|| corrupt("truncated value tag"))?;
    *pos += 1;
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_FALSE => Value::Bool(false),
        TAG_TRUE => Value::Bool(true),
        TAG_INT => Value::Int(read_i64(data, pos)?),
        TAG_FLOAT => {
            let bytes = read_exact(data, pos, 8)?;
            Value::Float(f64::from_bits(u64::from_le_bytes(bytes.try_into().unwrap())))
        }
        TAG_TEXT => Value::Text(read_str(data, pos)?),
        other => return Err(corrupt(&format!("unknown value tag {other}"))),
    })
}

/// Write a row as `count + values`.
pub fn write_row<W: Write>(w: &mut W, row: &[Value]) -> Result<()> {
    write_u64(w, row.len() as u64)?;
    for v in row {
        write_value(w, v)?;
    }
    Ok(())
}

/// Read a row.
pub fn read_row(data: &[u8], pos: &mut usize) -> Result<Row> {
    let n = read_u64(data, pos)?;
    let n = usize::try_from(n).map_err(|_| corrupt("row length overflows usize"))?;
    // Every value costs at least one tag byte; reject lengths the
    // remaining input cannot possibly satisfy before allocating.
    if n > data.len() - (*pos).min(data.len()) {
        return Err(corrupt("row length exceeds remaining input"));
    }
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(read_value(data, pos)?);
    }
    Ok(row)
}

// ---------------------------------------------------------------------
// Schemas
// ---------------------------------------------------------------------

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Text,
        3 => DataType::Bool,
        other => return Err(corrupt(&format!("unknown data-type tag {other}"))),
    })
}

/// Write a full [`TableSchema`]: name, columns, key column indexes, and
/// indexed column names.
pub fn write_schema<W: Write>(w: &mut W, schema: &TableSchema) -> Result<()> {
    write_str(w, &schema.name)?;
    write_u64(w, schema.columns.len() as u64)?;
    for col in &schema.columns {
        write_str(w, &col.name)?;
        w.write_all(&[dtype_tag(col.dtype), col.nullable as u8])?;
    }
    write_u64(w, schema.key.len() as u64)?;
    for &k in &schema.key {
        write_u64(w, k as u64)?;
    }
    write_u64(w, schema.indexes.len() as u64)?;
    for ix in &schema.indexes {
        write_str(w, ix)?;
    }
    Ok(())
}

/// Read a [`TableSchema`].
pub fn read_schema(data: &[u8], pos: &mut usize) -> Result<TableSchema> {
    let name = read_str(data, pos)?;
    let ncols = read_u64(data, pos)? as usize;
    let mut columns = Vec::new();
    for _ in 0..ncols {
        let cname = read_str(data, pos)?;
        let raw = read_exact(data, pos, 2)?;
        let dtype = dtype_from_tag(raw[0])?;
        let nullable = match raw[1] {
            0 => false,
            1 => true,
            other => return Err(corrupt(&format!("bad nullable byte {other}"))),
        };
        columns.push(if nullable {
            Column::nullable(&cname, dtype)
        } else {
            Column::new(&cname, dtype)
        });
    }
    let nkey = read_u64(data, pos)? as usize;
    let mut key = Vec::new();
    for _ in 0..nkey {
        let k = read_u64(data, pos)? as usize;
        if k >= columns.len() {
            return Err(corrupt(&format!("key column index {k} out of range")));
        }
        key.push(k);
    }
    let nix = read_u64(data, pos)? as usize;
    let mut indexes = Vec::new();
    for _ in 0..nix {
        indexes.push(read_str(data, pos)?);
    }
    // Re-resolve key/index names through the validating constructor so a
    // corrupt schema (dup columns, nullable key, ...) is rejected here.
    let key_names: Vec<String> = key.iter().map(|&k| columns[k].name.clone()).collect();
    let key_refs: Vec<&str> = key_names.iter().map(String::as_str).collect();
    let index_refs: Vec<&str> = indexes.iter().map(String::as_str).collect();
    TableSchema::new(&name, columns, &key_refs, &index_refs)
        .map_err(|e| corrupt(&format!("invalid schema: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rt_value(v: &Value) -> Value {
        let mut buf = Vec::new();
        write_value(&mut buf, v).unwrap();
        let mut pos = 0;
        let out = read_value(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len(), "no trailing bytes for {v:?}");
        out
    }

    #[test]
    fn varint_round_trip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300, 300] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v).unwrap();
            let mut pos = 0;
            assert_eq!(read_i64(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn small_ints_encode_small() {
        let mut buf = Vec::new();
        write_i64(&mut buf, 42).unwrap();
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_i64(&mut buf, -42).unwrap();
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn special_floats_round_trip_bitwise() {
        for f in [0.0f64, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE, f64::NAN] {
            match rt_value(&Value::Float(f)) {
                Value::Float(g) => assert_eq!(g.to_bits(), f.to_bits(), "{f:?}"),
                other => panic!("decoded {other:?}"),
            }
        }
    }

    #[test]
    fn values_and_rows_round_trip() {
        let row: Row = vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-7),
            Value::Float(2.5),
            Value::Text("héllo — ünïcode".into()),
            Value::Text(String::new()),
        ];
        let mut buf = Vec::new();
        write_row(&mut buf, &row).unwrap();
        let mut pos = 0;
        assert_eq!(read_row(&buf, &mut pos).unwrap(), row);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn schema_round_trip() {
        let schema = TableSchema::new(
            "cities",
            vec![
                Column::new("name", DataType::Text),
                Column::new("population", DataType::Int),
                Column::nullable("mayor", DataType::Text),
                Column::nullable("rainfall", DataType::Float),
                Column::new("coastal", DataType::Bool),
            ],
            &["name"],
            &["population", "mayor"],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_schema(&mut buf, &schema).unwrap();
        let mut pos = 0;
        assert_eq!(read_schema(&buf, &mut pos).unwrap(), schema);
        assert_eq!(pos, buf.len());
    }

    /// Corruption table for the codec itself: every case must surface as
    /// `StorageError::Corrupt`, never a panic or a wrong value (mirrors
    /// `wal::tests::replay_corruption_table`; the page-level cases live in
    /// `pager::tests`).
    #[test]
    fn decode_corruption_table() {
        struct Case {
            name: &'static str,
            bytes: Vec<u8>,
        }
        let unterminated = vec![TAG_INT, 0x80, 0x80, 0x80]; // continuation bits, then EOF
        let overlong = {
            let mut b = vec![TAG_INT];
            b.extend_from_slice(&[0x80; 10]);
            b.push(0x01); // an 11th varint byte
            b
        };
        let cases = [
            Case { name: "empty input", bytes: vec![] },
            Case { name: "unknown value tag", bytes: vec![9] },
            Case { name: "truncated varint (continuation bit at EOF)", bytes: unterminated },
            Case { name: "varint longer than 10 bytes", bytes: overlong },
            Case { name: "truncated float payload", bytes: vec![TAG_FLOAT, 1, 2, 3] },
            Case { name: "string length past EOF", bytes: vec![TAG_TEXT, 200, 1, b'x'] },
            Case { name: "string with invalid UTF-8", bytes: vec![TAG_TEXT, 2, 0xFF, 0xFE] },
        ];
        for case in &cases {
            let mut pos = 0;
            let got = read_value(&case.bytes, &mut pos);
            assert!(
                matches!(got, Err(StorageError::Corrupt(_))),
                "case {:?}: got {got:?}",
                case.name
            );
        }
        // A row whose declared length exceeds the input must fail before
        // allocating, not while reading values.
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX).unwrap();
        let mut pos = 0;
        assert!(matches!(read_row(&buf, &mut pos), Err(StorageError::Corrupt(_))));
    }

    proptest! {
        #[test]
        fn prop_value_round_trip(
            picks in proptest::collection::vec(
                (0u8..6, any::<i64>(), -1.0e300f64..1.0e300, "[ -~]{0,24}"),
                0..12,
            )
        ) {
            let row: Row = picks
                .into_iter()
                .map(|(tag, i, f, s)| match tag {
                    0 => Value::Null,
                    1 => Value::Bool(false),
                    2 => Value::Bool(true),
                    3 => Value::Int(i),
                    4 => Value::Float(f),
                    _ => Value::Text(s),
                })
                .collect();
            let mut buf = Vec::new();
            write_row(&mut buf, &row).unwrap();
            let mut pos = 0;
            let decoded = read_row(&buf, &mut pos).unwrap();
            prop_assert_eq!(pos, buf.len());
            prop_assert_eq!(decoded, row);
        }

        #[test]
        fn prop_varints_round_trip(vs in proptest::collection::vec(any::<u64>(), 0..64)) {
            let mut buf = Vec::new();
            for &v in &vs {
                write_u64(&mut buf, v).unwrap();
            }
            let mut pos = 0;
            for &v in &vs {
                prop_assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            }
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn prop_truncated_rows_never_panic(
            row in proptest::collection::vec((0u8..6, any::<i64>()), 1..8),
            cut in 0usize..64,
        ) {
            let row: Row = row
                .into_iter()
                .map(|(tag, i)| match tag {
                    0 => Value::Null,
                    1 => Value::Bool(true),
                    2 => Value::Int(i),
                    3 => Value::Float(i as f64),
                    _ => Value::Text(format!("v{i}")),
                })
                .collect();
            let mut buf = Vec::new();
            write_row(&mut buf, &row).unwrap();
            let cut = cut.min(buf.len().saturating_sub(1));
            let mut pos = 0;
            // Any strict prefix decodes to Corrupt, never panics.
            let _ = read_row(&buf[..cut], &mut pos);
        }
    }
}
