//! Subversion-style versioned document store.
//!
//! Daily crawl snapshots of the same pages overlap heavily, so storing each
//! version in full wastes space roughly linear in the number of days. This
//! store keeps a *keyframe* every `keyframe_interval` versions and a line
//! [`Delta`](crate::delta::Delta) for every other version, reconstructing any
//! requested version by replaying deltas forward from the nearest keyframe —
//! bounding both space (diff-sized) and read cost (≤ interval replays).

use crate::delta::{self, Delta};
use crate::error::StorageError;
use crate::faultfs::StorageBackend;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

#[derive(Debug, Clone, Serialize, Deserialize)]
enum StoredVersion {
    Full(String),
    Delta(Delta),
}

impl StoredVersion {
    fn stored_bytes(&self) -> usize {
        match self {
            StoredVersion::Full(s) => s.len(),
            StoredVersion::Delta(d) => d.encoded_size(),
        }
    }
}

/// Space accounting for the whole store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// Number of distinct documents tracked.
    pub documents: usize,
    /// Total versions across all documents.
    pub versions: usize,
    /// Bytes if every version were stored in full.
    pub logical_bytes: usize,
    /// Bytes actually stored (keyframes + deltas).
    pub stored_bytes: usize,
}

impl SnapshotStats {
    /// logical / stored; > 1 means the delta encoding is saving space.
    pub fn compression_ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            return 1.0;
        }
        self.logical_bytes as f64 / self.stored_bytes as f64
    }
}

/// Versioned store of documents keyed by string id.
///
/// ```
/// use quarry_storage::SnapshotStore;
///
/// let mut store = SnapshotStore::new(16);
/// store.put("page", "line one\nline two");
/// store.put("page", "line one\nline two\nline three");
/// assert_eq!(store.get("page", 0).unwrap(), "line one\nline two");
/// assert!(store.stats().stored_bytes <= store.stats().logical_bytes);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotStore {
    keyframe_interval: usize,
    versions: HashMap<String, Vec<StoredVersion>>,
    /// Cache of each document's latest text, so appending a version does not
    /// require replaying its history.
    latest: HashMap<String, String>,
    logical_bytes: usize,
}

impl Default for SnapshotStore {
    fn default() -> Self {
        Self::new(16)
    }
}

impl SnapshotStore {
    /// Create a store that keeps a full keyframe every `keyframe_interval`
    /// versions (1 = store everything in full, i.e. delta encoding off).
    pub fn new(keyframe_interval: usize) -> Self {
        assert!(keyframe_interval >= 1, "keyframe interval must be ≥ 1");
        SnapshotStore {
            keyframe_interval,
            versions: HashMap::new(),
            latest: HashMap::new(),
            logical_bytes: 0,
        }
    }

    /// Append a new version of `key`. Returns the version number (0-based).
    pub fn put(&mut self, key: &str, text: &str) -> usize {
        self.logical_bytes += text.len();
        let chain = self.versions.entry(key.to_string()).or_default();
        let version = chain.len();
        if version.is_multiple_of(self.keyframe_interval) {
            chain.push(StoredVersion::Full(text.to_string()));
        } else {
            let base = self.latest.get(key).map(String::as_str).unwrap_or("");
            let d = delta::diff(base, text);
            // A delta bigger than the text itself is a pessimization; fall
            // back to full storage for that version.
            if d.encoded_size() >= text.len() {
                chain.push(StoredVersion::Full(text.to_string()));
            } else {
                chain.push(StoredVersion::Delta(d));
            }
        }
        self.latest.insert(key.to_string(), text.to_string());
        version
    }

    /// Append one whole crawl snapshot: every `(key, text)` pair gets a new
    /// version.
    pub fn put_snapshot<'a>(&mut self, docs: impl IntoIterator<Item = (&'a str, &'a str)>) {
        for (key, text) in docs {
            self.put(key, text);
        }
    }

    /// Number of versions stored for `key` (0 if unknown).
    pub fn version_count(&self, key: &str) -> usize {
        self.versions.get(key).map_or(0, Vec::len)
    }

    /// Reconstruct a specific version of a document.
    pub fn get(&self, key: &str, version: usize) -> Result<String> {
        let chain = self
            .versions
            .get(key)
            .ok_or_else(|| StorageError::NotFound(format!("document {key}")))?;
        if version >= chain.len() {
            return Err(StorageError::NotFound(format!(
                "version {version} of {key} (have {})",
                chain.len()
            )));
        }
        // Find the nearest keyframe at or before `version`, then roll forward.
        let mut kf = version;
        while !matches!(chain[kf], StoredVersion::Full(_)) {
            kf -= 1; // version 0 is always Full, so this terminates
        }
        let mut text = match &chain[kf] {
            StoredVersion::Full(s) => s.clone(),
            StoredVersion::Delta(_) => unreachable!(),
        };
        for sv in &chain[kf + 1..=version] {
            text = match sv {
                StoredVersion::Full(s) => s.clone(),
                StoredVersion::Delta(d) => delta::apply(d, &text).ok_or_else(|| {
                    StorageError::Corrupt(format!("delta chain broken for {key}"))
                })?,
            };
        }
        Ok(text)
    }

    /// The most recent version of a document, if any.
    pub fn latest(&self, key: &str) -> Option<&str> {
        self.latest.get(key).map(String::as_str)
    }

    /// All document keys, unordered.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.versions.keys().map(String::as_str)
    }

    /// Persist the whole store to `path` atomically: serialize to a sibling
    /// temp file, fsync it, then rename over the destination. A crash at any
    /// point leaves either the previous complete image or the new one —
    /// never a torn file (the rename is the commit point).
    pub fn save(&self, backend: &dyn StorageBackend, path: &Path) -> Result<()> {
        let bytes = serde_json::to_vec(self)
            .map_err(|e| StorageError::Corrupt(format!("snapshot serialize: {e}")))?;
        let tmp = path.with_extension("snap-tmp");
        let _ = backend.remove_file(&tmp); // stale temp from an earlier crash
        let mut f = backend.create_new(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
        drop(f);
        backend.rename(&tmp, path)?;
        Ok(())
    }

    /// Load a store persisted by [`SnapshotStore::save`]. A missing file is
    /// an empty store with the given interval (first boot).
    pub fn load(
        backend: &dyn StorageBackend,
        path: &Path,
        keyframe_interval: usize,
    ) -> Result<SnapshotStore> {
        let data = match backend.read(path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(SnapshotStore::new(keyframe_interval));
            }
            Err(e) => return Err(e.into()),
        };
        serde_json::from_slice(&data)
            .map_err(|e| StorageError::Corrupt(format!("snapshot deserialize: {e}")))
    }

    /// Space accounting.
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            documents: self.versions.len(),
            versions: self.versions.values().map(Vec::len).sum(),
            logical_bytes: self.logical_bytes,
            stored_bytes: self
                .versions
                .values()
                .flat_map(|c| c.iter())
                .map(StoredVersion::stored_bytes)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn put_get_round_trip() {
        let mut s = SnapshotStore::new(4);
        for day in 0..10 {
            s.put("madison", &format!("line one\nline two\nday {day}\nline four"));
        }
        for day in 0..10 {
            let text = s.get("madison", day).unwrap();
            assert!(text.contains(&format!("day {day}")));
        }
        assert_eq!(s.version_count("madison"), 10);
    }

    #[test]
    fn missing_document_and_version_error() {
        let mut s = SnapshotStore::default();
        assert!(matches!(s.get("nope", 0), Err(StorageError::NotFound(_))));
        s.put("a", "text");
        assert!(matches!(s.get("a", 1), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn overlapping_versions_compress() {
        let mut s = SnapshotStore::new(32);
        let base: String = (0..100).map(|i| format!("paragraph {i} of the page\n")).collect();
        for day in 0..30 {
            let text = format!("{base}edit of day {day}\n");
            s.put("page", &text);
        }
        let stats = s.stats();
        assert!(stats.compression_ratio() > 5.0, "ratio {}", stats.compression_ratio());
        // And contents are still exact.
        assert!(s.get("page", 17).unwrap().contains("edit of day 17"));
    }

    #[test]
    fn interval_one_disables_deltas() {
        let mut s = SnapshotStore::new(1);
        s.put("d", "aaaa\nbbbb");
        s.put("d", "aaaa\nbbbb");
        let stats = s.stats();
        assert_eq!(stats.logical_bytes, stats.stored_bytes);
    }

    #[test]
    fn unrelated_rewrites_fall_back_to_full() {
        let mut s = SnapshotStore::new(64);
        s.put("d", "aaa bbb ccc");
        s.put("d", "completely different text with nothing shared");
        // Delta would exceed the text; the store must not blow up space.
        let stats = s.stats();
        assert!(stats.stored_bytes <= stats.logical_bytes);
        assert_eq!(s.get("d", 1).unwrap(), "completely different text with nothing shared");
    }

    #[test]
    fn latest_tracks_most_recent() {
        let mut s = SnapshotStore::default();
        s.put("x", "v0");
        s.put("x", "v1");
        assert_eq!(s.latest("x"), Some("v1"));
        assert_eq!(s.latest("y"), None);
    }

    #[test]
    fn put_snapshot_bulk() {
        let mut s = SnapshotStore::default();
        s.put_snapshot([("a", "1"), ("b", "2")]);
        s.put_snapshot([("a", "1b"), ("b", "2b"), ("c", "3")]);
        assert_eq!(s.version_count("a"), 2);
        assert_eq!(s.version_count("c"), 1);
        assert_eq!(s.stats().documents, 3);
    }

    #[test]
    #[should_panic(expected = "keyframe interval")]
    fn zero_interval_rejected() {
        SnapshotStore::new(0);
    }

    #[test]
    fn save_load_round_trip_and_missing_file_is_empty() {
        use crate::faultfs::RealBackend;
        let dir = std::env::temp_dir().join(format!("quarry-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.snap");
        let _ = std::fs::remove_file(&path);

        let empty = SnapshotStore::load(&RealBackend, &path, 8).unwrap();
        assert_eq!(empty.stats().documents, 0);

        let mut s = SnapshotStore::new(4);
        for day in 0..6 {
            s.put("page", &format!("line a\nline b\nday {day}"));
        }
        s.save(&RealBackend, &path).unwrap();
        let loaded = SnapshotStore::load(&RealBackend, &path, 4).unwrap();
        assert_eq!(loaded.stats(), s.stats());
        assert_eq!(loaded.get("page", 3).unwrap(), s.get("page", 3).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_save_preserves_previous_image() {
        use crate::faultfs::{CrashPlan, FaultBackend, RealBackend};
        let dir = std::env::temp_dir().join(format!("quarry-snapcrash-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.snap");
        let _ = std::fs::remove_file(&path);

        let mut s = SnapshotStore::new(4);
        s.put("doc", "version zero");
        s.save(&RealBackend, &path).unwrap();

        // Crash the second save at every one of its operations; the old
        // image must survive each time (rename is the commit point).
        s.put("doc", "version one");
        let total = {
            let rec = FaultBackend::recording(RealBackend);
            s.save(&rec, &path).unwrap();
            rec.op_count()
        };
        // Restore the v0 image for the crash runs.
        let mut v0 = SnapshotStore::new(4);
        v0.put("doc", "version zero");
        v0.save(&RealBackend, &path).unwrap();
        for k in 1..total {
            let fb = FaultBackend::with_plan(RealBackend, CrashPlan::kill_at(k));
            assert!(s.save(&fb, &path).is_err(), "crash point {k} must fail the save");
            let loaded = SnapshotStore::load(&RealBackend, &path, 4).unwrap();
            assert_eq!(loaded.latest("doc"), Some("version zero"), "crash point {k}");
        }
        // The final op (the rename) completing means the new image is live.
        let fb = FaultBackend::with_plan(RealBackend, CrashPlan::kill_at(total + 1));
        s.save(&fb, &path).unwrap();
        let loaded = SnapshotStore::load(&RealBackend, &path, 4).unwrap();
        assert_eq!(loaded.latest("doc"), Some("version one"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    proptest! {
        #[test]
        fn prop_every_version_reconstructs(
            texts in proptest::collection::vec("([a-z ]{0,20}\n){0,10}", 1..12),
            interval in 1usize..6,
        ) {
            let mut s = SnapshotStore::new(interval);
            for t in &texts {
                s.put("doc", t);
            }
            for (v, t) in texts.iter().enumerate() {
                prop_assert_eq!(&s.get("doc", v).unwrap(), t);
            }
        }
    }
}
