//! Subversion-style versioned document store.
//!
//! Daily crawl snapshots of the same pages overlap heavily, so storing each
//! version in full wastes space roughly linear in the number of days. This
//! store keeps a *keyframe* every `keyframe_interval` versions and a line
//! [`Delta`](crate::delta::Delta) for every other version, reconstructing any
//! requested version by replaying deltas forward from the nearest keyframe —
//! bounding both space (diff-sized) and read cost (≤ interval replays).

use crate::codec;
use crate::delta::{self, Delta, DeltaOp};
use crate::error::StorageError;
use crate::faultfs::StorageBackend;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Magic prefix of the binary snapshot image format. A legacy image instead
/// starts with `{` (a whole-store JSON object) and is still readable.
const SNAP_MAGIC: &[u8; 4] = b"QSN1";

#[derive(Debug, Clone, Serialize, Deserialize)]
enum StoredVersion {
    Full(String),
    Delta(Delta),
}

impl StoredVersion {
    fn stored_bytes(&self) -> usize {
        match self {
            StoredVersion::Full(s) => s.len(),
            StoredVersion::Delta(d) => d.encoded_size(),
        }
    }
}

/// Space accounting for the whole store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// Number of distinct documents tracked.
    pub documents: usize,
    /// Total versions across all documents.
    pub versions: usize,
    /// Bytes if every version were stored in full.
    pub logical_bytes: usize,
    /// Bytes actually stored (keyframes + deltas).
    pub stored_bytes: usize,
}

impl SnapshotStats {
    /// logical / stored; > 1 means the delta encoding is saving space.
    pub fn compression_ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            return 1.0;
        }
        self.logical_bytes as f64 / self.stored_bytes as f64
    }
}

/// Versioned store of documents keyed by string id.
///
/// ```
/// use quarry_storage::SnapshotStore;
///
/// let mut store = SnapshotStore::new(16);
/// store.put("page", "line one\nline two");
/// store.put("page", "line one\nline two\nline three");
/// assert_eq!(store.get("page", 0).unwrap(), "line one\nline two");
/// assert!(store.stats().stored_bytes <= store.stats().logical_bytes);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotStore {
    keyframe_interval: usize,
    versions: HashMap<String, Vec<StoredVersion>>,
    /// Cache of each document's latest text, so appending a version does not
    /// require replaying its history.
    latest: HashMap<String, String>,
    logical_bytes: usize,
}

impl Default for SnapshotStore {
    fn default() -> Self {
        Self::new(16)
    }
}

impl SnapshotStore {
    /// Create a store that keeps a full keyframe every `keyframe_interval`
    /// versions (1 = store everything in full, i.e. delta encoding off).
    pub fn new(keyframe_interval: usize) -> Self {
        assert!(keyframe_interval >= 1, "keyframe interval must be ≥ 1");
        SnapshotStore {
            keyframe_interval,
            versions: HashMap::new(),
            latest: HashMap::new(),
            logical_bytes: 0,
        }
    }

    /// Append a new version of `key`. Returns the version number (0-based).
    pub fn put(&mut self, key: &str, text: &str) -> usize {
        self.logical_bytes += text.len();
        let chain = self.versions.entry(key.to_string()).or_default();
        let version = chain.len();
        if version.is_multiple_of(self.keyframe_interval) {
            chain.push(StoredVersion::Full(text.to_string()));
        } else {
            let base = self.latest.get(key).map(String::as_str).unwrap_or("");
            let d = delta::diff(base, text);
            // A delta bigger than the text itself is a pessimization; fall
            // back to full storage for that version.
            if d.encoded_size() >= text.len() {
                chain.push(StoredVersion::Full(text.to_string()));
            } else {
                chain.push(StoredVersion::Delta(d));
            }
        }
        self.latest.insert(key.to_string(), text.to_string());
        version
    }

    /// Append one whole crawl snapshot: every `(key, text)` pair gets a new
    /// version.
    pub fn put_snapshot<'a>(&mut self, docs: impl IntoIterator<Item = (&'a str, &'a str)>) {
        for (key, text) in docs {
            self.put(key, text);
        }
    }

    /// Number of versions stored for `key` (0 if unknown).
    pub fn version_count(&self, key: &str) -> usize {
        self.versions.get(key).map_or(0, Vec::len)
    }

    /// Reconstruct a specific version of a document.
    pub fn get(&self, key: &str, version: usize) -> Result<String> {
        let chain = self
            .versions
            .get(key)
            .ok_or_else(|| StorageError::NotFound(format!("document {key}")))?;
        if version >= chain.len() {
            return Err(StorageError::NotFound(format!(
                "version {version} of {key} (have {})",
                chain.len()
            )));
        }
        // Find the nearest keyframe at or before `version`, then roll forward.
        let mut kf = version;
        while !matches!(chain[kf], StoredVersion::Full(_)) {
            kf -= 1; // version 0 is always Full, so this terminates
        }
        let mut text = match &chain[kf] {
            StoredVersion::Full(s) => s.clone(),
            // quarry-audit: allow(QA101, reason = "the loop above stops only on a Full keyframe")
            StoredVersion::Delta(_) => unreachable!(),
        };
        for sv in &chain[kf + 1..=version] {
            text = match sv {
                StoredVersion::Full(s) => s.clone(),
                StoredVersion::Delta(d) => delta::apply(d, &text).ok_or_else(|| {
                    StorageError::Corrupt(format!("delta chain broken for {key}"))
                })?,
            };
        }
        Ok(text)
    }

    /// The most recent version of a document, if any.
    pub fn latest(&self, key: &str) -> Option<&str> {
        self.latest.get(key).map(String::as_str)
    }

    /// All document keys, unordered.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.versions.keys().map(String::as_str)
    }

    /// Persist the whole store to `path` atomically: stream the binary image
    /// through a [`BufWriter`] into a sibling temp file, fsync it, then
    /// rename over the destination. A crash at any point leaves either the
    /// previous complete image or the new one — never a torn file (the
    /// rename is the commit point). Streaming means peak memory is one
    /// buffer, not a whole serialized copy of the store.
    pub fn save(&self, backend: &dyn StorageBackend, path: &Path) -> Result<()> {
        let tmp = path.with_extension("snap-tmp");
        let _ = backend.remove_file(&tmp); // stale temp from an earlier crash
        let f = backend.create_new(&tmp)?;
        let mut w = BufWriter::new(f);
        self.encode_into(&mut w)?;
        let mut f =
            w.into_inner().map_err(|e| StorageError::Io(std::io::Error::other(e.to_string())))?;
        f.sync_data()?;
        drop(f);
        backend.rename(&tmp, path)?;
        Ok(())
    }

    /// Write the binary image: magic, store parameters, then each document's
    /// version chain (documents sorted by key so the byte stream — and the
    /// fault-injection op stream — is deterministic).
    fn encode_into<W: Write>(&self, w: &mut W) -> Result<()> {
        w.write_all(SNAP_MAGIC)?;
        codec::write_u64(w, self.keyframe_interval as u64)?;
        codec::write_u64(w, self.logical_bytes as u64)?;
        codec::write_u64(w, self.versions.len() as u64)?;
        let mut keys: Vec<&String> = self.versions.keys().collect();
        keys.sort();
        for key in keys {
            codec::write_str(w, key)?;
            let chain = &self.versions[key];
            codec::write_u64(w, chain.len() as u64)?;
            for sv in chain {
                match sv {
                    StoredVersion::Full(text) => {
                        w.write_all(&[0])?;
                        codec::write_str(w, text)?;
                    }
                    StoredVersion::Delta(d) => {
                        w.write_all(&[1])?;
                        codec::write_u64(w, d.ops.len() as u64)?;
                        for op in &d.ops {
                            match op {
                                DeltaOp::Copy { start, len } => {
                                    w.write_all(&[0])?;
                                    codec::write_u64(w, u64::from(*start))?;
                                    codec::write_u64(w, u64::from(*len))?;
                                }
                                DeltaOp::Insert(lines) => {
                                    w.write_all(&[1])?;
                                    codec::write_u64(w, lines.len() as u64)?;
                                    for line in lines {
                                        codec::write_str(w, line)?;
                                    }
                                }
                            }
                        }
                        w.write_all(&[u8::from(d.trailing_newline)])?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Load a store persisted by [`SnapshotStore::save`]. A missing file is
    /// an empty store with the given interval (first boot). Legacy images
    /// (whole-store JSON, starting with `{`) remain readable; they are
    /// rewritten in the binary format on the next `save`.
    pub fn load(
        backend: &dyn StorageBackend,
        path: &Path,
        keyframe_interval: usize,
    ) -> Result<SnapshotStore> {
        let data = match backend.read(path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(SnapshotStore::new(keyframe_interval));
            }
            Err(e) => return Err(e.into()),
        };
        match data.first() {
            Some(b'{') => serde_json::from_slice(&data)
                .map_err(|e| StorageError::Corrupt(format!("snapshot deserialize: {e}"))),
            _ => Self::decode(&data),
        }
    }

    fn decode(data: &[u8]) -> Result<SnapshotStore> {
        if data.len() < SNAP_MAGIC.len() || &data[..SNAP_MAGIC.len()] != SNAP_MAGIC {
            return Err(StorageError::Corrupt("snapshot image: bad magic".into()));
        }
        let pos = &mut SNAP_MAGIC.len();
        let keyframe_interval = codec::read_u64(data, pos)? as usize;
        if keyframe_interval == 0 {
            return Err(StorageError::Corrupt("snapshot image: zero keyframe interval".into()));
        }
        let logical_bytes = codec::read_u64(data, pos)? as usize;
        let ndocs = codec::read_u64(data, pos)? as usize;
        let mut versions = HashMap::new();
        for _ in 0..ndocs {
            let key = codec::read_str(data, pos)?;
            let nversions = codec::read_u64(data, pos)? as usize;
            let mut chain = Vec::with_capacity(nversions.min(1024));
            for _ in 0..nversions {
                chain.push(Self::decode_version(data, pos)?);
            }
            versions.insert(key, chain);
        }
        if *pos != data.len() {
            return Err(StorageError::Corrupt(format!(
                "snapshot image: {} trailing bytes",
                data.len() - *pos
            )));
        }
        let mut store =
            SnapshotStore { keyframe_interval, versions, latest: HashMap::new(), logical_bytes };
        // `latest` is derivable, so the image omits it; rebuild each entry by
        // reconstructing the newest version.
        let keys: Vec<String> = store.versions.keys().cloned().collect();
        for key in keys {
            let last = store.version_count(&key) - 1;
            let text = store.get(&key, last)?;
            store.latest.insert(key, text);
        }
        Ok(store)
    }

    fn decode_version(data: &[u8], pos: &mut usize) -> Result<StoredVersion> {
        let tag = codec::read_u64(data, pos)?;
        match tag {
            0 => Ok(StoredVersion::Full(codec::read_str(data, pos)?)),
            1 => {
                let nops = codec::read_u64(data, pos)? as usize;
                let mut ops = Vec::with_capacity(nops.min(1024));
                for _ in 0..nops {
                    match codec::read_u64(data, pos)? {
                        0 => {
                            let start = u32::try_from(codec::read_u64(data, pos)?)
                                .map_err(|_| StorageError::Corrupt("delta copy start".into()))?;
                            let len = u32::try_from(codec::read_u64(data, pos)?)
                                .map_err(|_| StorageError::Corrupt("delta copy len".into()))?;
                            ops.push(DeltaOp::Copy { start, len });
                        }
                        1 => {
                            let nlines = codec::read_u64(data, pos)? as usize;
                            let mut lines = Vec::with_capacity(nlines.min(1024));
                            for _ in 0..nlines {
                                lines.push(codec::read_str(data, pos)?);
                            }
                            ops.push(DeltaOp::Insert(lines));
                        }
                        t => {
                            return Err(StorageError::Corrupt(format!("delta op tag {t}")));
                        }
                    }
                }
                let trailing = codec::read_u64(data, pos)?;
                if trailing > 1 {
                    return Err(StorageError::Corrupt("trailing-newline flag".into()));
                }
                Ok(StoredVersion::Delta(Delta { ops, trailing_newline: trailing == 1 }))
            }
            t => Err(StorageError::Corrupt(format!("stored-version tag {t}"))),
        }
    }

    /// Space accounting.
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            documents: self.versions.len(),
            versions: self.versions.values().map(Vec::len).sum(),
            logical_bytes: self.logical_bytes,
            stored_bytes: self
                .versions
                .values()
                .flat_map(|c| c.iter())
                .map(StoredVersion::stored_bytes)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn put_get_round_trip() {
        let mut s = SnapshotStore::new(4);
        for day in 0..10 {
            s.put("madison", &format!("line one\nline two\nday {day}\nline four"));
        }
        for day in 0..10 {
            let text = s.get("madison", day).unwrap();
            assert!(text.contains(&format!("day {day}")));
        }
        assert_eq!(s.version_count("madison"), 10);
    }

    #[test]
    fn missing_document_and_version_error() {
        let mut s = SnapshotStore::default();
        assert!(matches!(s.get("nope", 0), Err(StorageError::NotFound(_))));
        s.put("a", "text");
        assert!(matches!(s.get("a", 1), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn overlapping_versions_compress() {
        let mut s = SnapshotStore::new(32);
        let base: String = (0..100).map(|i| format!("paragraph {i} of the page\n")).collect();
        for day in 0..30 {
            let text = format!("{base}edit of day {day}\n");
            s.put("page", &text);
        }
        let stats = s.stats();
        assert!(stats.compression_ratio() > 5.0, "ratio {}", stats.compression_ratio());
        // And contents are still exact.
        assert!(s.get("page", 17).unwrap().contains("edit of day 17"));
    }

    #[test]
    fn interval_one_disables_deltas() {
        let mut s = SnapshotStore::new(1);
        s.put("d", "aaaa\nbbbb");
        s.put("d", "aaaa\nbbbb");
        let stats = s.stats();
        assert_eq!(stats.logical_bytes, stats.stored_bytes);
    }

    #[test]
    fn unrelated_rewrites_fall_back_to_full() {
        let mut s = SnapshotStore::new(64);
        s.put("d", "aaa bbb ccc");
        s.put("d", "completely different text with nothing shared");
        // Delta would exceed the text; the store must not blow up space.
        let stats = s.stats();
        assert!(stats.stored_bytes <= stats.logical_bytes);
        assert_eq!(s.get("d", 1).unwrap(), "completely different text with nothing shared");
    }

    #[test]
    fn latest_tracks_most_recent() {
        let mut s = SnapshotStore::default();
        s.put("x", "v0");
        s.put("x", "v1");
        assert_eq!(s.latest("x"), Some("v1"));
        assert_eq!(s.latest("y"), None);
    }

    #[test]
    fn put_snapshot_bulk() {
        let mut s = SnapshotStore::default();
        s.put_snapshot([("a", "1"), ("b", "2")]);
        s.put_snapshot([("a", "1b"), ("b", "2b"), ("c", "3")]);
        assert_eq!(s.version_count("a"), 2);
        assert_eq!(s.version_count("c"), 1);
        assert_eq!(s.stats().documents, 3);
    }

    #[test]
    #[should_panic(expected = "keyframe interval")]
    fn zero_interval_rejected() {
        SnapshotStore::new(0);
    }

    #[test]
    fn save_load_round_trip_and_missing_file_is_empty() {
        use crate::faultfs::RealBackend;
        let dir = std::env::temp_dir().join(format!("quarry-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.snap");
        let _ = std::fs::remove_file(&path);

        let empty = SnapshotStore::load(&RealBackend, &path, 8).unwrap();
        assert_eq!(empty.stats().documents, 0);

        let mut s = SnapshotStore::new(4);
        for day in 0..6 {
            s.put("page", &format!("line a\nline b\nday {day}"));
        }
        s.save(&RealBackend, &path).unwrap();
        let loaded = SnapshotStore::load(&RealBackend, &path, 4).unwrap();
        assert_eq!(loaded.stats(), s.stats());
        assert_eq!(loaded.get("page", 3).unwrap(), s.get("page", 3).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_json_image_still_loads() {
        use crate::faultfs::RealBackend;
        let dir = std::env::temp_dir().join(format!("quarry-snapjson-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.snap");

        let mut s = SnapshotStore::new(4);
        for day in 0..6 {
            s.put("page", &format!("line a\nline b\nday {day}"));
        }
        // Write the pre-binary format: the whole store as one JSON blob.
        std::fs::write(&path, serde_json::to_vec(&s).unwrap()).unwrap();

        let loaded = SnapshotStore::load(&RealBackend, &path, 4).unwrap();
        assert_eq!(loaded.stats(), s.stats());
        assert_eq!(loaded.latest("page"), s.latest("page"));
        // The next save rewrites it in the binary format.
        loaded.save(&RealBackend, &path).unwrap();
        assert_eq!(&std::fs::read(&path).unwrap()[..4], SNAP_MAGIC);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_image_is_smaller_than_json() {
        let mut s = SnapshotStore::new(4);
        for day in 0..20 {
            s.put("page", &format!("line one\nline two\nday {day}\nline four"));
            s.put("other", &format!("alpha\nbeta\nrev {day}"));
        }
        let mut bin = Vec::new();
        s.encode_into(&mut bin).unwrap();
        let json = serde_json::to_vec(&s).unwrap();
        assert!(bin.len() * 2 <= json.len(), "binary {} vs json {} bytes", bin.len(), json.len());
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let mut s = SnapshotStore::new(4);
        for day in 0..6 {
            s.put("page", &format!("line a\nline b\nday {day}"));
        }
        let mut bin = Vec::new();
        s.encode_into(&mut bin).unwrap();

        // Truncation at any point fails (never a silent partial store).
        for cut in [3, 7, bin.len() / 2, bin.len() - 1] {
            assert!(SnapshotStore::decode(&bin[..cut]).is_err(), "cut at {cut}");
        }
        // Bad magic.
        let mut bad = bin.clone();
        bad[0] ^= 0xff;
        assert!(matches!(SnapshotStore::decode(&bad), Err(StorageError::Corrupt(_))));
        // Trailing garbage.
        let mut long = bin.clone();
        long.push(0);
        assert!(matches!(SnapshotStore::decode(&long), Err(StorageError::Corrupt(_))));
        // The clean image round-trips exactly.
        let back = SnapshotStore::decode(&bin).unwrap();
        assert_eq!(back.stats(), s.stats());
        assert_eq!(back.get("page", 5).unwrap(), s.get("page", 5).unwrap());
    }

    #[test]
    fn crashed_save_preserves_previous_image() {
        use crate::faultfs::{CrashPlan, FaultBackend, RealBackend};
        let dir = std::env::temp_dir().join(format!("quarry-snapcrash-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.snap");
        let _ = std::fs::remove_file(&path);

        let mut s = SnapshotStore::new(4);
        s.put("doc", "version zero");
        s.save(&RealBackend, &path).unwrap();

        // Crash the second save at every one of its operations; the old
        // image must survive each time (rename is the commit point).
        s.put("doc", "version one");
        let total = {
            let rec = FaultBackend::recording(RealBackend);
            s.save(&rec, &path).unwrap();
            rec.op_count()
        };
        // Restore the v0 image for the crash runs.
        let mut v0 = SnapshotStore::new(4);
        v0.put("doc", "version zero");
        v0.save(&RealBackend, &path).unwrap();
        for k in 1..total {
            let fb = FaultBackend::with_plan(RealBackend, CrashPlan::kill_at(k));
            assert!(s.save(&fb, &path).is_err(), "crash point {k} must fail the save");
            let loaded = SnapshotStore::load(&RealBackend, &path, 4).unwrap();
            assert_eq!(loaded.latest("doc"), Some("version zero"), "crash point {k}");
        }
        // The final op (the rename) completing means the new image is live.
        let fb = FaultBackend::with_plan(RealBackend, CrashPlan::kill_at(total + 1));
        s.save(&fb, &path).unwrap();
        let loaded = SnapshotStore::load(&RealBackend, &path, 4).unwrap();
        assert_eq!(loaded.latest("doc"), Some("version one"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    proptest! {
        #[test]
        fn prop_every_version_reconstructs(
            texts in proptest::collection::vec("([a-z ]{0,20}\n){0,10}", 1..12),
            interval in 1usize..6,
        ) {
            let mut s = SnapshotStore::new(interval);
            for t in &texts {
                s.put("doc", t);
            }
            for (v, t) in texts.iter().enumerate() {
                prop_assert_eq!(&s.get("doc", v).unwrap(), t);
            }
        }
    }
}
