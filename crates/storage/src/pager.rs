//! Page-file manager: meta page, freelist, LRU buffer pool, and record
//! chains.
//!
//! A `Pager` owns one paged file (see [`crate::page`] for the page format)
//! through a [`BackendFile`], so the `FaultBackend` crash sweeps cover
//! every page write. Layout follows the murodb-style layering — pager on
//! the bottom, an LRU page cache above it, a freelist for reuse:
//!
//! - **page 0** is the meta page: magic, format version, page size, page
//!   count, freelist head, and the root (directory chain head);
//! - **freelist**: freed pages are rewritten as `PageType::Free` whose
//!   `next` links the list; allocation pops the head before extending the
//!   file, so a steady-state file stops growing;
//! - **buffer pool**: a fixed-capacity LRU of decoded pages with
//!   dirty-page tracking; evicting a dirty frame writes it back, so peak
//!   memory during a checkpoint build is bounded by the pool, not the
//!   table size. [`Pager::flush`] writes remaining dirty pages in page-id
//!   order (a deterministic operation stream for the crash sweeps), then
//!   the meta page, then syncs.
//!
//! Records larger than one page span *chains*: [`ChainWriter`] streams
//! encoded bytes across linked pages, and [`read_chain`] concatenates a
//! chain's payloads for decoding.

use crate::error::StorageError;
use crate::faultfs::{BackendFile, StorageBackend};
use crate::page::{Page, PageType, NO_PAGE, PAGE_CAPACITY, PAGE_SIZE};
use crate::Result;
use std::collections::HashMap;
use std::io;
use std::path::Path;

/// Magic prefix of the meta page payload.
const MAGIC: &[u8; 4] = b"QPG1";
/// Paged-file format version.
const FORMAT_VERSION: u8 = 1;
/// Meta payload: magic(4) + version(1) + page_size(4) + page_count(4) +
/// free_head(4) + root(4).
const META_LEN: usize = 21;

/// Buffer-pool counters, exposed for benches and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page reads served from the pool.
    pub hits: u64,
    /// Page reads that went to the file.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Evictions that had to write a dirty page back first.
    pub dirty_writebacks: u64,
}

struct Frame {
    page: Page,
    dirty: bool,
    tick: u64,
}

/// Fixed-capacity LRU cache of decoded pages with dirty tracking.
struct BufferPool {
    capacity: usize,
    frames: HashMap<u32, Frame>,
    tick: u64,
    stats: PoolStats,
}

impl BufferPool {
    fn new(capacity: usize) -> BufferPool {
        BufferPool {
            capacity: capacity.max(1),
            frames: HashMap::new(),
            tick: 0,
            stats: PoolStats::default(),
        }
    }

    fn touch(&mut self, id: u32) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(f) = self.frames.get_mut(&id) {
            f.tick = tick;
        }
    }

    /// Pick the least-recently-used frame (smallest tick; ties broken by
    /// page id for determinism).
    fn victim(&self) -> Option<u32> {
        self.frames.iter().min_by_key(|(id, f)| (f.tick, **id)).map(|(id, _)| *id)
    }
}

/// Manager of one paged file.
pub struct Pager {
    file: Box<dyn BackendFile>,
    pool: BufferPool,
    page_count: u32,
    free_head: u32,
    root: u32,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("page_count", &self.page_count)
            .field("free_head", &self.free_head)
            .field("root", &self.root)
            .finish()
    }
}

impl Pager {
    /// Create a brand-new paged file (fails if `path` exists). The meta
    /// page is materialized on the first [`Pager::flush`].
    pub fn create(backend: &dyn StorageBackend, path: &Path, pool_pages: usize) -> Result<Pager> {
        let file = backend.create_new(path)?;
        Ok(Pager {
            file,
            pool: BufferPool::new(pool_pages),
            page_count: 1, // page 0 = meta
            free_head: NO_PAGE,
            root: NO_PAGE,
        })
    }

    /// Open an existing paged file, validating the meta page.
    pub fn open(backend: &dyn StorageBackend, path: &Path, pool_pages: usize) -> Result<Pager> {
        let mut file = backend.open_rw(path)?;
        let len = file.file_len()?;
        if len < PAGE_SIZE as u64 || len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "paged file is {len} bytes, not a positive multiple of {PAGE_SIZE}"
            )));
        }
        let mut buf = [0u8; PAGE_SIZE];
        file.read_at(0, &mut buf)?;
        let meta = Page::decode(&buf)?;
        if meta.ptype != PageType::Meta {
            return Err(StorageError::Corrupt("page 0 is not a meta page".into()));
        }
        let p = meta.payload();
        if p.len() < META_LEN || &p[0..4] != MAGIC {
            return Err(StorageError::Corrupt("bad paged-file magic".into()));
        }
        if p[4] != FORMAT_VERSION {
            return Err(StorageError::Corrupt(format!("unknown paged-file version {}", p[4])));
        }
        let page_size = u32::from_le_bytes(p[5..9].try_into().unwrap());
        if page_size as usize != PAGE_SIZE {
            return Err(StorageError::Corrupt(format!("paged file uses {page_size}-byte pages")));
        }
        let page_count = u32::from_le_bytes(p[9..13].try_into().unwrap());
        if u64::from(page_count) * PAGE_SIZE as u64 > len || page_count == 0 {
            return Err(StorageError::Corrupt(format!(
                "meta page claims {page_count} pages but the file holds {} bytes",
                len
            )));
        }
        let free_head = u32::from_le_bytes(p[13..17].try_into().unwrap());
        let root = u32::from_le_bytes(p[17..21].try_into().unwrap());
        // Page references in the meta page must resolve inside the file;
        // catching a corrupt head here beats a confusing failure on the
        // first allocate/read that chases it.
        for (what, id) in [("freelist head", free_head), ("root", root)] {
            if id != NO_PAGE && id >= page_count {
                return Err(StorageError::Corrupt(format!(
                    "meta page {what} {id} is out of range (file has {page_count} pages)"
                )));
            }
        }
        Ok(Pager { file, pool: BufferPool::new(pool_pages), page_count, free_head, root })
    }

    /// Quick format probe: does `path` start with a valid paged meta page?
    /// Used to tell a paged checkpoint from a legacy JSON-WAL one. Missing
    /// files and short/legacy files answer `false`; only I/O errors that
    /// are not "file is absent/too short" surface.
    pub fn is_paged(backend: &dyn StorageBackend, path: &Path) -> io::Result<bool> {
        let mut file = match backend.open_rw(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(e),
        };
        if file.file_len()? < PAGE_SIZE as u64 {
            return Ok(false);
        }
        let mut buf = [0u8; PAGE_SIZE];
        file.read_at(0, &mut buf)?;
        match Page::decode(&buf) {
            Ok(meta) => Ok(meta.ptype == PageType::Meta
                && meta.payload().len() >= META_LEN
                && &meta.payload()[0..4] == MAGIC),
            Err(_) => Ok(false),
        }
    }

    /// Head of the root (directory) chain, [`NO_PAGE`] if unset.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Point the root at a chain head.
    pub fn set_root(&mut self, root: u32) {
        self.root = root;
    }

    /// Total pages in the file, meta page included.
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Buffer-pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats
    }

    /// Pages currently resident in the buffer pool (bounded by the pool
    /// capacity; benches use this to show open-time memory stays bounded).
    pub fn cached_pages(&self) -> usize {
        self.pool.frames.len()
    }

    /// Bytes the file occupies on disk.
    pub fn file_bytes(&self) -> u64 {
        u64::from(self.page_count) * PAGE_SIZE as u64
    }

    /// Allocate a page: pop the freelist head if any, else extend the file.
    pub fn allocate(&mut self, ptype: PageType) -> Result<u32> {
        let id = if self.free_head != NO_PAGE {
            let id = self.free_head;
            let free_page = self.read_page(id)?;
            if free_page.ptype != PageType::Free {
                return Err(StorageError::Corrupt(format!(
                    "freelist head {id} is a {:?} page",
                    free_page.ptype
                )));
            }
            self.free_head = free_page.next;
            id
        } else {
            let id = self.page_count;
            self.page_count += 1;
            id
        };
        self.put_page(id, Page::new(ptype))?;
        Ok(id)
    }

    /// Return a page to the freelist. Its payload is wiped.
    ///
    /// Freeing a page that is already free would thread it into the
    /// freelist twice: `allocate` would then hand the same page out to two
    /// owners (or loop on it forever), so the double-free is detected here
    /// and surfaced as [`StorageError::Corrupt`].
    pub fn free_page(&mut self, id: u32) -> Result<()> {
        if id == 0 || id >= self.page_count {
            return Err(StorageError::Corrupt(format!("cannot free page {id}")));
        }
        if self.read_page(id)?.ptype == PageType::Free {
            return Err(StorageError::Corrupt(format!("double free of page {id}")));
        }
        let mut p = Page::new(PageType::Free);
        p.next = self.free_head;
        self.put_page(id, p)?;
        self.free_head = id;
        Ok(())
    }

    /// Read a page through the pool.
    pub fn read_page(&mut self, id: u32) -> Result<Page> {
        if id == 0 || id >= self.page_count {
            return Err(StorageError::Corrupt(format!(
                "page id {id} out of range (file has {} pages)",
                self.page_count
            )));
        }
        if self.pool.frames.contains_key(&id) {
            self.pool.stats.hits += 1;
            self.pool.touch(id);
            return Ok(self.pool.frames[&id].page.clone());
        }
        self.pool.stats.misses += 1;
        let mut buf = [0u8; PAGE_SIZE];
        self.file.read_at(u64::from(id) * PAGE_SIZE as u64, &mut buf)?;
        let page =
            Page::decode(&buf).map_err(|e| StorageError::Corrupt(format!("page {id}: {e}")))?;
        self.install(id, page.clone(), false)?;
        Ok(page)
    }

    /// Install a (possibly new) page image in the pool, marked dirty.
    pub fn put_page(&mut self, id: u32, page: Page) -> Result<()> {
        if id == 0 || id >= self.page_count {
            return Err(StorageError::Corrupt(format!("page id {id} out of range")));
        }
        self.install(id, page, true)
    }

    fn install(&mut self, id: u32, page: Page, dirty: bool) -> Result<()> {
        if let Some(f) = self.pool.frames.get_mut(&id) {
            f.page = page;
            f.dirty = f.dirty || dirty;
            self.pool.touch(id);
            return Ok(());
        }
        while self.pool.frames.len() >= self.pool.capacity {
            let victim = self.pool.victim().expect("pool non-empty");
            let frame = self.pool.frames.remove(&victim).unwrap();
            self.pool.stats.evictions += 1;
            if frame.dirty {
                self.pool.stats.dirty_writebacks += 1;
                self.write_page_image(victim, &frame.page)?;
            }
        }
        self.pool.tick += 1;
        let tick = self.pool.tick;
        self.pool.frames.insert(id, Frame { page, dirty, tick });
        Ok(())
    }

    fn write_page_image(&mut self, id: u32, page: &Page) -> Result<()> {
        let img = page.encode();
        self.file.write_at(u64::from(id) * PAGE_SIZE as u64, &img)?;
        Ok(())
    }

    /// Write every dirty page (in page-id order, for a deterministic op
    /// stream), then the meta page, then sync the file.
    pub fn flush(&mut self) -> Result<()> {
        let mut dirty: Vec<u32> =
            self.pool.frames.iter().filter(|(_, f)| f.dirty).map(|(id, _)| *id).collect();
        dirty.sort_unstable();
        for id in dirty {
            let page = self.pool.frames[&id].page.clone();
            self.write_page_image(id, &page)?;
            self.pool.frames.get_mut(&id).unwrap().dirty = false;
        }
        let mut meta = Page::new(PageType::Meta);
        let mut payload = [0u8; META_LEN];
        payload[0..4].copy_from_slice(MAGIC);
        payload[4] = FORMAT_VERSION;
        payload[5..9].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
        payload[9..13].copy_from_slice(&self.page_count.to_le_bytes());
        payload[13..17].copy_from_slice(&self.free_head.to_le_bytes());
        payload[17..21].copy_from_slice(&self.root.to_le_bytes());
        meta.push(&payload);
        let img = meta.encode();
        self.file.write_at(0, &img)?;
        self.file.sync_data()?;
        Ok(())
    }
}

/// Streams encoded record bytes across a chain of linked pages.
///
/// Records may span page boundaries; the reader reassembles the chain's
/// payload before decoding, so no per-record slotting is needed.
pub struct ChainWriter {
    head: u32,
    current_id: u32,
    current: Page,
    ptype: PageType,
    records: u64,
}

impl ChainWriter {
    /// Start a chain with one freshly allocated page.
    pub fn new(pager: &mut Pager, ptype: PageType) -> Result<ChainWriter> {
        let head = pager.allocate(ptype)?;
        Ok(ChainWriter { head, current_id: head, current: Page::new(ptype), ptype, records: 0 })
    }

    /// Head page id of the chain.
    pub fn head(&self) -> u32 {
        self.head
    }

    /// Append one encoded record, spilling to new pages as needed.
    pub fn push_record(&mut self, pager: &mut Pager, mut bytes: &[u8]) -> Result<()> {
        self.records += 1;
        // If the current page is exactly full, the record's first byte lands
        // on the *next* page — spill first so the start-accounting below
        // charges the page the record actually begins in.
        if self.current.len as usize >= PAGE_CAPACITY {
            self.spill(pager)?;
        }
        self.current.count += 1; // record *starts* in this page
        loop {
            let n = self.current.push(bytes);
            bytes = &bytes[n..];
            if bytes.is_empty() {
                return Ok(());
            }
            self.spill(pager)?;
        }
    }

    /// Link a fresh page after the current one and make it current.
    fn spill(&mut self, pager: &mut Pager) -> Result<()> {
        let next_id = pager.allocate(self.ptype)?;
        self.current.next = next_id;
        let full = std::mem::replace(&mut self.current, Page::new(self.ptype));
        pager.put_page(self.current_id, full)?;
        self.current_id = next_id;
        Ok(())
    }

    /// Flush the tail page and return `(head, record_count)`.
    pub fn finish(self, pager: &mut Pager) -> Result<(u32, u64)> {
        pager.put_page(self.current_id, self.current)?;
        Ok((self.head, self.records))
    }
}

/// Concatenated payload of the chain starting at `head`.
pub fn read_chain(pager: &mut Pager, head: u32) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    let mut id = head;
    let mut visited: u64 = 0;
    while id != NO_PAGE {
        visited += 1;
        if visited > u64::from(pager.page_count()) {
            return Err(StorageError::Corrupt(format!("page chain from {head} contains a cycle")));
        }
        let page = pager.read_page(id)?;
        out.extend_from_slice(page.payload());
        id = page.next;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultfs::RealBackend;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("quarry-pager-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.qpg", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn create_flush_reopen_round_trip() {
        let p = tmp("roundtrip");
        let b = RealBackend;
        let mut pager = Pager::create(&b, &p, 8).unwrap();
        let mut w = ChainWriter::new(&mut pager, PageType::Heap).unwrap();
        w.push_record(&mut pager, b"alpha").unwrap();
        w.push_record(&mut pager, b"beta").unwrap();
        let (head, n) = w.finish(&mut pager).unwrap();
        assert_eq!(n, 2);
        pager.set_root(head);
        pager.flush().unwrap();
        drop(pager);

        assert!(Pager::is_paged(&b, &p).unwrap());
        let mut pager = Pager::open(&b, &p, 8).unwrap();
        assert_eq!(pager.root(), head);
        assert_eq!(read_chain(&mut pager, head).unwrap(), b"alphabeta");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn long_records_span_pages() {
        let p = tmp("span");
        let b = RealBackend;
        let mut pager = Pager::create(&b, &p, 4).unwrap();
        let big = vec![0x5A; PAGE_CAPACITY * 3 + 123];
        let mut w = ChainWriter::new(&mut pager, PageType::Heap).unwrap();
        w.push_record(&mut pager, &big).unwrap();
        w.push_record(&mut pager, b"tail").unwrap();
        let (head, _) = w.finish(&mut pager).unwrap();
        pager.set_root(head);
        pager.flush().unwrap();
        drop(pager);

        let mut pager = Pager::open(&b, &p, 4).unwrap();
        let mut want = big.clone();
        want.extend_from_slice(b"tail");
        let root = pager.root();
        assert_eq!(read_chain(&mut pager, root).unwrap(), want);
        assert!(pager.page_count() >= 5, "meta + 4 chain pages");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn freelist_reuses_pages() {
        let p = tmp("freelist");
        let b = RealBackend;
        let mut pager = Pager::create(&b, &p, 8).unwrap();
        let a = pager.allocate(PageType::Heap).unwrap();
        let c = pager.allocate(PageType::Heap).unwrap();
        let count_before = pager.page_count();
        pager.free_page(a).unwrap();
        pager.free_page(c).unwrap();
        // LIFO reuse: last freed comes back first; the file must not grow.
        assert_eq!(pager.allocate(PageType::Directory).unwrap(), c);
        assert_eq!(pager.allocate(PageType::Directory).unwrap(), a);
        assert_eq!(pager.page_count(), count_before);
        // Freelist drained: the next allocation extends the file.
        assert_eq!(pager.allocate(PageType::Heap).unwrap(), count_before);
        // Persist and reopen: the freelist head survives via the meta page.
        let d = pager.allocate(PageType::Heap).unwrap();
        pager.free_page(d).unwrap();
        pager.flush().unwrap();
        drop(pager);
        let mut pager = Pager::open(&b, &p, 8).unwrap();
        assert_eq!(pager.allocate(PageType::Heap).unwrap(), d);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn lru_pool_evicts_and_writes_back_dirty_pages() {
        let p = tmp("lru");
        let b = RealBackend;
        let mut pager = Pager::create(&b, &p, 2).unwrap(); // tiny pool
        let ids: Vec<u32> = (0..6)
            .map(|i| {
                let id = pager.allocate(PageType::Heap).unwrap();
                let mut page = Page::new(PageType::Heap);
                page.push(format!("payload-{i}").as_bytes());
                pager.put_page(id, page).unwrap();
                id
            })
            .collect();
        let stats = pager.pool_stats();
        assert!(stats.evictions >= 4, "6 dirty pages through a 2-frame pool: {stats:?}");
        assert!(stats.dirty_writebacks >= 4, "{stats:?}");
        pager.flush().unwrap();
        drop(pager);

        let mut pager = Pager::open(&b, &p, 2).unwrap();
        for (i, id) in ids.iter().enumerate() {
            let page = pager.read_page(*id).unwrap();
            assert_eq!(page.payload(), format!("payload-{i}").as_bytes());
        }
        // Re-read a resident page: that's a hit even with 2 frames.
        let before = pager.pool_stats().hits;
        let _ = pager.read_page(*ids.last().unwrap()).unwrap();
        assert_eq!(pager.pool_stats().hits, before + 1);
        std::fs::remove_file(&p).unwrap();
    }

    /// Page-level corruption table mirroring `wal::replay_corruption_table`:
    /// a bad page CRC and a zero-filled tail must both surface as Corrupt.
    #[test]
    fn pager_corruption_table() {
        let p = tmp("corrupt");
        let b = RealBackend;
        let mut pager = Pager::create(&b, &p, 4).unwrap();
        let mut w = ChainWriter::new(&mut pager, PageType::Heap).unwrap();
        w.push_record(&mut pager, &vec![7u8; PAGE_CAPACITY + 10]).unwrap();
        let (head, _) = w.finish(&mut pager).unwrap();
        pager.set_root(head);
        pager.flush().unwrap();
        drop(pager);
        let clean = std::fs::read(&p).unwrap();

        // Case 1: flip a payload bit in the chain's second page → bad CRC.
        let mut bad = clean.clone();
        bad[2 * PAGE_SIZE + 100] ^= 0x40;
        std::fs::write(&p, &bad).unwrap();
        let mut pager = Pager::open(&b, &p, 4).unwrap();
        let err = read_chain(&mut pager, head).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
        drop(pager);

        // Case 2: zero-filled page tail (torn multi-page write model).
        let mut torn = clean.clone();
        let tail_start = torn.len() - PAGE_SIZE;
        torn[tail_start..].fill(0);
        std::fs::write(&p, &torn).unwrap();
        let mut pager = Pager::open(&b, &p, 4).unwrap();
        let err = read_chain(&mut pager, head).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
        drop(pager);

        // Case 3: zeroed meta page → the file no longer probes as paged.
        let mut nometa = clean.clone();
        nometa[..PAGE_SIZE].fill(0);
        std::fs::write(&p, &nometa).unwrap();
        assert!(!Pager::is_paged(&b, &p).unwrap());
        assert!(Pager::open(&b, &p, 4).is_err());

        // Case 4: a meta page whose root points past the file's last page
        // (valid CRC, bogus reference) → Corrupt at open, not at first use.
        let mut badroot = clean;
        let mut meta = Page::decode(&badroot[..PAGE_SIZE]).unwrap();
        meta.data[17..21].copy_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
        badroot[..PAGE_SIZE].copy_from_slice(&meta.encode());
        std::fs::write(&p, &badroot).unwrap();
        let err = Pager::open(&b, &p, 4).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
        std::fs::remove_file(&p).unwrap();
    }

    /// Regression: a record starting exactly at a page boundary must be
    /// counted in the page its first byte lands in. Before the fix, a
    /// record pushed while the current page was exactly full was counted in
    /// no page at all.
    #[test]
    fn chain_counts_records_starting_at_page_boundaries() {
        let p = tmp("boundary");
        let b = RealBackend;
        let mut pager = Pager::create(&b, &p, 8).unwrap();
        let mut w = ChainWriter::new(&mut pager, PageType::Heap).unwrap();
        // Three page-exact records, then one spanning two pages (starts at
        // a boundary too), then a small tail record.
        for _ in 0..3 {
            w.push_record(&mut pager, &vec![0x11; PAGE_CAPACITY]).unwrap();
        }
        w.push_record(&mut pager, &vec![0x22; PAGE_CAPACITY * 2]).unwrap();
        w.push_record(&mut pager, b"tail").unwrap();
        let (head, n) = w.finish(&mut pager).unwrap();
        assert_eq!(n, 5);
        pager.set_root(head);
        pager.flush().unwrap();
        drop(pager);

        let mut pager = Pager::open(&b, &p, 8).unwrap();
        let mut counts = Vec::new();
        let mut id = head;
        while id != NO_PAGE {
            let page = pager.read_page(id).unwrap();
            counts.push(page.count);
            id = page.next;
        }
        // Pages 1..=3 hold one page-exact record each; page 4 starts the
        // two-page record; page 5 is its spill; page 6 starts the tail.
        assert_eq!(counts, vec![1, 1, 1, 1, 0, 1]);
        assert_eq!(counts.iter().map(|c| u64::from(*c)).sum::<u64>(), n);
        std::fs::remove_file(&p).unwrap();
    }

    /// A meta page whose freelist head or root points past the end of the
    /// file must fail at open, not on the first allocate/read.
    #[test]
    fn open_rejects_out_of_range_meta_references() {
        for field_off in [13usize, 17] {
            let p = tmp(&format!("metaref-{field_off}"));
            let b = RealBackend;
            let mut pager = Pager::create(&b, &p, 4).unwrap();
            let id = pager.allocate(PageType::Heap).unwrap();
            pager.set_root(id);
            pager.flush().unwrap();
            drop(pager);

            let mut bytes = std::fs::read(&p).unwrap();
            let mut meta = Page::decode(&bytes[..PAGE_SIZE]).unwrap();
            // Point free_head (offset 13) or root (offset 17) out of range.
            meta.data[field_off..field_off + 4].copy_from_slice(&9999u32.to_le_bytes());
            bytes[..PAGE_SIZE].copy_from_slice(&meta.encode());
            std::fs::write(&p, &bytes).unwrap();

            let err = Pager::open(&b, &p, 4).unwrap_err();
            assert!(matches!(err, StorageError::Corrupt(_)), "offset {field_off}: {err}");
            std::fs::remove_file(&p).unwrap();
        }
    }

    /// Freeing a page twice would thread it into the freelist as a cycle;
    /// the second free must surface as Corrupt instead.
    #[test]
    fn double_free_is_corrupt() {
        let p = tmp("doublefree");
        let b = RealBackend;
        let mut pager = Pager::create(&b, &p, 4).unwrap();
        let a = pager.allocate(PageType::Heap).unwrap();
        let c = pager.allocate(PageType::Heap).unwrap();
        pager.free_page(a).unwrap();
        let err = pager.free_page(a).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err}");
        // The freelist stays well-formed: both pages still allocate cleanly.
        pager.free_page(c).unwrap();
        assert_eq!(pager.allocate(PageType::Heap).unwrap(), c);
        assert_eq!(pager.allocate(PageType::Heap).unwrap(), a);
        // And the double-free check also holds across a flush + reopen.
        pager.free_page(c).unwrap();
        pager.flush().unwrap();
        drop(pager);
        let mut pager = Pager::open(&b, &p, 4).unwrap();
        assert!(matches!(pager.free_page(c), Err(StorageError::Corrupt(_))));
        std::fs::remove_file(&p).unwrap();
    }

    mod chain_props {
        use super::*;
        use proptest::prelude::*;
        use std::sync::atomic::{AtomicU64, Ordering};

        static CASE: AtomicU64 = AtomicU64::new(0);

        /// Raw record descriptors; the selector byte biases lengths toward
        /// page-boundary shapes (exact multiples, straddlers) in the test.
        fn record_lens() -> impl Strategy<Value = Vec<(usize, u8, u8)>> {
            proptest::collection::vec((0usize..600, any::<u8>(), any::<u8>()), 1..16)
        }

        fn shape(n: usize, sel: u8) -> usize {
            match sel % 8 {
                0 => PAGE_CAPACITY,
                1 => PAGE_CAPACITY * 2,
                2 => PAGE_CAPACITY - 1 + (n % 3), // straddles the boundary
                _ => n,
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Random record batches round-trip through ChainWriter /
            /// read_chain at every pool size, and a cold reopen reads each
            /// chain page from disk exactly once (miss count == chain pages,
            /// zero hits) regardless of pool capacity.
            #[test]
            fn prop_chain_round_trip_across_pool_sizes(lens in record_lens()) {
                let records: Vec<Vec<u8>> =
                    lens.iter().map(|(n, fill, sel)| vec![*fill; shape(*n, *sel)]).collect();
                let case = CASE.fetch_add(1, Ordering::Relaxed);
                for pool in [1usize, 2, 8] {
                    let p = tmp(&format!("prop-{case}-{pool}"));
                    let b = RealBackend;
                    let mut pager = Pager::create(&b, &p, pool).unwrap();
                    let mut w = ChainWriter::new(&mut pager, PageType::Heap).unwrap();
                    for rec in &records {
                        w.push_record(&mut pager, rec).unwrap();
                    }
                    let (head, n) = w.finish(&mut pager).unwrap();
                    prop_assert_eq!(n, records.len() as u64);
                    pager.set_root(head);
                    pager.flush().unwrap();
                    let chain_pages = u64::from(pager.page_count()) - 1;
                    drop(pager);

                    let mut pager = Pager::open(&b, &p, pool).unwrap();
                    let root = pager.root();
                    let got = read_chain(&mut pager, root).unwrap();
                    let want: Vec<u8> = records.concat();
                    prop_assert_eq!(got, want);
                    let stats = pager.pool_stats();
                    prop_assert_eq!(stats.misses, chain_pages);
                    prop_assert_eq!(stats.hits, 0);
                    std::fs::remove_file(&p).unwrap();
                }
            }
        }
    }

    #[test]
    fn open_rejects_truncated_and_missing_files() {
        let p = tmp("short");
        assert!(!Pager::is_paged(&RealBackend, &p).unwrap(), "missing file probes false");
        std::fs::write(&p, b"way too short").unwrap();
        assert!(!Pager::is_paged(&RealBackend, &p).unwrap());
        assert!(Pager::open(&RealBackend, &p, 4).is_err());
        std::fs::remove_file(&p).unwrap();
    }
}
