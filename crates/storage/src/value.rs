//! The typed value model shared by the structured store, the query engine,
//! the schema manager, and the semantic debugger.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

impl DataType {
    /// Whether a value of type `from` can be widened losslessly to `self`.
    ///
    /// Used by schema evolution's retype operation: `Int → Float` and
    /// anything → `Text` are allowed; everything else is rejected.
    pub fn widens_from(self, from: DataType) -> bool {
        self == from
            || matches!((from, self), (DataType::Int, DataType::Float))
            || self == DataType::Text
    }
}

/// A dynamically typed cell value.
///
/// `Value` implements a *total* order (unlike `f64`): `Null < Bool < numeric
/// (Int/Float compared numerically, NaN greatest) < Text`. The total order is
/// what lets values key B-tree indexes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL-style NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Text(String),
}

impl Value {
    /// The type of this value, or `None` for `Null` (which fits any type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// True if this value may be stored in a column of type `t`.
    /// `Int` is accepted by `Float` columns (widening); `Null` fits anywhere.
    pub fn fits(&self, t: DataType) -> bool {
        match self.data_type() {
            None => true,
            Some(vt) => vt == t || (vt == DataType::Int && t == DataType::Float),
        }
    }

    /// Numeric view of the value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Text view of the value, if it is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Parse a string into the "most structured" value it can be: Int, then
    /// Float, then Bool, else Text. Used when loading extraction output.
    pub fn parse_lossy(s: &str) -> Value {
        let t = s.trim();
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            return Value::Float(f);
        }
        match t {
            "true" | "TRUE" => Value::Bool(true),
            "false" | "FALSE" => Value::Bool(false),
            _ => Value::Text(t.to_string()),
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Text(_) => 3,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Int(a), Float(b)) => total_f64(*a as f64).cmp(&total_f64(*b)),
            (Float(a), Int(b)) => total_f64(*a).cmp(&total_f64(*b as f64)),
            (Float(a), Float(b)) => total_f64(*a).cmp(&total_f64(*b)),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            // Int and Float must hash identically when they compare equal.
            Value::Int(i) => total_f64(*i as f64).hash(state),
            Value::Float(f) => total_f64(*f).hash(state),
            Value::Text(s) => s.hash(state),
        }
    }
}

/// Total-order key for f64 (IEEE totalOrder trick): orders all floats,
/// placing -NaN first and +NaN last, with -0.0 < +0.0.
fn total_f64(f: f64) -> i64 {
    let bits = f.to_bits() as i64;
    bits ^ ((((bits >> 63) as u64) >> 1) as i64)
}

/// Convenience conversions.
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn total_order_ranks_types() {
        let mut vs = [
            Value::Text("a".into()),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::Float(1.5),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[4], Value::Text("a".into()));
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.9) < Value::Int(2));
    }

    #[test]
    fn equal_values_hash_equal_across_types() {
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
    }

    #[test]
    fn nan_is_ordered_greatest_among_numerics() {
        assert!(Value::Float(f64::NAN) > Value::Float(f64::MAX));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn fits_allows_widening_and_null() {
        assert!(Value::Int(1).fits(DataType::Float));
        assert!(!Value::Float(1.0).fits(DataType::Int));
        assert!(Value::Null.fits(DataType::Bool));
        assert!(Value::Text("x".into()).fits(DataType::Text));
    }

    #[test]
    fn parse_lossy_prefers_structure() {
        assert_eq!(Value::parse_lossy("42"), Value::Int(42));
        assert_eq!(Value::parse_lossy("42.5"), Value::Float(42.5));
        assert_eq!(Value::parse_lossy("true"), Value::Bool(true));
        assert_eq!(Value::parse_lossy(" hi "), Value::Text("hi".into()));
    }

    #[test]
    fn widens_from_rules() {
        assert!(DataType::Float.widens_from(DataType::Int));
        assert!(DataType::Text.widens_from(DataType::Float));
        assert!(!DataType::Int.widens_from(DataType::Float));
        assert!(DataType::Bool.widens_from(DataType::Bool));
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Text("hey".into()).to_string(), "hey");
    }
}
