//! E5 — §4 processing layer: declarative programs are "parsed, reformulated,
//! optimized, then executed", and the optimization pays.
//!
//! One QDL program, four optimizer configurations (the DESIGN.md ablation):
//! none, +filter placement, +extractor pruning, +cost ordering; plus the
//! materialization-reuse case (a second program over the same corpus).
//! Swept over corpus size. The result table must be identical under every
//! configuration — optimization may only change cost, never answers.

use quarry_bench::{banner, f1, timed, Table};
use quarry_corpus::{Corpus, CorpusConfig};
use quarry_lang::plan::{optimize_with, OptimizerConfig};
use quarry_lang::{parse, ExecContext, ExtractorRegistry, LogicalPlan};
use quarry_storage::Database;

const SRC: &str = r#"
PIPELINE city_population
FROM corpus
EXTRACT infobox, rules, rule:monthly-temperature, rule:lead-author, rule:publication-venue-year
RESOLVE BY name
WHERE attribute IN ("name", "population", "state")
STORE INTO cities KEY name
"#;

fn main() {
    banner(
        "E5 optimizer",
        "declarative IE+II+HI programs can be \"parsed, reformulated ..., optimized, \
         then executed\" (§4)",
    );
    // The written program is naive: WHERE after RESOLVE, expensive
    // extractors listed, temperature/author rules that the filter makes
    // useless. Filter placement is required for executability, so it is on
    // in every configuration; the ablation is over pruning and ordering.
    let configs: [(&str, OptimizerConfig); 3] = [
        (
            "baseline (filters placed only)",
            OptimizerConfig {
                filter_placement: true,
                extractor_pruning: false,
                cost_ordering: false,
            },
        ),
        (
            "+ extractor pruning",
            OptimizerConfig {
                filter_placement: true,
                extractor_pruning: true,
                cost_ordering: false,
            },
        ),
        (
            "+ cost ordering (full)",
            OptimizerConfig {
                filter_placement: true,
                extractor_pruning: true,
                cost_ordering: true,
            },
        ),
    ];

    for n_cities in [50usize, 150, 300] {
        let corpus =
            Corpus::generate(&CorpusConfig { seed: 5, n_cities, ..CorpusConfig::default() });
        println!("corpus: {n_cities} cities, {} docs", corpus.docs.len());
        let registry = ExtractorRegistry::standard();
        let naive = LogicalPlan::from_pipeline(&parse(SRC).unwrap());

        let mut table = Table::new(&["configuration", "cost units", "wall ms", "rows"]);
        let mut reference_rows: Option<usize> = None;
        for (label, cfg) in configs {
            let plan = optimize_with(&naive, &registry, cfg);
            let db = Database::in_memory();
            let mut ctx = ExecContext::new(&corpus.docs, &registry, &db);
            let (stats, ms) = timed(|| quarry_lang::Executor::run(&plan, &mut ctx).unwrap());
            let rows = db.row_count("cities").unwrap();
            match reference_rows {
                None => reference_rows = Some(rows),
                Some(r) => assert_eq!(r, rows, "optimization changed the answer!"),
            }
            table.row(&[label.into(), f1(stats.cost_units), f1(ms), rows.to_string()]);
        }
        // Materialization reuse: run a *second* program over the same context.
        let registry2 = ExtractorRegistry::standard();
        let db = Database::in_memory();
        let mut ctx = ExecContext::new(&corpus.docs, &registry2, &db);
        let full = optimize_with(&naive, &registry2, configs[2].1);
        let _ = quarry_lang::Executor::run(&full, &mut ctx).unwrap();
        let second = parse(
            "PIPELINE founded FROM corpus\nEXTRACT infobox\nWHERE attribute IN (\"name\", \"founded\")\nRESOLVE BY name\nSTORE INTO founded_at KEY name",
        )
        .unwrap();
        let second = optimize_with(&LogicalPlan::from_pipeline(&second), &registry2, configs[2].1);
        let (stats, ms) = timed(|| quarry_lang::Executor::run(&second, &mut ctx).unwrap());
        table.row(&[
            "2nd pipeline (cache reuse)".into(),
            f1(stats.cost_units),
            f1(ms),
            db.row_count("founded_at").unwrap().to_string(),
        ]);
        table.print();
        println!();
    }
    println!("expected shape: pruning cuts cost multiplicatively (the dropped rules cannot\nsatisfy the WHERE clause); a second pipeline over cached extractions is nearly free;\nrow counts identical in every configuration.");
}
