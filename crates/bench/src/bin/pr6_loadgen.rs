//! PR6 — MVCC serving benchmark: read-heavy closed-loop throughput and
//! tail latency now that reads execute against snapshots instead of
//! serializing through a façade mutex.
//!
//! Phase 1 drives a pure-read mix — structured queries, keyword
//! searches, explains, and stats — from 1, 2, 4, and 8 closed-loop
//! client threads. Phase 2 repeats the read loop while a dedicated
//! writer client hammers QDL pipelines the whole time: under the old
//! serialized design every read queued behind the in-flight write; under
//! the MVCC split reads only ever wait on the wire and the worker pool.
//! Phase 2 asserts *every* read succeeded while the writer was live —
//! the correctness gate for a 1-CPU CI container, where throughput
//! numbers are noise but a read blocked behind a write would hang or
//! reject.
//!
//! Writes `BENCH_pr6.json`. `--check` runs a fast small-size variant for
//! CI smoke testing.

use quarry_bench::{banner, f3, Table};
use quarry_core::{Quarry, QuarryConfig};
use quarry_corpus::{Corpus, CorpusConfig};
use quarry_query::engine::{AggFn, Predicate, Query};
use quarry_serve::{Client, ClientError, ServeConfig, Server};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const PIPELINE: &str = r#"
PIPELINE cities FROM corpus
EXTRACT infobox, rules
WHERE attribute IN ("name", "state", "population", "founded")
RESOLVE BY name
STORE INTO cities KEY name
"#;

fn queries() -> Vec<Query> {
    vec![
        Query::scan("cities").aggregate(None, AggFn::Count, "name"),
        Query::scan("cities")
            .filter(vec![Predicate::Eq("state".into(), "Wisconsin".into())])
            .project(&["name", "population"]),
        Query::scan("cities").sort("population", true, Some(10)).project(&["name"]),
        Query::scan("cities").aggregate(Some("state"), AggFn::Max, "population"),
    ]
}

/// `q`-th percentile (nearest-rank on the sorted sample), in µs.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct LoopPoint {
    threads: usize,
    requests: usize,
    ok: usize,
    wall_ms: f64,
    rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

/// Closed loop of pure reads: structured queries, keyword searches,
/// explains, and stats. Every request must succeed — reads are never
/// rejected or blocked in this workload.
fn read_loop(addr: SocketAddr, threads: usize, per_thread: usize) -> LoopPoint {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let qs = queries();
            let mut c = Client::connect_with(addr, Duration::from_secs(60)).unwrap();
            let mut lat = Vec::with_capacity(per_thread);
            barrier.wait();
            for i in 0..per_thread {
                let start = Instant::now();
                // Read-only mix: 4 queries : 2 keyword : 1 explain : 1 stats.
                let outcome = match i % 8 {
                    4 | 5 => c.keyword("population Madison", 5).map(|_| ()),
                    6 => c.explain(&qs[1]).map(|_| ()),
                    7 => c.stats().map(|_| ()),
                    _ => c.query(&qs[(t + i) % qs.len()]).map(|_| ()),
                };
                match outcome {
                    Ok(()) => lat.push(start.elapsed().as_micros() as u64),
                    Err(e) => panic!("read request failed under read-only load: {e}"),
                }
            }
            lat
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut all = Vec::with_capacity(threads * per_thread);
    for h in handles {
        all.extend(h.join().unwrap());
    }
    let wall = start.elapsed();
    all.sort_unstable();
    let requests = threads * per_thread;
    LoopPoint {
        threads,
        requests,
        ok: all.len(),
        wall_ms: wall.as_secs_f64() * 1e3,
        rps: all.len() as f64 / wall.as_secs_f64(),
        p50_us: percentile(&all, 0.50),
        p95_us: percentile(&all, 0.95),
        p99_us: percentile(&all, 0.99),
    }
}

/// Phase 2: the same read loop while a dedicated writer client runs QDL
/// pipelines back-to-back for the whole duration. Returns the read
/// point plus how many pipelines the writer landed.
fn reads_under_writes(addr: SocketAddr, threads: usize, per_thread: usize) -> (LoopPoint, usize) {
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = Client::connect_with(addr, Duration::from_secs(60)).unwrap();
            let mut landed = 0usize;
            while !stop.load(Ordering::SeqCst) {
                match c.qdl(PIPELINE) {
                    Ok(_) => landed += 1,
                    Err(ClientError::Overloaded) => {}
                    Err(e) => panic!("writer pipeline failed: {e}"),
                }
            }
            landed
        })
    };
    let point = read_loop(addr, threads, per_thread);
    stop.store(true, Ordering::SeqCst);
    let landed = writer.join().unwrap();
    (point, landed)
}

fn loop_json(points: &[LoopPoint]) -> String {
    let items: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"threads\": {}, \"requests\": {}, \"ok\": {}, \"wall_ms\": {:.2}, \
                 \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}",
                p.threads, p.requests, p.ok, p.wall_ms, p.rps, p.p50_us, p.p95_us, p.p99_us
            )
        })
        .collect();
    items.join(",\n")
}

fn print_points(title: &str, points: &[LoopPoint]) {
    println!("\n{title}");
    let mut t = Table::new(&["threads", "req/s", "p50 (ms)", "p95 (ms)", "p99 (ms)"]);
    for p in points {
        t.row(&[
            p.threads.to_string(),
            format!("{:.0}", p.rps),
            f3(p.p50_us as f64 / 1e3),
            f3(p.p95_us as f64 / 1e3),
            f3(p.p99_us as f64 / 1e3),
        ]);
    }
    t.print();
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    banner(
        "PR6",
        "MVCC snapshot reads execute concurrently on the worker pool — a \
         read-heavy mix scales without a facade lock, and a writer running \
         the whole time costs readers no correctness and no rejections",
    );

    let (corpus_cfg, thread_counts, per_thread): (CorpusConfig, &[usize], usize) = if check {
        (CorpusConfig::tiny(11), &[1, 2], 32)
    } else {
        (CorpusConfig::default(), &[1, 2, 4, 8], 200)
    };

    // Seed: ingest and materialize the cities table once, so both phases
    // measure serving traffic, not first-run extraction.
    let corpus = Corpus::generate(&corpus_cfg);
    let mut quarry = Quarry::new(QuarryConfig::default()).unwrap();
    quarry.ingest(corpus.docs.clone());
    let stats = quarry.run_pipeline(PIPELINE).unwrap();
    println!("corpus: {} docs -> {} rows in cities\n", corpus.docs.len(), stats.rows_stored);

    let server = Server::start(
        quarry,
        "127.0.0.1:0",
        ServeConfig { workers: 16, max_in_flight: 64, ..ServeConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();

    // Phase 1: pure reads at growing client counts.
    let read_points: Vec<LoopPoint> =
        thread_counts.iter().map(|&n| read_loop(addr, n, per_thread)).collect();
    print_points("read-only closed loop", &read_points);
    for p in &read_points {
        assert_eq!(p.ok, p.requests, "lost reads at {} threads", p.threads);
        assert!(p.p50_us > 0, "zero-latency measurement at {} threads", p.threads);
    }

    // Phase 2: the same read mix with a writer live the entire time.
    let max_threads = *thread_counts.last().unwrap();
    let (under_writes, pipelines_landed) = reads_under_writes(addr, max_threads, per_thread);
    print_points("reads with a concurrent writer", std::slice::from_ref(&under_writes));
    println!("writer landed {pipelines_landed} pipelines during the read phase");
    assert_eq!(
        under_writes.ok, under_writes.requests,
        "a read failed or was rejected while the writer was live"
    );
    assert!(pipelines_landed >= 1, "the writer never got a pipeline through");

    let mut ctl = Client::connect(addr).unwrap();
    let snap = ctl.stats().unwrap();
    let server_requests = snap.counter("server.requests");
    let server_protocol_errors = snap.counter("server.protocol_errors");
    assert_eq!(server_protocol_errors, 0, "well-formed traffic raised protocol errors");
    ctl.shutdown().unwrap();
    drop(server.join());

    let json = format!(
        "{{\n  \"experiment\": \"pr6_loadgen\",\n  \"mode\": \"{}\",\n  \
         \"requests_per_thread\": {per_thread},\n  \"read_only\": [\n{}\n  ],\n  \
         \"reads_under_writes\": [\n{}\n  ],\n  \
         \"writer\": {{\"pipelines_landed\": {pipelines_landed}}},\n  \
         \"server\": {{\"requests\": {server_requests}, \
         \"protocol_errors\": {server_protocol_errors}}}\n}}\n",
        if check { "check" } else { "full" },
        loop_json(&read_points),
        loop_json(std::slice::from_ref(&under_writes)),
    );
    std::fs::write("BENCH_pr6.json", json).unwrap();
    println!("\nwrote BENCH_pr6.json");
}
