//! E2 — §3.2: automatic IE/II "often will not be 100% accurate"; human
//! intervention repairs it, mass collaboration tolerates noisy users, and
//! reputation weighting beats plain majority when some users are careless.
//!
//! Task: person entity matching over duplicate pages with name variants.
//! Swept: HI budget, crowd size, user error rate, voting scheme, and the
//! task-selection policy ablation (uncertainty sampling vs. random).

use quarry_bench::{banner, f3, Table};
use quarry_corpus::{Corpus, CorpusConfig, NoiseConfig, PersonFact};
use quarry_hi::oracle::panel;
use quarry_hi::{curate, Crowd, CurateConfig, ReputationTracker, SelectionPolicy, UncertainItem};
use quarry_integrate::matcher::{decide, MatchConfig, MatchDecision, Record};
use quarry_integrate::{pairwise_score, Clustering};
use quarry_storage::Value;

fn items(corpus: &Corpus) -> Vec<UncertainItem> {
    let people = &corpus.truth.people;
    let cfg = MatchConfig::default();
    // Name + one weak supporting field: the regime where the automatic
    // matcher genuinely cannot tell "D. Smith" from "Daniel Smith" — the
    // uncertain band the paper routes to people.
    let rec = |id: usize, t: &str, p: &PersonFact| {
        Record::new(
            id,
            [("name", Value::Text(t.to_string())), ("residence", Value::Text(p.residence.clone()))],
        )
    };
    let mut out = Vec::new();
    for i in 0..people.len() {
        for j in i + 1..people.len() {
            let (a, b) = (&people[i], &people[j]);
            let ta = &corpus.docs[a.doc.index()].title;
            let tb = &corpus.docs[b.doc.index()].title;
            let (d, score) = decide(&rec(i, ta, a), &rec(j, tb, b), &cfg);
            out.push(UncertainItem {
                id: out.len(),
                prompt_left: ta.clone(),
                prompt_right: tb.clone(),
                auto_decision: d == MatchDecision::Match,
                auto_score: score,
                truth: a.entity == b.entity,
            });
        }
    }
    out
}

fn er_f1(corpus: &Corpus, decisions: &[bool]) -> f64 {
    let n = corpus.truth.people.len();
    let mut matched = Vec::new();
    let mut k = 0;
    for i in 0..n {
        for j in i + 1..n {
            if decisions[k] {
                matched.push((i, j));
            }
            k += 1;
        }
    }
    let truth_pairs = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .filter(|&(i, j)| corpus.truth.people[i].entity == corpus.truth.people[j].entity);
    let predicted = Clustering::from_pairs(n, matched);
    let truth = Clustering::from_pairs(n, truth_pairs);
    pairwise_score(&predicted, &truth).f1
}

fn main() {
    banner(
        "E2 HI accuracy",
        "automatic IE/II is imperfect; HI budget buys accuracy; crowds + reputation \
         tolerate noisy users (§3.2)",
    );
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 2,
        n_people: 90,
        duplicate_rate: 0.5,
        noise: NoiseConfig { name_variant: 1.0, ..NoiseConfig::default() },
        ..CorpusConfig::default()
    });
    let its = items(&corpus);
    let auto: Vec<bool> = its.iter().map(|i| i.auto_decision).collect();
    let f1_auto = er_f1(&corpus, &auto);
    let uncertain = its.iter().filter(|i| (0.55..0.8).contains(&i.auto_score)).count();
    println!(
        "pairs: {}   uncertain band: {}   automatic pairwise F1: {:.3}\n",
        its.len(),
        uncertain,
        f1_auto
    );

    // --- Sweep 1: budget × selection policy (5 reliable users, 5 votes). --
    // On this task the matcher's surviving errors are *confident* false
    // matches (ambiguous "D. Smith"-style initials with coincidental field
    // agreement), so verifying positives first pays off fastest — the
    // policy comparison is the ablation DESIGN.md calls for.
    let reviewable = its.iter().filter(|i| i.auto_score >= 0.55).count();
    let mut t =
        Table::new(&["budget (questions)", "random", "uncertainty-first", "verify-positives"]);
    for frac in [0.0, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let budget = ((reviewable as f64 * frac) as u32) * 5;
        let mut cells = vec![format!("{}", budget / 5)];
        for policy in [
            SelectionPolicy::Random,
            SelectionPolicy::UncertaintyFirst,
            SelectionPolicy::HighestScoreFirst,
        ] {
            let mut crowd = Crowd::new(panel(5, &[0.05], 11));
            let report = curate(
                &its,
                &mut crowd,
                CurateConfig { budget, votes_per_question: 5, policy, reputation: None },
            );
            cells.push(f3(er_f1(&corpus, &report.decisions)));
        }
        t.row(&cells);
    }
    println!("F1 vs HI budget (votes = 5, user error = 5%):");
    t.print();

    // --- Sweep 2: crowd size × user error (full budget, majority). --------
    let mut t = Table::new(&["votes", "error 5%", "error 20%", "error 40%"]);
    for votes in [1usize, 3, 5, 9] {
        let mut cells = vec![votes.to_string()];
        for err in [0.05, 0.2, 0.4] {
            let mut crowd = Crowd::new(panel(votes.max(1), &[err], 23));
            let report = curate(
                &its,
                &mut crowd,
                CurateConfig {
                    budget: (reviewable * votes) as u32,
                    votes_per_question: votes,
                    policy: SelectionPolicy::HighestScoreFirst,
                    reputation: None,
                },
            );
            cells.push(f3(er_f1(&corpus, &report.decisions)));
        }
        t.row(&cells);
    }
    println!(
        "\nF1 vs crowd size and user error (budget covers all positives + the uncertain band):"
    );
    t.print();

    // --- Sweep 3: majority vs reputation with a mixed crowd. ---------------
    println!("\nmixed crowd (2 good @5%, 3 careless @45% error), 5 votes, full budget:");
    let rates = [0.05, 0.45, 0.45, 0.05, 0.45];
    let mut t = Table::new(&["voting", "F1", "overrides"]);
    for (label, rep) in
        [("plain majority", None), ("reputation-weighted", Some(ReputationTracker::new()))]
    {
        let mut crowd = Crowd::new(panel(5, &rates, 31));
        // Reputation warm-up on gold questions, as the user layer would.
        let mut rep = rep;
        if let Some(tracker) = rep.as_mut() {
            for g in 0..200 {
                let q = quarry_hi::Question::verify_match(1_000_000 + g, "l", "r", g % 2 == 0);
                let out = crowd.ask_majority(&q, 5);
                Crowd::debrief(&out, q.truth, tracker);
            }
        }
        let report = curate(
            &its,
            &mut crowd,
            CurateConfig {
                budget: (reviewable * 5) as u32,
                votes_per_question: 5,
                policy: SelectionPolicy::HighestScoreFirst,
                reputation: rep,
            },
        );
        t.row(&[label.into(), f3(er_f1(&corpus, &report.decisions)), report.overrides.to_string()]);
    }
    t.print();
    println!(
        "\nexpected shape: F1 rises with budget under the policy that reviews where the\n\
         matcher's errors actually live (confident positives here); larger crowds absorb\n\
         higher user error; reputation weighting beats plain majority on mixed crowds."
    );
}
