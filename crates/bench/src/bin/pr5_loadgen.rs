//! PR5 — serving-layer load generator: closed-loop throughput and tail
//! latency over the wire, plus a deliberately capped run that measures
//! admission-control rejections.
//!
//! N client threads each drive M requests back-to-back (closed loop)
//! against an in-process `quarry_serve::Server` over loopback TCP; the
//! request mix cycles structured queries (exercising the result cache)
//! with keyword searches. Latency is measured client-side per request and
//! reported as p50/p95/p99 alongside aggregate throughput for 1, 2, 4,
//! and 8 client threads. A second phase reruns with `max_in_flight = 1`
//! and concurrent pipeline requests, counting the explicit `Overloaded`
//! rejections that bounded admission produces instead of queueing.
//!
//! Writes `BENCH_pr5.json`. `--check` runs a fast small-size variant for
//! CI smoke testing; both modes assert that every non-rejected request
//! succeeded and that the capped phase saw at least one rejection.

use quarry_bench::{banner, f3, Table};
use quarry_core::{Quarry, QuarryConfig};
use quarry_corpus::{Corpus, CorpusConfig};
use quarry_query::engine::{AggFn, Predicate, Query};
use quarry_serve::{Client, ClientError, ServeConfig, Server};
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const PIPELINE: &str = r#"
PIPELINE cities FROM corpus
EXTRACT infobox, rules
WHERE attribute IN ("name", "state", "population", "founded")
RESOLVE BY name
STORE INTO cities KEY name
"#;

fn queries() -> Vec<Query> {
    vec![
        Query::scan("cities").aggregate(None, AggFn::Count, "name"),
        Query::scan("cities")
            .filter(vec![Predicate::Eq("state".into(), "Wisconsin".into())])
            .project(&["name", "population"]),
        Query::scan("cities").sort("population", true, Some(10)).project(&["name"]),
        Query::scan("cities").aggregate(Some("state"), AggFn::Max, "population"),
    ]
}

/// `q`-th percentile (nearest-rank on the sorted sample), in µs.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct LoopPoint {
    threads: usize,
    requests: usize,
    ok: usize,
    overloaded: usize,
    wall_ms: f64,
    rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

/// Closed loop: `threads` clients each fire `per_thread` requests
/// back-to-back; the next request leaves only when the previous reply
/// lands. Per-request latency is wall time around one call.
fn closed_loop(addr: SocketAddr, threads: usize, per_thread: usize) -> LoopPoint {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let qs = queries();
            let mut c = Client::connect_with(addr, Duration::from_secs(60)).unwrap();
            let mut lat = Vec::with_capacity(per_thread);
            let mut overloaded = 0usize;
            barrier.wait();
            for i in 0..per_thread {
                let start = Instant::now();
                // Mix: four structured queries, every fifth a keyword hit.
                let outcome = if i % 5 == 4 {
                    c.keyword("population Madison", 5).map(|_| ())
                } else {
                    c.query(&qs[(t + i) % qs.len()]).map(|_| ())
                };
                match outcome {
                    Ok(()) => lat.push(start.elapsed().as_micros() as u64),
                    Err(ClientError::Overloaded) => overloaded += 1,
                    Err(e) => panic!("loadgen request failed: {e}"),
                }
            }
            (lat, overloaded)
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut all = Vec::with_capacity(threads * per_thread);
    let mut overloaded = 0;
    for h in handles {
        let (lat, over) = h.join().unwrap();
        all.extend(lat);
        overloaded += over;
    }
    let wall = start.elapsed();
    all.sort_unstable();
    let requests = threads * per_thread;
    LoopPoint {
        threads,
        requests,
        ok: all.len(),
        overloaded,
        wall_ms: wall.as_secs_f64() * 1e3,
        rps: all.len() as f64 / wall.as_secs_f64(),
        p50_us: percentile(&all, 0.50),
        p95_us: percentile(&all, 0.95),
        p99_us: percentile(&all, 0.99),
    }
}

/// Capped phase: `max_in_flight = 1` while `threads` clients fire
/// millisecond-scale pipeline requests concurrently, so admission
/// control must reject overlapping work explicitly.
fn overload_phase(addr: SocketAddr, threads: usize, per_thread: usize) -> (usize, usize) {
    let barrier = Arc::new(Barrier::new(threads));
    let mut handles = Vec::with_capacity(threads);
    for _ in 0..threads {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect_with(addr, Duration::from_secs(60)).unwrap();
            let mut ok = 0usize;
            let mut overloaded = 0usize;
            barrier.wait();
            for _ in 0..per_thread {
                match c.qdl(PIPELINE) {
                    Ok(_) => ok += 1,
                    Err(ClientError::Overloaded) => overloaded += 1,
                    Err(e) => panic!("overload phase request failed: {e}"),
                }
            }
            (ok, overloaded)
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .fold((0, 0), |(a, b), (ok, over)| (a + ok, b + over))
}

fn write_json(
    path: &str,
    mode: &str,
    per_thread: usize,
    points: &[LoopPoint],
    overload: (usize, usize, usize, usize),
    server_requests: u64,
    server_protocol_errors: u64,
) {
    let loop_items: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"threads\": {}, \"requests\": {}, \"ok\": {}, \"overloaded\": {}, \
                 \"wall_ms\": {:.2}, \"throughput_rps\": {:.1}, \"p50_us\": {}, \
                 \"p95_us\": {}, \"p99_us\": {}}}",
                p.threads,
                p.requests,
                p.ok,
                p.overloaded,
                p.wall_ms,
                p.rps,
                p.p50_us,
                p.p95_us,
                p.p99_us
            )
        })
        .collect();
    let (o_threads, o_requests, o_ok, o_rejected) = overload;
    let json = format!(
        "{{\n  \"experiment\": \"pr5_loadgen\",\n  \"mode\": \"{mode}\",\n  \
         \"requests_per_thread\": {per_thread},\n  \"closed_loop\": [\n{}\n  ],\n  \
         \"overload\": {{\"max_in_flight\": 1, \"threads\": {o_threads}, \
         \"requests\": {o_requests}, \"ok\": {o_ok}, \"rejected_overloaded\": {o_rejected}}},\n  \
         \"server\": {{\"requests\": {server_requests}, \
         \"protocol_errors\": {server_protocol_errors}}}\n}}\n",
        loop_items.join(",\n"),
    );
    std::fs::write(path, json).unwrap();
    println!("\nwrote {path}");
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    banner(
        "PR5",
        "a bounded-admission TCP server keeps tail latency stable as client \
         concurrency grows, and under a deliberate in-flight cap it rejects \
         overload explicitly instead of queueing",
    );

    let (corpus_cfg, thread_counts, per_thread, overload_threads, overload_per_thread): (
        CorpusConfig,
        &[usize],
        usize,
        usize,
        usize,
    ) = if check {
        (CorpusConfig::tiny(7), &[1, 2], 25, 4, 6)
    } else {
        (CorpusConfig::default(), &[1, 2, 4, 8], 200, 8, 12)
    };

    // Seed the system: ingest the corpus and materialize the cities table
    // once, so the serving phases measure query traffic, not first-run
    // extraction.
    let corpus = Corpus::generate(&corpus_cfg);
    let mut quarry = Quarry::new(QuarryConfig::default()).unwrap();
    quarry.ingest(corpus.docs.clone());
    let stats = quarry.run_pipeline(PIPELINE).unwrap();
    println!("corpus: {} docs -> {} rows in cities\n", corpus.docs.len(), stats.rows_stored);

    // Phase 1: closed-loop throughput/latency at growing client counts.
    let server = Server::start(
        quarry,
        "127.0.0.1:0",
        ServeConfig { workers: 16, max_in_flight: 64, ..ServeConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();
    let points: Vec<LoopPoint> =
        thread_counts.iter().map(|&n| closed_loop(addr, n, per_thread)).collect();

    let mut t = Table::new(&["threads", "req/s", "p50 (ms)", "p95 (ms)", "p99 (ms)", "rejected"]);
    for p in &points {
        t.row(&[
            p.threads.to_string(),
            format!("{:.0}", p.rps),
            f3(p.p50_us as f64 / 1e3),
            f3(p.p95_us as f64 / 1e3),
            f3(p.p99_us as f64 / 1e3),
            p.overloaded.to_string(),
        ]);
    }
    t.print();
    for p in &points {
        assert_eq!(p.ok + p.overloaded, p.requests, "lost requests at {} threads", p.threads);
        assert!(p.p50_us > 0, "zero-latency measurement at {} threads", p.threads);
    }

    let mut ctl = Client::connect(addr).unwrap();
    ctl.shutdown().unwrap();
    let quarry = server.join();

    // Phase 2: cap admission at one in-flight request and hammer it with
    // concurrent pipelines; bounded admission must shed load explicitly.
    let server = Server::start(
        quarry,
        "127.0.0.1:0",
        ServeConfig { workers: 16, max_in_flight: 1, ..ServeConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();
    let (ok, rejected) = overload_phase(addr, overload_threads, overload_per_thread);
    let overload_requests = overload_threads * overload_per_thread;
    println!(
        "\noverload (max_in_flight=1, {overload_threads} threads): \
         {ok} served, {rejected} rejected Overloaded"
    );
    assert_eq!(ok + rejected, overload_requests, "lost requests in overload phase");
    assert!(rejected >= 1, "capped admission produced no Overloaded rejections");
    assert!(ok >= 1, "capped admission served nothing at all");

    let mut ctl = Client::connect(addr).unwrap();
    let snap = ctl.stats().unwrap();
    let server_requests = snap.counter("server.requests");
    let server_protocol_errors = snap.counter("server.protocol_errors");
    assert_eq!(server_protocol_errors, 0, "well-formed traffic raised protocol errors");
    ctl.shutdown().unwrap();
    drop(server.join());

    write_json(
        "BENCH_pr5.json",
        if check { "check" } else { "full" },
        per_thread,
        &points,
        (overload_threads, overload_requests, ok, rejected),
        server_requests,
        server_protocol_errors,
    );
}
