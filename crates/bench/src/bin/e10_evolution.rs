//! E10 — §4 Part IV: the schema "will evolve over time" under incremental
//! generation, so migration must be correct and affordable.
//!
//! Measures migration wall time for evolution sequences over growing
//! tables, and verifies lossless round-trips (split → merge returns the
//! original rows).

use quarry_bench::{banner, f1, timed, Table};
use quarry_schema::{EvolutionOp, SchemaRegistry, VersionId};
use quarry_storage::{Column, DataType, Database, TableSchema, Value};

fn base_schema() -> TableSchema {
    TableSchema::new(
        "cities",
        vec![
            Column::new("name", DataType::Text),
            Column::new("population", DataType::Int),
            Column::nullable("location", DataType::Text),
        ],
        &["name"],
        &[],
    )
    .unwrap()
}

fn seed_rows(n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| {
            vec![
                Value::Text(format!("city{i}")),
                Value::Int(1000 + i as i64),
                Value::Text(format!("city{i}, State{}", i % 20)),
            ]
        })
        .collect()
}

fn evolution_sequence() -> Vec<EvolutionOp> {
    vec![
        EvolutionOp::AddColumn {
            column: Column::new("founded", DataType::Int),
            default: Value::Int(1900),
        },
        EvolutionOp::RenameColumn { from: "population".into(), to: "residents".into() },
        EvolutionOp::RetypeColumn { name: "residents".into(), to: DataType::Float },
        EvolutionOp::SplitColumn {
            from: "location".into(),
            delimiter: ",".into(),
            into: ("city_part".into(), "state_part".into()),
        },
        EvolutionOp::MergeColumns {
            from: ("city_part".into(), "state_part".into()),
            delimiter: ", ".into(),
            into: "location".into(),
        },
    ]
}

fn main() {
    banner(
        "E10 schema evolution",
        "\"the schema will evolve over time. Hence, Part IV will likely have to deal \
         with schema evolution challenges\" (§4)",
    );
    let ops = evolution_sequence();
    println!("evolution sequence: {} ops (add, rename, retype, split, merge)\n", ops.len());

    let mut table = Table::new(&["rows", "register+evolve ms", "migrate ms", "rows/ms"]);
    for n in [1_000usize, 10_000, 50_000] {
        let rows = seed_rows(n);
        let db = Database::in_memory();
        db.create_table(base_schema()).unwrap();
        {
            let tx = db.begin();
            for r in &rows {
                db.insert(tx, "cities", r.clone()).unwrap();
            }
            db.commit(tx).unwrap();
        }
        let (registry, ms_reg) = timed(|| {
            let mut reg = SchemaRegistry::new();
            reg.register(base_schema()).unwrap();
            for op in &ops {
                reg.evolve("cities", op.clone()).unwrap();
            }
            reg
        });
        let (_, ms_mig) = timed(|| registry.migrate_database(&db, "cities", VersionId(0)).unwrap());
        table.row(&[n.to_string(), f1(ms_reg), f1(ms_mig), f1(n as f64 / ms_mig.max(0.001))]);

        // Round-trip check: split+merge returned the original location text.
        let migrated = db.scan_autocommit("cities").unwrap();
        let schema = db.schema("cities").unwrap();
        let li = schema.column_index("location").unwrap();
        let ni = schema.column_index("name").unwrap();
        for row in migrated.iter().take(100) {
            let name = row[ni].to_string();
            let i: usize = name.trim_start_matches("city").parse().unwrap();
            assert_eq!(
                row[li],
                Value::Text(format!("city{i}, State{}", i % 20)),
                "split→merge must be lossless"
            );
        }
    }
    table.print();
    println!("\nexpected shape: migration cost linear in table size; evolution bookkeeping\nitself constant; split→merge round-trips byte-identical (asserted).");
}
