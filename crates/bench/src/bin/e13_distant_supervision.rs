//! E13 (extension) — structure teaching the system to find more structure.
//!
//! The architecture keeps extracted structure and raw text side by side;
//! their redundancy is free training data. Wherever an infobox value
//! reappears in the page's prose, that span auto-labels a training example
//! — distant supervision. The payoff: extraction from pages that have *no
//! infobox at all*, where the rule library's high-precision operator is
//! blind.
//!
//! Protocol: strip the infobox from a held-out fraction of city pages;
//! compare population-recall on those bare pages for (a) infobox extractor
//! (cannot fire), (b) hand-written prose rules, (c) the distantly
//! supervised classifier trained on the remaining pages.

use quarry_bench::{banner, f3, Table};
use quarry_corpus::{Corpus, CorpusConfig, Document, NoiseConfig};
use quarry_extract::distant::DistantExtractor;
use quarry_extract::rules::{self, standard_rules};
use quarry_extract::{infobox, Extraction};
use quarry_storage::Value;

fn strip_infobox(doc: &Document) -> Document {
    let end = infobox::find_block(&doc.text).map(|b| b.span.end).unwrap_or(0);
    Document {
        id: doc.id,
        title: doc.title.clone(),
        text: doc.text[end..].trim_start().to_string(),
        kind: doc.kind,
    }
}

fn main() {
    banner(
        "E13 distant supervision (extension)",
        "the blueprint keeps intermediate structure around \"for optimization \
         purposes\" (§4) — here it bootstraps new extractors with zero human labels",
    );
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 13,
        n_cities: 300,
        noise: NoiseConfig::default(),
        ..CorpusConfig::default()
    });
    // Held-out: every 3rd city page loses its infobox.
    let holdout: Vec<usize> = (0..corpus.truth.cities.len()).step_by(3).collect();
    let train_docs: Vec<Document> = corpus
        .docs
        .iter()
        .enumerate()
        .filter(|(i, _)| !holdout.contains(i))
        .map(|(_, d)| d.clone())
        .collect();
    println!(
        "training pages: {}   held-out infobox-free pages: {}\n",
        train_docs.len(),
        holdout.len()
    );

    let distant = DistantExtractor::train(&train_docs, "population", 0.8);
    println!(
        "distant extractor trained from {} auto-labeled pages (no human labels)\n",
        distant.training_docs
    );
    let prose = standard_rules();

    let recall = |extract: &dyn Fn(&Document) -> Vec<Extraction>| -> (f64, f64) {
        let mut tp = 0usize;
        let mut fp = 0usize;
        for &i in &holdout {
            let city = &corpus.truth.cities[i];
            let bare = strip_infobox(&corpus.docs[city.doc.index()]);
            for e in extract(&bare) {
                if e.attribute != "population" {
                    continue;
                }
                if e.value == Value::Int(city.population as i64) {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        (
            tp as f64 / holdout.len() as f64,
            if tp + fp == 0 { 1.0 } else { tp as f64 / (tp + fp) as f64 },
        )
    };

    let mut t = Table::new(&["extractor", "recall (bare pages)", "precision"]);
    let (r, p) = recall(&|d| infobox::extract(d));
    t.row(&["infobox parser".into(), f3(r), f3(p)]);
    let (r, p) = recall(&|d| rules::extract(d, &prose));
    t.row(&["hand-written prose rules".into(), f3(r), f3(p)]);
    let (r, p) = recall(&|d| distant.extract(d));
    t.row(&["distant supervision (0 labels)".into(), f3(r), f3(p)]);
    t.print();

    println!(
        "\nexpected shape: infobox parser blind on bare pages; the learned extractor\n\
         matches the hand-written rules' recall at zero labeling cost — structure\n\
         begetting structure."
    );
}
