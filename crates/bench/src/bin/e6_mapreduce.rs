//! E6 — §4 physical layer: IE/II are computation-intensive, so the
//! blueprint runs them as "Map-Reduce-like processes" on a cluster, which
//! must also survive worker failures by re-execution.
//!
//! The job: full IE over every document, reduced to per-attribute counts.
//! Swept: worker count (NOTE: this machine's core count bounds real
//! speedup — on a single-CPU host the worker sweep shows scheduling
//! overhead, not speedup; the fault-injection half is hardware-independent)
//! and injected worker-failure rates, checking exactness throughout.

use quarry_bench::{banner, f1, timed, Table};
use quarry_cluster::mapreduce::{run, FaultPlan, JobConfig};
use quarry_corpus::{Corpus, CorpusConfig};
use quarry_extract::{pipeline::ExtractorSet, Extraction};

fn main() {
    banner(
        "E6 MapReduce extraction",
        "\"we need parallel processing in the physical layer ... Map-Reduce-like \
         processes\" (§4), with re-execution masking worker failures",
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host parallelism: {cores} core(s)\n");

    let corpus =
        Corpus::generate(&CorpusConfig { seed: 6, n_cities: 150, ..CorpusConfig::default() });
    let docs = &corpus.docs;
    let mapper = |doc: &quarry_corpus::Document| -> Vec<(String, usize)> {
        let set = ExtractorSet::standard();
        set.extract_doc(doc).into_iter().map(|e: Extraction| (e.attribute, 1)).collect()
    };
    let reducer =
        |attr: &String, counts: Vec<usize>| vec![(attr.clone(), counts.iter().sum::<usize>())];

    // --- Worker sweep, no faults. ------------------------------------------
    let mut table = Table::new(&["workers", "wall ms", "map attempts", "distinct attrs"]);
    let mut reference: Option<Vec<(String, usize)>> = None;
    for workers in [1usize, 2, 4, 8] {
        let cfg = JobConfig { workers, partitions: 0, faults: FaultPlan::none() };
        let ((out, stats), ms) = timed(|| run(docs, mapper, reducer, &cfg));
        match &reference {
            None => reference = Some(out.clone()),
            Some(r) => assert_eq!(r, &out, "worker count changed the answer!"),
        }
        table.row(&[
            workers.to_string(),
            f1(ms),
            stats.map_attempts.to_string(),
            out.len().to_string(),
        ]);
    }
    println!("worker sweep (exact same output required at every width):");
    table.print();

    // --- Fault injection sweep. --------------------------------------------
    let mut table = Table::new(&["failure rate", "wall ms", "attempts", "failures", "exact"]);
    for rate in [0.0, 0.1, 0.3, 0.5] {
        let cfg = JobConfig { workers: 4, partitions: 4, faults: FaultPlan::rate(rate, 66) };
        let ((out, stats), ms) = timed(|| run(docs, mapper, reducer, &cfg));
        let exact = Some(&out) == reference.as_ref();
        table.row(&[
            format!("{:.0}%", rate * 100.0),
            f1(ms),
            stats.map_attempts.to_string(),
            stats.map_failures.to_string(),
            exact.to_string(),
        ]);
        assert!(exact, "failures must not change the answer");
    }
    println!("\nfault injection (4 workers):");
    table.print();
    println!(
        "\nexpected shape: attempts = tasks + failures; re-execution keeps every output\n\
         byte-identical; wall time grows roughly with the failure rate. On multi-core\n\
         hosts the worker sweep also shows near-linear speedup until the core count."
    );
}
