//! E12 — §4 Part III: "transaction management and crash recovery" for the
//! data-generation process.
//!
//! Protocol: write committed batches to a WAL-backed store, then simulate a
//! crash by truncating the log at an arbitrary byte offset (a torn write),
//! recover, and check the committed-prefix invariant: every transaction
//! whose commit record survived is fully present; everything else is fully
//! absent. Also: recovery time vs. log size.

use quarry_bench::{banner, f1, timed, Table};
use quarry_storage::{Column, DataType, Database, TableSchema, Value, Wal};
use std::path::PathBuf;

fn tmpwal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("quarry-e12");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{tag}-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn schema() -> TableSchema {
    TableSchema::new(
        "facts",
        vec![Column::new("k", DataType::Int), Column::new("batch", DataType::Int)],
        &["k"],
        &[],
    )
    .unwrap()
}

fn main() {
    banner(
        "E12 crash recovery",
        "Part III \"handles transaction management and crash recovery\" (§4)",
    );

    // --- (a) random truncation points preserve the committed prefix. -------
    let p = tmpwal("torn");
    {
        let db = Database::open(&p).unwrap();
        db.create_table(schema()).unwrap();
        for batch in 0..30i64 {
            let tx = db.begin();
            for i in 0..20i64 {
                db.insert(tx, "facts", vec![Value::Int(batch * 20 + i), Value::Int(batch)])
                    .unwrap();
            }
            db.commit(tx).unwrap();
        }
    }
    let full = std::fs::read(&p).unwrap();
    println!("(a) committed-prefix invariant under {} random truncations", 25);
    let mut checked = 0;
    for t in 0..25 {
        // Deterministic pseudo-random cut points across the whole log.
        let cut = (t * 982_451_653usize + 12_345) % full.len();
        std::fs::write(&p, &full[..cut]).unwrap();
        let db = Database::open(&p).unwrap();
        let rows = db.scan_autocommit("facts").unwrap();
        // Batch integrity: each batch is all-or-nothing.
        let mut per_batch = std::collections::BTreeMap::new();
        for r in &rows {
            *per_batch.entry(r[1].to_string()).or_insert(0usize) += 1;
        }
        for (batch, count) in &per_batch {
            assert_eq!(*count, 20, "batch {batch} partially recovered at cut {cut}");
        }
        // Prefix property: recovered batches are a prefix 0..m.
        let m = per_batch.len();
        for b in 0..m {
            assert!(per_batch.contains_key(&b.to_string()), "gap at batch {b}, cut {cut}");
        }
        checked += 1;
    }
    println!("    {checked}/25 truncation points recovered to an exact committed prefix\n");
    std::fs::write(&p, &full).unwrap();

    // --- (b) recovery time vs. log size. ------------------------------------
    println!("(b) recovery time vs. log length");
    let mut table = Table::new(&["committed rows", "log bytes", "recovery ms", "rows recovered"]);
    for rows_n in [2_000usize, 10_000, 50_000] {
        let p = tmpwal(&format!("size{rows_n}"));
        {
            let db = Database::open(&p).unwrap();
            db.create_table(schema()).unwrap();
            let tx = db.begin();
            for i in 0..rows_n {
                db.insert(tx, "facts", vec![Value::Int(i as i64), Value::Int(0)]).unwrap();
            }
            db.commit(tx).unwrap();
        }
        let log_bytes = std::fs::metadata(&p).unwrap().len();
        let (db, ms) = timed(|| Database::open(&p).unwrap());
        table.row(&[
            rows_n.to_string(),
            log_bytes.to_string(),
            f1(ms),
            db.row_count("facts").unwrap().to_string(),
        ]);
        let _ = std::fs::remove_file(&p);
    }
    table.print();

    // --- (b2) checkpointing bounds recovery by live size, not history. ------
    println!("\n(b2) recovery after heavy update history, with and without checkpoint");
    let mut table = Table::new(&["history", "log bytes", "recovery ms"]);
    for checkpointed in [false, true] {
        let p = tmpwal(&format!("ckpt{checkpointed}"));
        {
            let db = Database::open(&p).unwrap();
            db.create_table(schema()).unwrap();
            let tx = db.begin();
            for i in 0..1_000i64 {
                db.insert(tx, "facts", vec![Value::Int(i), Value::Int(0)]).unwrap();
            }
            db.commit(tx).unwrap();
            // 20 full-table update passes: history ≫ live data.
            for pass in 1..=20i64 {
                let tx = db.begin();
                for i in 0..1_000i64 {
                    db.update(tx, "facts", &[Value::Int(i)], vec![Value::Int(i), Value::Int(pass)])
                        .unwrap();
                }
                db.commit(tx).unwrap();
            }
            if checkpointed {
                db.checkpoint().unwrap();
            }
        }
        let log_bytes = std::fs::metadata(&p).unwrap().len();
        let (db, ms) = timed(|| Database::open(&p).unwrap());
        assert_eq!(db.row_count("facts").unwrap(), 1_000);
        table.row(&[
            if checkpointed { "21k ops + checkpoint" } else { "21k ops, no checkpoint" }.into(),
            log_bytes.to_string(),
            f1(ms),
        ]);
        let _ = std::fs::remove_file(&p);
    }
    table.print();

    // --- (c) WAL-level torn-tail handling. ----------------------------------
    let records = Wal::replay(&p).unwrap();
    println!(
        "\n(c) WAL replay of the intact log: {} clean records, {} bytes",
        records.len(),
        std::fs::metadata(&p).unwrap().len()
    );
    let _ = std::fs::remove_file(&p);
    println!("\nexpected shape: every truncation recovers a clean batch prefix (asserted);\nrecovery time linear in log length.");
}
