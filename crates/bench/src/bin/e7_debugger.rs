//! E7 — §4 Part VI: the semantic debugger learns application semantics and
//! flags extractions that are "not in sync" with them (the 135 °F example).
//!
//! Corruption (out-of-range values, type intruders, swapped values
//! breaking FDs) is injected into a city-facts table at known rates; the
//! detector's precision/recall are scored against the injection log.

use quarry_bench::{banner, f3, Table};
use quarry_corpus::corruption::corrupt_table;
use quarry_corpus::{Corpus, CorpusConfig, CorruptionConfig};
use quarry_debugger::{LearnConfig, SemanticDebugger};

fn city_rows(corpus: &Corpus) -> (Vec<String>, Vec<Vec<String>>) {
    let columns: Vec<String> = vec![
        "name".into(),
        "state".into(),
        "population".into(),
        "founded".into(),
        "july_temp".into(),
    ];
    let rows = corpus
        .truth
        .cities
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.state.clone(),
                c.population.to_string(),
                c.founded.to_string(),
                c.monthly_temp_f[6].to_string(),
            ]
        })
        .collect();
    (columns, rows)
}

fn main() {
    banner(
        "E7 semantic debugger",
        "\"if this module has learned that the monthly temperature of a city cannot \
         exceed 130 degrees, then it can flag an extracted temperature of 135 as \
         suspicious\" (§4 Part VI)",
    );
    // Train on one (clean) corpus, test on corrupted tuples from another.
    let train =
        Corpus::generate(&CorpusConfig { seed: 70, n_cities: 300, ..CorpusConfig::default() });
    let test =
        Corpus::generate(&CorpusConfig { seed: 71, n_cities: 200, ..CorpusConfig::default() });
    let (columns, train_rows) = city_rows(&train);
    let dbg = SemanticDebugger::learn(&columns, &train_rows, &LearnConfig::default());
    println!(
        "learned {} constraints from {} clean rows\n",
        dbg.constraints().len(),
        train_rows.len()
    );

    let col_spec: Vec<(&str, bool)> = vec![
        ("name", false),
        ("state", false),
        ("population", true),
        ("founded", true),
        ("july_temp", true),
    ];
    let mut table = Table::new(&["corruption rate", "injected", "flagged", "precision", "recall"]);
    for rate in [0.01, 0.02, 0.05, 0.1] {
        let (_, mut rows) = city_rows(&test);
        let log = corrupt_table(&mut rows, &col_spec, CorruptionConfig { seed: 7, rate });
        let score = dbg.score(&rows, |r, a| log.is_corrupted(r, a), log.len());
        table.row(&[
            format!("{:.0}%", rate * 100.0),
            log.len().to_string(),
            score.flagged.to_string(),
            f3(score.precision),
            f3(score.recall),
        ]);
    }
    table.print();

    // The paper's literal example.
    let (_, mut one) = city_rows(&test);
    one.truncate(1);
    one[0][4] = "135".to_string();
    let flags = dbg.check(&one);
    println!(
        "\nliteral paper example: july_temp = 135 → {}",
        if flags.iter().any(|f| f.attribute == "july_temp") { "FLAGGED" } else { "missed" }
    );
    println!("\nexpected shape: precision stays high at every rate; recall above ~0.5\n(SwappedValue corruptions are in-domain and partly invisible by design).");
}
