//! PR2 — index-aware physical planning: scan-vs-index latency, result-cache
//! hit/miss latency, and join build-side selection deltas.
//!
//! Prints the usual experiment tables and additionally writes the numbers
//! to `BENCH_pr2.json` (machine-readable, hand-rolled JSON — no formatting
//! dependencies). `--check` runs a fast, small-size variant that asserts
//! planner/full-scan result identity instead of asserting speedups; CI runs
//! that mode as a smoke test.

use quarry_bench::{banner, f3, timed, Table};
use quarry_core::{Quarry, QuarryConfig};
use quarry_query::engine::{Predicate, Query, QueryResult};
use quarry_query::planner::{execute_with, PlannerConfig};
use quarry_storage::{Column, DataType, Database, TableSchema, Value};

/// 1-in-`KEY_SPACE` selectivity for the equality probe (< 1%).
const KEY_SPACE: i64 = 200;

fn items_db(rows: usize) -> Database {
    let db = Database::in_memory();
    db.create_table(
        TableSchema::new(
            "items",
            vec![
                Column::new("id", DataType::Int),
                Column::new("key", DataType::Int),
                Column::new("payload", DataType::Text),
            ],
            &["id"],
            &[],
        )
        .unwrap(),
    )
    .unwrap();
    let tx = db.begin();
    for i in 0..rows as i64 {
        db.insert(
            tx,
            "items",
            vec![
                Value::Int(i),
                Value::Int(i % KEY_SPACE),
                Value::Text(format!("payload for row {i}")),
            ],
        )
        .unwrap();
    }
    db.commit(tx).unwrap();
    db.create_index("items", "key").unwrap();
    db
}

fn probe_query() -> Query {
    Query::scan("items").filter(vec![Predicate::Eq("key".into(), Value::Int(7))])
}

/// Median wall time (ms) of `iters` runs, with the last result returned.
fn median_ms(iters: usize, mut f: impl FnMut() -> QueryResult) -> (QueryResult, f64) {
    let mut times = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let (out, ms) = timed(&mut f);
        times.push(ms);
        last = Some(out);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (last.unwrap(), times[times.len() / 2])
}

struct ScanPoint {
    rows: usize,
    full_ms: f64,
    index_ms: f64,
    speedup: f64,
}

fn scan_vs_index(sizes: &[usize], iters: usize, check: bool) -> Vec<ScanPoint> {
    let q = probe_query();
    let mut points = Vec::new();
    for &rows in sizes {
        let db = items_db(rows);
        let (full_result, full_ms) =
            median_ms(iters, || execute_with(&db, &q, &PlannerConfig::full_scan()).unwrap().0);
        let (index_result, index_ms) =
            median_ms(iters, || execute_with(&db, &q, &PlannerConfig::default()).unwrap().0);
        assert_eq!(index_result, full_result, "index routing changed the answer at {rows} rows");
        if check {
            let expected = (0..rows as i64).filter(|i| i % KEY_SPACE == 7).count();
            assert_eq!(full_result.rows.len(), expected, "probe selectivity drifted");
        }
        points.push(ScanPoint { rows, full_ms, index_ms, speedup: full_ms / index_ms });
    }
    points
}

struct CachePoint {
    miss_ms: f64,
    hit_ms: f64,
    hits: u64,
    misses: u64,
}

fn cache_latency(rows: usize) -> CachePoint {
    let quarry = Quarry::new(QuarryConfig::default()).unwrap();
    quarry
        .db
        .create_table(
            TableSchema::new(
                "items",
                vec![Column::new("id", DataType::Int), Column::new("key", DataType::Int)],
                &["id"],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
    let tx = quarry.db.begin();
    for i in 0..rows as i64 {
        quarry.db.insert(tx, "items", vec![Value::Int(i), Value::Int(i % KEY_SPACE)]).unwrap();
    }
    quarry.db.commit(tx).unwrap();

    let q = probe_query();
    let (cold, miss_ms) = timed(|| quarry.snapshot().query(&q).unwrap());
    let (warm, hit_ms) = timed(|| quarry.snapshot().query(&q).unwrap());
    assert_eq!(warm, cold, "cache hit served a different result");
    let stats = quarry.query_cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1), "expected exactly one miss then one hit");
    CachePoint { miss_ms, hit_ms, hits: stats.hits, misses: stats.misses }
}

struct JoinPoint {
    shape: &'static str,
    fixed_ms: f64,
    selected_ms: f64,
}

fn join_side(big_rows: usize, iters: usize) -> Vec<JoinPoint> {
    let db = items_db(big_rows);
    // `small` is the <1% equality slice of `items`, `big` is unfiltered;
    // the two query orders place the small input on each side of the join.
    let small = probe_query();
    let big = Query::scan("items");
    let shapes: [(&'static str, Query); 2] = [
        ("small_join_big", small.clone().join(big.clone(), "key", "key")),
        ("big_join_small", big.join(small, "key", "key")),
    ];
    let fixed = PlannerConfig { join_side_selection: false, ..PlannerConfig::default() };
    shapes
        .into_iter()
        .map(|(shape, q)| {
            let (fixed_result, fixed_ms) =
                median_ms(iters, || execute_with(&db, &q, &fixed).unwrap().0);
            let (selected_result, selected_ms) =
                median_ms(iters, || execute_with(&db, &q, &PlannerConfig::default()).unwrap().0);
            assert_eq!(selected_result, fixed_result, "build-side choice changed {shape}");
            JoinPoint { shape, fixed_ms, selected_ms }
        })
        .collect()
}

fn write_json(
    path: &str,
    mode: &str,
    scans: &[ScanPoint],
    cache: &CachePoint,
    joins: &[JoinPoint],
) {
    let scan_items: Vec<String> = scans
        .iter()
        .map(|p| {
            format!(
                "    {{\"rows\": {}, \"selectivity\": {:.4}, \"full_scan_ms\": {:.4}, \
                 \"index_ms\": {:.4}, \"speedup\": {:.2}}}",
                p.rows,
                1.0 / KEY_SPACE as f64,
                p.full_ms,
                p.index_ms,
                p.speedup
            )
        })
        .collect();
    let join_items: Vec<String> = joins
        .iter()
        .map(|p| {
            format!(
                "    {{\"shape\": \"{}\", \"fixed_build_ms\": {:.4}, \
                 \"selected_build_ms\": {:.4}, \"speedup\": {:.2}}}",
                p.shape,
                p.fixed_ms,
                p.selected_ms,
                p.fixed_ms / p.selected_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"pr2_planner\",\n  \"mode\": \"{mode}\",\n  \
         \"scan_vs_index\": [\n{}\n  ],\n  \"cache\": {{\"miss_ms\": {:.4}, \
         \"hit_ms\": {:.4}, \"speedup\": {:.2}, \"hits\": {}, \"misses\": {}}},\n  \
         \"join_side\": [\n{}\n  ]\n}}\n",
        scan_items.join(",\n"),
        cache.miss_ms,
        cache.hit_ms,
        cache.miss_ms / cache.hit_ms,
        cache.hits,
        cache.misses,
        join_items.join(",\n"),
    );
    std::fs::write(path, json).unwrap();
    println!("\nwrote {path}");
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    banner(
        "PR2",
        "equality probes on an indexed column beat full scans by growing margins, \
         cache hits cost microseconds, and building the hash join on the smaller \
         side never loses",
    );

    let (sizes, iters, cache_rows, join_rows): (&[usize], usize, usize, usize) = if check {
        (&[500, 2_000], 3, 1_000, 2_000)
    } else {
        (&[1_000, 10_000, 100_000], 9, 10_000, 20_000)
    };

    let scans = scan_vs_index(sizes, iters, check);
    let mut t = Table::new(&["rows", "full scan (ms)", "index (ms)", "speedup"]);
    for p in &scans {
        t.row(&[p.rows.to_string(), f3(p.full_ms), f3(p.index_ms), format!("{:.1}x", p.speedup)]);
    }
    t.print();
    if !check {
        let last = scans.last().unwrap();
        assert!(
            last.speedup >= 10.0,
            "acceptance: expected >=10x at {} rows, measured {:.1}x",
            last.rows,
            last.speedup
        );
    }

    let cache = cache_latency(cache_rows);
    println!(
        "\ncache ({cache_rows} rows): miss {} ms, hit {} ms ({:.1}x)",
        f3(cache.miss_ms),
        f3(cache.hit_ms),
        cache.miss_ms / cache.hit_ms
    );

    let joins = join_side(join_rows, iters);
    let mut jt = Table::new(&["join shape", "fixed build (ms)", "selected build (ms)"]);
    for p in &joins {
        jt.row(&[p.shape.to_string(), f3(p.fixed_ms), f3(p.selected_ms)]);
    }
    println!();
    jt.print();

    write_json("BENCH_pr2.json", if check { "check" } else { "full" }, &scans, &cache, &joins);
}
