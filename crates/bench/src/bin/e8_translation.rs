//! E8 — §3.2 exploitation: guide keyword users to structured queries.
//!
//! For a workload of keyword renditions of known intents, measure whether
//! the translator's ranked candidates contain a query that computes the
//! ground-truth answer (hit@1 / hit@3), as the schema grows from one table
//! to four.

use quarry_bench::{banner, f3, Table};
use quarry_corpus::{Corpus, CorpusConfig, NoiseConfig};
use quarry_query::engine::execute;
use quarry_query::Translator;
use quarry_storage::{Column, DataType, Database, TableSchema, Value};

fn build_db(corpus: &Corpus, tables: usize) -> Database {
    let db = Database::in_memory();
    // Table 1: cities.
    db.create_table(
        TableSchema::new(
            "cities",
            vec![
                Column::new("name", DataType::Text),
                Column::new("state", DataType::Text),
                Column::new("population", DataType::Int),
                Column::new("founded", DataType::Int),
            ],
            &["name"],
            &[],
        )
        .unwrap(),
    )
    .unwrap();
    for c in &corpus.truth.cities {
        db.insert_autocommit(
            "cities",
            vec![
                c.name.as_str().into(),
                c.state.as_str().into(),
                Value::Int(c.population as i64),
                Value::Int(c.founded as i64),
            ],
        )
        .unwrap();
    }
    if tables >= 2 {
        db.create_table(
            TableSchema::new(
                "temps",
                vec![
                    Column::new("city", DataType::Text),
                    Column::new("month", DataType::Text),
                    Column::new("temp", DataType::Int),
                ],
                &["city", "month"],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        let months = [
            "January",
            "February",
            "March",
            "April",
            "May",
            "June",
            "July",
            "August",
            "September",
            "October",
            "November",
            "December",
        ];
        for c in &corpus.truth.cities {
            for (m, t) in c.monthly_temp_f.iter().enumerate() {
                db.insert_autocommit(
                    "temps",
                    vec![c.name.as_str().into(), months[m].into(), Value::Int(*t as i64)],
                )
                .unwrap();
            }
        }
    }
    if tables >= 3 {
        db.create_table(
            TableSchema::new(
                "companies",
                vec![
                    Column::new("name", DataType::Text),
                    Column::new("headquarters", DataType::Text),
                    Column::new("industry", DataType::Text),
                ],
                &["name"],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        for c in &corpus.truth.companies {
            db.insert_autocommit(
                "companies",
                vec![
                    c.name.as_str().into(),
                    c.headquarters.as_str().into(),
                    c.industry.as_str().into(),
                ],
            )
            .unwrap();
        }
    }
    if tables >= 4 {
        db.create_table(
            TableSchema::new(
                "people",
                vec![
                    Column::new("name", DataType::Text),
                    Column::new("employer", DataType::Text),
                    Column::new("residence", DataType::Text),
                ],
                &["name"],
                &[],
            )
            .unwrap(),
        )
        .unwrap();
        for (i, p) in corpus.truth.people.iter().enumerate() {
            let _ = db.insert_autocommit(
                "people",
                vec![
                    format!("{} #{i}", p.name).into(),
                    p.employer.as_str().into(),
                    p.residence.as_str().into(),
                ],
            );
        }
    }
    db
}

/// One intent: keyword text + a checker for the correct answer.
struct Intent {
    keywords: String,
    expect: Box<dyn Fn(&quarry_query::QueryResult) -> bool>,
}

fn intents(corpus: &Corpus) -> Vec<Intent> {
    let mut out = Vec::new();
    for (i, c) in corpus.truth.cities.iter().step_by(5).take(20).enumerate() {
        let pop = Value::Int(c.population as i64);
        // Rotate through phrasings a real user might type: synonyms, filler
        // words, and vaguer attribute references.
        let phrasing = match i % 4 {
            0 => format!("population {}", c.name),
            1 => format!("how many inhabitants does {} have", c.name),
            2 => format!("residents of {}", c.name),
            _ => format!("what is the population of {}", c.name),
        };
        out.push(Intent {
            keywords: phrasing,
            expect: Box::new(move |r| r.rows.iter().flatten().any(|v| *v == pop)),
        });
        let avg: f64 = c.monthly_temp_f.iter().map(|&t| t as f64).sum::<f64>() / 12.0;
        let phrasing = match i % 3 {
            0 => format!("average temp {}", c.name),
            1 => format!("mean temperature in {}", c.name),
            _ => format!("what is the average temperature of {}", c.name),
        };
        out.push(Intent {
            keywords: phrasing,
            expect: Box::new(move |r| {
                r.scalar().and_then(Value::as_f64).is_some_and(|v| (v - avg).abs() < 0.01)
            }),
        });
        let max = Value::Int(*c.monthly_temp_f.iter().max().unwrap() as i64);
        let phrasing = match i % 2 {
            0 => format!("warmest temp {}", c.name),
            _ => format!("highest temperature recorded in {}", c.name),
        };
        out.push(Intent {
            keywords: phrasing,
            expect: Box::new(move |r| r.scalar() == Some(&max)),
        });
        // Founding-year lookup phrased with the alternate label.
        let founded = Value::Int(c.founded as i64);
        out.push(Intent {
            keywords: format!("when was {} established", c.name),
            expect: Box::new(move |r| r.rows.iter().flatten().any(|v| *v == founded)),
        });
    }
    out
}

fn main() {
    banner(
        "E8 keyword → structured translation",
        "\"'guess' and show the user several structured queries ... then ask the user \
         to select the appropriate one\" (§3.2)",
    );
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 8,
        n_cities: 100,
        noise: NoiseConfig::none(),
        ..CorpusConfig::default()
    });
    let mut table = Table::new(&["schema size", "intents", "hit@1", "hit@3"]);
    for tables in [2usize, 3, 4] {
        let db = build_db(&corpus, tables);
        let translator = Translator::from_database(&db);
        let mut hit1 = 0;
        let mut hit3 = 0;
        let workload = intents(&corpus);
        for intent in &workload {
            let candidates = translator.translate(&intent.keywords, 3);
            for (rank, cand) in candidates.iter().enumerate() {
                if let Ok(r) = execute(&db, &cand.query) {
                    if (intent.expect)(&r) {
                        if rank == 0 {
                            hit1 += 1;
                        }
                        hit3 += 1;
                        break;
                    }
                }
            }
        }
        let n = workload.len() as f64;
        table.row(&[
            format!("{tables} tables"),
            workload.len().to_string(),
            f3(hit1 as f64 / n),
            f3(hit3 as f64 / n),
        ]);
    }
    table.print();
    println!("\nexpected shape: hit@3 above hit@1 — showing *several* candidate queries is the\npoint of the interaction; the value index keeps translation stable as the schema grows.");
}
