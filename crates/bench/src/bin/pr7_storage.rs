//! PR7 — paged binary storage benchmark: what the binary WAL codec, the
//! paged checkpoint, and group commit buy over the JSON baseline.
//!
//! Phase A ingests the same deterministic row stream twice — once with the
//! legacy JSON record codec, once with the binary codec — under `Deferred`
//! durability (one final sync), so the measurement isolates encoding cost
//! and log size rather than fsync latency. It asserts the binary path is
//! ≥2x faster and ≥2x smaller on disk, and also reports the paged
//! checkpoint image size for the same data.
//!
//! Phase B measures per-commit latency and fsync counts under each
//! [`DurabilityMode`] — the contract table in `docs/storage.md`, as
//! numbers.
//!
//! Phase C commits from several threads at once under `Full` durability
//! and reports fsyncs per commit: group commit lets one leader's fsync
//! cover a whole batch, so the ratio is ≤ 1 and drops as contention grows.
//!
//! Writes `BENCH_pr7.json`. `--check` runs a small variant for CI smoke
//! (ratios still asserted ≥ 1.2x to catch regressions without flaking on
//! tiny inputs).

use quarry_bench::{banner, f3, Table};
use quarry_storage::{
    Column, DataType, Database, DurabilityMode, FaultBackend, Op, RealBackend, TableSchema, Value,
    WalCodec,
};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};
use std::time::Instant;

fn schema() -> TableSchema {
    TableSchema::new(
        "readings",
        vec![
            Column::new("id", DataType::Int),
            Column::new("station", DataType::Text),
            Column::new("temp_c", DataType::Float),
            Column::new("humidity", DataType::Int),
            Column::new("pressure", DataType::Int),
            Column::new("ok", DataType::Bool),
        ],
        &["id"],
        &["station"],
    )
    .unwrap()
}

/// One extracted structured record: mostly typed scalars plus a short key
/// string — the row shape the final-structure store holds.
fn reading(i: i64) -> Vec<Value> {
    vec![
        Value::Int(i),
        Value::Text(format!("st-{:03}", i % 97)),
        Value::Float((i % 400) as f64 / 10.0 - 20.0),
        Value::Int(30 + i % 60),
        Value::Int(980 + i % 50),
        Value::Bool(i % 7 != 0),
    ]
}

fn tmp(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("quarry-pr7-{label}-{}", std::process::id()))
}

fn cleanup(p: &Path) {
    for ext in ["", "ckpt", "snap-tmp", "tmp"] {
        let q = if ext.is_empty() { p.to_path_buf() } else { p.with_extension(ext) };
        let _ = std::fs::remove_file(q);
    }
}

struct IngestPoint {
    codec: &'static str,
    wall_ms: f64,
    rows_per_s: f64,
    wal_bytes: u64,
    ckpt_bytes: u64,
}

/// Ingest `rows` rows in `batch`-row transactions with the given WAL codec,
/// returning wall time, WAL size, and the paged checkpoint image size.
fn ingest(codec: WalCodec, rows: usize, batch: usize, label: &'static str) -> IngestPoint {
    let p = tmp(&format!("ingest-{label}"));
    cleanup(&p);
    let mut db = Database::open(&p).unwrap();
    db.set_wal_codec(codec);
    db.set_durability(DurabilityMode::Deferred);
    db.create_table(schema()).unwrap();

    let start = Instant::now();
    let mut i = 0i64;
    while (i as usize) < rows {
        let tx = db.begin();
        for _ in 0..batch {
            db.insert(tx, "readings", reading(i)).unwrap();
            i += 1;
        }
        db.commit(tx).unwrap();
    }
    db.sync_wal().unwrap();
    let wall = start.elapsed();

    let wal_bytes = std::fs::metadata(&p).unwrap().len();
    db.checkpoint().unwrap();
    let ckpt_bytes = std::fs::metadata(p.with_extension("ckpt")).unwrap().len();
    assert_eq!(db.row_count("readings").unwrap(), rows);
    drop(db);
    cleanup(&p);
    IngestPoint {
        codec: label,
        wall_ms: wall.as_secs_f64() * 1e3,
        rows_per_s: rows as f64 / wall.as_secs_f64(),
        wal_bytes,
        ckpt_bytes,
    }
}

struct ModePoint {
    mode: &'static str,
    commits: usize,
    mean_us: f64,
    p95_us: u64,
    syncs: usize,
}

/// Per-commit latency and fsync count for one durability mode: `commits`
/// single-row transactions, one at a time.
fn mode_point(mode: DurabilityMode, label: &'static str, commits: usize) -> ModePoint {
    let p = tmp(&format!("mode-{label}"));
    cleanup(&p);
    let rec = FaultBackend::recording(RealBackend);
    let mut db = Database::open_with(Arc::new(rec.clone()), &p).unwrap();
    db.set_durability(mode);
    db.create_table(schema()).unwrap();
    let before: usize = rec.ops().iter().filter(|o| matches!(o, Op::Sync { .. })).count();

    let mut lat = Vec::with_capacity(commits);
    for i in 0..commits as i64 {
        let tx = db.begin();
        db.insert(tx, "readings", reading(i)).unwrap();
        let start = Instant::now();
        db.commit(tx).unwrap();
        lat.push(start.elapsed().as_micros() as u64);
    }
    let syncs = rec.ops().iter().filter(|o| matches!(o, Op::Sync { .. })).count() - before;
    drop(db);
    cleanup(&p);
    lat.sort_unstable();
    ModePoint {
        mode: label,
        commits,
        mean_us: lat.iter().sum::<u64>() as f64 / commits as f64,
        p95_us: lat[(commits - 1) * 95 / 100],
        syncs,
    }
}

struct GroupPoint {
    threads: usize,
    commits: usize,
    syncs: usize,
    syncs_per_commit: f64,
}

/// `threads` threads each land `per_thread` single-row commits under Full
/// durability; group commit batches their fsyncs.
fn group_commit(threads: usize, per_thread: usize) -> GroupPoint {
    let p = tmp(&format!("group-{threads}"));
    cleanup(&p);
    let rec = FaultBackend::recording(RealBackend);
    let mut db = Database::open_with(Arc::new(rec.clone()), &p).unwrap();
    db.set_durability(DurabilityMode::Full);
    db.create_table(schema()).unwrap();
    let before: usize = rec.ops().iter().filter(|o| matches!(o, Op::Sync { .. })).count();

    let db = Arc::new(db);
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = Arc::clone(&db);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..per_thread {
                    let tx = db.begin();
                    db.insert(tx, "readings", reading((t * per_thread + i) as i64)).unwrap();
                    db.commit(tx).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let syncs = rec.ops().iter().filter(|o| matches!(o, Op::Sync { .. })).count() - before;
    let commits = threads * per_thread;
    assert_eq!(db.row_count("readings").unwrap(), commits);
    drop(db);
    cleanup(&p);
    GroupPoint { threads, commits, syncs, syncs_per_commit: syncs as f64 / commits as f64 }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    banner(
        "PR7",
        "fixed-size pages, a binary row/WAL codec, and group commit: the \
         same durable relational engine, at a fraction of the bytes and \
         the fsyncs of the JSON baseline",
    );

    let (rows, batch, commits, min_ratio) =
        if check { (3_000, 100, 100, 1.2) } else { (30_000, 100, 400, 2.0) };

    // Phase A: ingest throughput and on-disk footprint, JSON vs binary.
    let json = ingest(WalCodec::Json, rows, batch, "json");
    let bin = ingest(WalCodec::BinaryV1, rows, batch, "binary");
    let speedup = bin.rows_per_s / json.rows_per_s;
    let shrink = json.wal_bytes as f64 / bin.wal_bytes as f64;
    println!("\ningest: {rows} rows in {batch}-row transactions, deferred durability");
    let mut t = Table::new(&["codec", "rows/s", "wall (ms)", "WAL bytes", "ckpt bytes"]);
    for p in [&json, &bin] {
        t.row(&[
            p.codec.to_string(),
            format!("{:.0}", p.rows_per_s),
            f3(p.wall_ms),
            p.wal_bytes.to_string(),
            p.ckpt_bytes.to_string(),
        ]);
    }
    t.print();
    println!("binary vs json: {speedup:.2}x ingest throughput, {shrink:.2}x smaller WAL");
    assert!(
        speedup >= min_ratio,
        "binary codec must be >= {min_ratio}x faster than JSON (got {speedup:.2}x)"
    );
    assert!(
        shrink >= min_ratio,
        "binary WAL must be >= {min_ratio}x smaller than JSON (got {shrink:.2}x)"
    );

    // Phase B: the durability-mode contract as numbers.
    let modes = [
        mode_point(DurabilityMode::Full, "full", commits),
        mode_point(DurabilityMode::Normal, "normal", commits),
        mode_point(DurabilityMode::Deferred, "deferred", commits),
    ];
    println!("\ncommit latency by durability mode ({commits} single-row commits)");
    let mut t = Table::new(&["mode", "mean (us)", "p95 (us)", "fsyncs"]);
    for m in &modes {
        t.row(&[
            m.mode.to_string(),
            format!("{:.1}", m.mean_us),
            m.p95_us.to_string(),
            m.syncs.to_string(),
        ]);
    }
    t.print();
    assert!(modes[0].syncs >= commits, "Full mode must fsync at least once per commit batch");
    assert_eq!(modes[1].syncs, 0, "Normal mode must not fsync on commit");
    assert_eq!(modes[2].syncs, 0, "Deferred mode must not fsync on commit");

    // Phase C: group commit under concurrent committers.
    let threads = if check { 2 } else { 8 };
    let per_thread = commits / threads;
    let g = group_commit(threads, per_thread);
    println!(
        "\ngroup commit: {} commits from {} threads -> {} fsyncs ({:.3} per commit)",
        g.commits, g.threads, g.syncs, g.syncs_per_commit
    );
    assert!(
        g.syncs <= g.commits,
        "group commit must never fsync more than once per commit ({} > {})",
        g.syncs,
        g.commits
    );

    let json_out = format!(
        "{{\n  \"experiment\": \"pr7_storage\",\n  \"mode\": \"{}\",\n  \"ingest\": {{\n    \
         \"rows\": {rows},\n    \"batch\": {batch},\n    \"json\": {{\"rows_per_s\": {:.1}, \
         \"wal_bytes\": {}, \"ckpt_bytes\": {}}},\n    \"binary\": {{\"rows_per_s\": {:.1}, \
         \"wal_bytes\": {}, \"ckpt_bytes\": {}}},\n    \"speedup\": {speedup:.3},\n    \
         \"wal_shrink\": {shrink:.3}\n  }},\n  \"commit_latency\": [\n{}\n  ],\n  \
         \"group_commit\": {{\"threads\": {}, \"commits\": {}, \"fsyncs\": {}, \
         \"syncs_per_commit\": {:.4}}}\n}}\n",
        if check { "check" } else { "full" },
        json.rows_per_s,
        json.wal_bytes,
        json.ckpt_bytes,
        bin.rows_per_s,
        bin.wal_bytes,
        bin.ckpt_bytes,
        modes
            .iter()
            .map(|m| format!(
                "    {{\"mode\": \"{}\", \"commits\": {}, \"mean_us\": {:.2}, \"p95_us\": {}, \
                 \"fsyncs\": {}}}",
                m.mode, m.commits, m.mean_us, m.p95_us, m.syncs
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        g.threads,
        g.commits,
        g.syncs,
        g.syncs_per_commit,
    );
    std::fs::write("BENCH_pr7.json", json_out).unwrap();
    println!("\nwrote BENCH_pr7.json");
}
