//! PR9 — B-tree checkpoint benchmark: what lazy, paged table bases buy
//! over the load-everything heap-chain baseline.
//!
//! Builds the same table twice, checkpointed once per
//! [`CheckpointFormat`]: the PR-7 heap-chain image (`HeapChainV1`, which
//! `open` must materialize row by row) and the PR-9 B-tree image
//! (`BTreeV2`, which `open` merely points at — rows fault in through a
//! bounded buffer pool on first touch). For each it measures:
//!
//! - open wall time, and how many rows are resident right after open
//!   (the overlay row count: N for the heap chain, 0 for the B-tree);
//! - cached image pages after open and after a random point-lookup
//!   storm — always bounded by the pool, never the corpus;
//! - point-lookup latency through each path, plus the image buffer
//!   pool's hit/miss/eviction counters ([`PoolStats`]) for the B-tree.
//!
//! Asserts the PR-9 shape of the numbers: a B-tree open materializes
//! zero rows and caches at most a pool's worth of pages, while reads
//! through it still return the same rows. Writes `BENCH_pr9.json`;
//! `--check` runs a small variant for CI smoke with the same assertions.

use quarry_bench::{banner, f3, Table};
use quarry_storage::{
    CheckpointFormat, Column, DataType, Database, DurabilityMode, TableSchema, Value,
};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The image buffer pool's frame budget (`CKPT_POOL_PAGES` in the
/// engine): the bound we assert on resident image pages.
const POOL_PAGES: usize = 64;

fn items_schema() -> TableSchema {
    TableSchema::new(
        "items",
        vec![
            Column::new("id", DataType::Int),
            Column::new("tag", DataType::Text),
            Column::new("payload", DataType::Text),
        ],
        &["id"],
        &["tag"],
    )
    .unwrap()
}

/// One row: a small key, an indexed low-cardinality tag, and a ~200-byte
/// payload so the corpus dwarfs the buffer pool.
fn item(i: i64) -> Vec<Value> {
    let mut payload = format!("item-{i:06}:");
    while payload.len() < 200 {
        payload.push_str("structured-extraction-output ");
    }
    vec![Value::Int(i), Value::Text(format!("tag-{:02}", i % 41)), Value::Text(payload)]
}

fn tmp(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("quarry-pr9-{label}-{}", std::process::id()))
}

fn cleanup(p: &Path) {
    for ext in ["", "ckpt", "ckpt-tmp", "tmp"] {
        let q = if ext.is_empty() { p.to_path_buf() } else { p.with_extension(ext) };
        let _ = std::fs::remove_file(q);
    }
}

/// Ingest `rows` rows and publish one checkpoint in `format`, leaving the
/// files on disk for the open-phase measurement.
fn build_store(format: CheckpointFormat, rows: usize, label: &str) -> PathBuf {
    let p = tmp(label);
    cleanup(&p);
    let mut db = Database::open(&p).unwrap();
    db.set_durability(DurabilityMode::Deferred);
    db.set_checkpoint_format(format);
    db.create_table(items_schema()).unwrap();
    let mut i = 0i64;
    while (i as usize) < rows {
        let tx = db.begin();
        for _ in 0..500.min(rows as i64 - i) {
            db.insert(tx, "items", item(i)).unwrap();
            i += 1;
        }
        db.commit(tx).unwrap();
    }
    db.checkpoint().unwrap();
    p
}

struct OpenPoint {
    format: &'static str,
    open_ms: f64,
    resident_rows: usize,
    cached_after_open: Option<usize>,
    cached_after_reads: Option<usize>,
    lookup_mean_us: f64,
    lookup_p95_us: u64,
    pool: Option<(u64, u64, u64)>, // hits, misses, evictions
    ckpt_bytes: u64,
}

/// Open the prepared store, then hammer it with `lookups` random point
/// reads by primary key.
fn measure(
    format: CheckpointFormat,
    label: &'static str,
    rows: usize,
    lookups: usize,
) -> OpenPoint {
    let p = build_store(format, rows, label);
    let ckpt_bytes = std::fs::metadata(p.with_extension("ckpt")).unwrap().len();

    let start = Instant::now();
    let db = Database::open(&p).unwrap();
    let open_ms = start.elapsed().as_secs_f64() * 1e3;
    let resident_rows = db.overlay_row_count("items").unwrap();
    let cached_after_open = db.image_cached_pages();

    // Deterministic pseudo-random probe sequence (no clock seeding: runs
    // must be comparable across formats).
    let mut lat = Vec::with_capacity(lookups);
    let mut x = 0x243F_6A88_85A3_08D3u64;
    for _ in 0..lookups {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let id = (x >> 17) as usize % rows;
        let tx = db.begin();
        let t0 = Instant::now();
        let row = db.get(tx, "items", &[Value::Int(id as i64)]).unwrap();
        lat.push(t0.elapsed().as_micros() as u64);
        db.commit(tx).unwrap();
        assert_eq!(row[0], Value::Int(id as i64), "lookup returned the wrong row");
    }
    let cached_after_reads = db.image_cached_pages();
    let pool = db.image_pool_stats().map(|s| (s.hits, s.misses, s.evictions));
    assert_eq!(db.row_count("items").unwrap(), rows);
    drop(db);
    cleanup(&p);

    lat.sort_unstable();
    OpenPoint {
        format: label,
        open_ms,
        resident_rows,
        cached_after_open,
        cached_after_reads,
        lookup_mean_us: lat.iter().sum::<u64>() as f64 / lookups as f64,
        lookup_p95_us: lat[(lookups - 1) * 95 / 100],
        pool,
        ckpt_bytes,
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    banner(
        "PR9",
        "B-tree checkpoint images: opening a store no longer loads the \
         corpus — rows fault in through a bounded buffer pool, and point \
         reads go straight down the tree",
    );

    let (rows, lookups) = if check { (2_000, 300) } else { (20_000, 2_000) };

    let heap = measure(CheckpointFormat::HeapChainV1, "heap-chain-v1", rows, lookups);
    let tree = measure(CheckpointFormat::BTreeV2, "btree-v2", rows, lookups);

    println!("\nopen + {lookups} random point lookups over {rows} rows");
    let mut t = Table::new(&[
        "format",
        "open (ms)",
        "resident rows",
        "cached pages",
        "lookup mean (us)",
        "p95 (us)",
        "ckpt bytes",
    ]);
    for p in [&heap, &tree] {
        t.row(&[
            p.format.to_string(),
            f3(p.open_ms),
            p.resident_rows.to_string(),
            p.cached_after_reads.map_or("-".into(), |c| c.to_string()),
            format!("{:.1}", p.lookup_mean_us),
            p.lookup_p95_us.to_string(),
            p.ckpt_bytes.to_string(),
        ]);
    }
    t.print();
    if let Some((hits, misses, evictions)) = tree.pool {
        let rate = hits as f64 / (hits + misses).max(1) as f64;
        println!(
            "btree pool: {hits} hits / {misses} misses ({:.1}% hit rate), {evictions} evictions",
            rate * 100.0
        );
    }

    // The PR-9 contract: the heap-chain open materializes every row; the
    // B-tree open materializes none and stays within the pool budget.
    assert_eq!(heap.resident_rows, rows, "heap-chain open must materialize the table");
    assert_eq!(tree.resident_rows, 0, "btree open must not materialize any rows");
    let cached_open = tree.cached_after_open.expect("btree store must expose an image pool");
    let cached_reads = tree.cached_after_reads.unwrap();
    assert!(
        cached_open <= POOL_PAGES && cached_reads <= POOL_PAGES,
        "image residency must stay within the pool ({cached_open}/{cached_reads} > {POOL_PAGES})"
    );
    let (_, misses, _) = tree.pool.unwrap();
    assert!(misses > 0, "a corpus larger than the pool must fault pages in on read");

    let pool_json = tree
        .pool
        .map(|(h, m, e)| {
            format!(
                "{{\"hits\": {h}, \"misses\": {m}, \"evictions\": {e}, \"hit_rate\": {:.4}}}",
                h as f64 / (h + m).max(1) as f64
            )
        })
        .unwrap();
    let point = |p: &OpenPoint| {
        format!(
            "    {{\"format\": \"{}\", \"open_ms\": {:.3}, \"resident_rows_after_open\": {}, \
             \"cached_pages_after_reads\": {}, \"lookup_mean_us\": {:.2}, \"lookup_p95_us\": {}, \
             \"ckpt_bytes\": {}}}",
            p.format,
            p.open_ms,
            p.resident_rows,
            p.cached_after_reads.map_or("null".into(), |c| c.to_string()),
            p.lookup_mean_us,
            p.lookup_p95_us,
            p.ckpt_bytes
        )
    };
    let json_out = format!(
        "{{\n  \"experiment\": \"pr9_btree\",\n  \"mode\": \"{}\",\n  \"rows\": {rows},\n  \
         \"lookups\": {lookups},\n  \"pool_pages\": {POOL_PAGES},\n  \"formats\": [\n{},\n{}\n  \
         ],\n  \"btree_pool\": {pool_json}\n}}\n",
        if check { "check" } else { "full" },
        point(&heap),
        point(&tree),
    );
    std::fs::write("BENCH_pr9.json", json_out).unwrap();
    println!("\nwrote BENCH_pr9.json");
}
