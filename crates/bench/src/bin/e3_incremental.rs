//! E3 — §3.2: incremental, best-effort generation vs. one-shot extraction.
//!
//! A query workload needs attributes as it goes (temperatures first,
//! population later, ...). Incremental extraction pays only for what is
//! asked; one-shot pays everything up front. The crossover: if the workload
//! eventually touches every attribute, the costs converge; if it touches a
//! fraction, incremental wins by roughly that fraction.

use quarry_bench::{banner, f1, Table};
use quarry_core::IncrementalManager;
use quarry_corpus::{Corpus, CorpusConfig};
use quarry_lang::{ExecContext, ExtractorRegistry};
use quarry_storage::Database;

const ALL_ATTRS: [&str; 16] = [
    "state",
    "population",
    "founded",
    "area_sq_mi",
    "january_temp",
    "february_temp",
    "march_temp",
    "april_temp",
    "may_temp",
    "june_temp",
    "july_temp",
    "august_temp",
    "september_temp",
    "october_temp",
    "november_temp",
    "december_temp",
];

fn main() {
    banner(
        "E3 incremental extraction",
        "\"generate structured data incrementally, in a best-effort fashion, as the \
         user deems necessary (instead of generating all of them in one shot)\" (§3.2)",
    );
    let corpus =
        Corpus::generate(&CorpusConfig { seed: 3, n_cities: 120, ..CorpusConfig::default() });
    let extractors = [
        "infobox",
        "rules",
        "rule:monthly-temperature",
        "rule:population-of",
        "rule:founded-and-area",
    ];

    // One-shot baseline: everything up front.
    let registry = ExtractorRegistry::standard();
    let db = Database::in_memory();
    let mut ctx = ExecContext::new(&corpus.docs, &registry, &db);
    let mut oneshot = IncrementalManager::new("cities", "name");
    let s = oneshot.ensure(&ALL_ATTRS, &extractors, &mut ctx).unwrap().unwrap();
    let oneshot_cost = s.cost_units;
    println!("one-shot cost (all {} attributes): {:.0} units\n", ALL_ATTRS.len(), oneshot_cost);

    // A workload that needs attributes gradually; repeats are free.
    let workload: Vec<(&str, Vec<&str>)> = vec![
        ("avg July temperature", vec!["july_temp"]),
        ("July again (repeat)", vec!["july_temp"]),
        ("filter by population", vec!["population", "july_temp"]),
        ("founded before 1850", vec!["founded"]),
        ("January vs July", vec!["january_temp", "july_temp"]),
        ("area density", vec!["area_sq_mi", "population"]),
        (
            "full seasonal profile",
            vec![
                "february_temp",
                "march_temp",
                "april_temp",
                "may_temp",
                "june_temp",
                "august_temp",
                "september_temp",
                "october_temp",
                "november_temp",
                "december_temp",
            ],
        ),
        ("by state", vec!["state"]),
    ];

    let registry2 = ExtractorRegistry::standard();
    let db2 = Database::in_memory();
    let mut ctx2 = ExecContext::new(&corpus.docs, &registry2, &db2);
    let mut mgr = IncrementalManager::new("cities", "name");
    let mut table = Table::new(&["query", "new attrs", "marginal cost", "cumulative", "one-shot"]);
    for (label, attrs) in &workload {
        let new: Vec<&str> = attrs.iter().copied().filter(|a| !mgr.covers(&[a])).collect();
        let marginal = match mgr.ensure(attrs, &extractors, &mut ctx2).unwrap() {
            Some(s) => s.cost_units,
            None => 0.0,
        };
        table.row(&[
            label.to_string(),
            new.len().to_string(),
            f1(marginal),
            f1(mgr.total_cost),
            f1(oneshot_cost),
        ]);
    }
    table.print();

    println!(
        "\ncrossover: after the workload touched {}/{} attributes, incremental had spent \
         {:.0}% of the one-shot cost.",
        mgr.materialized().count() - 1, // minus the key attribute
        ALL_ATTRS.len(),
        100.0 * mgr.total_cost / oneshot_cost
    );
    println!("expected shape: early queries cost a fraction of one-shot; repeats are free;\nconvergence only if the workload eventually needs everything.");
}
