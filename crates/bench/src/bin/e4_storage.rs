//! E4 — §4 storage layer: each data form wants a different device.
//!
//! (a) Overlapping crawl snapshots → diff store saves space (vs. full copies).
//! (b) Sequential intermediate data → filestore scan throughput vs. the
//!     transactional store's scan (which pays locking/typing overheads).
//! (c) Concurrent user edits → strict 2PL serializes correctly; the
//!     "no transactions" strawman loses updates.

use quarry_bench::{banner, f1, timed, Table};
use quarry_corpus::{Corpus, CorpusConfig, CrawlConfig, CrawlSimulator};
use quarry_storage::{Column, DataType, Database, FileStore, SnapshotStore, TableSchema, Value};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

fn main() {
    banner(
        "E4 storage devices",
        "\"these different forms of data ... may best be kept in different storage \
         devices\" (§4)",
    );
    part_a_snapshots();
    part_b_scan_throughput();
    part_c_concurrency();
}

fn part_a_snapshots() {
    println!("(a) diff-based snapshot store vs. storing snapshots in full");
    let corpus = Corpus::generate(&CorpusConfig { seed: 4, ..CorpusConfig::default() });
    let snaps = CrawlSimulator::new(
        &corpus,
        CrawlConfig { seed: 5, days: 30, churn: 0.02, new_page_rate: 0.5 },
    )
    .run();
    let mut delta = SnapshotStore::new(16);
    let mut full = SnapshotStore::new(1); // keyframe-every-version = no deltas
    let mut table = Table::new(&["day", "full bytes", "delta bytes", "ratio"]);
    for (i, s) in snaps.iter().enumerate() {
        delta.put_snapshot(s.docs.iter().map(|d| (d.title.as_str(), d.text.as_str())));
        full.put_snapshot(s.docs.iter().map(|d| (d.title.as_str(), d.text.as_str())));
        if (i + 1) % 5 == 0 {
            let ds = delta.stats();
            let fs = full.stats();
            table.row(&[
                format!("{}", i + 1),
                fs.stored_bytes.to_string(),
                ds.stored_bytes.to_string(),
                f1(fs.stored_bytes as f64 / ds.stored_bytes as f64),
            ]);
        }
    }
    table.print();
    println!();
}

fn part_b_scan_throughput() {
    println!("(b) sequential scan: filestore vs. transactional store");
    let n = 50_000usize;
    let record = |i: usize| format!("extraction {i}: attribute=july_temp value=72 confidence=0.95");

    let dir = std::env::temp_dir().join(format!("quarry-e4-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut fs = FileStore::open(&dir).unwrap();
    let (_, w_fs) = timed(|| {
        for i in 0..n {
            fs.append(record(i).as_bytes()).unwrap();
        }
        fs.sync().unwrap();
    });
    let (bytes, r_fs) = timed(|| fs.scan().unwrap().map(|r| r.unwrap().len()).sum::<usize>());

    let db = Database::in_memory();
    db.create_table(
        TableSchema::new(
            "intermediate",
            vec![Column::new("id", DataType::Int), Column::new("payload", DataType::Text)],
            &["id"],
            &[],
        )
        .unwrap(),
    )
    .unwrap();
    let (_, w_db) = timed(|| {
        let tx = db.begin();
        for i in 0..n {
            db.insert(tx, "intermediate", vec![Value::Int(i as i64), record(i).into()]).unwrap();
        }
        db.commit(tx).unwrap();
    });
    let (rows, r_db) = timed(|| db.scan_autocommit("intermediate").unwrap().len());

    let mut t = Table::new(&["device", "write ms", "scan ms", "records"]);
    t.row(&["filestore (append-only)".into(), f1(w_fs), f1(r_fs), n.to_string()]);
    t.row(&["structured store (2PL+WAL)".into(), f1(w_db), f1(r_db), rows.to_string()]);
    t.print();
    println!("  (scanned {bytes} payload bytes from the filestore)\n");
    let _ = std::fs::remove_dir_all(&dir);
}

fn part_c_concurrency() {
    println!("(c) concurrent editors on the final structure");
    let editors = 4usize;
    let edits_per = 50usize;

    // Strict 2PL: read-modify-write inside one transaction.
    let db = Arc::new(Database::in_memory());
    db.create_table(
        TableSchema::new(
            "page_counters",
            vec![Column::new("page", DataType::Text), Column::new("edits", DataType::Int)],
            &["page"],
            &[],
        )
        .unwrap(),
    )
    .unwrap();
    db.insert_autocommit("page_counters", vec!["Madison".into(), Value::Int(0)]).unwrap();
    let (_, ms_2pl) = timed(|| {
        let mut handles = Vec::new();
        for _ in 0..editors {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                let mut done = 0;
                while done < edits_per {
                    let tx = db.begin();
                    let res = db.get(tx, "page_counters", &["Madison".into()]).and_then(|row| {
                        let n = row[1].as_f64().unwrap() as i64;
                        db.update(
                            tx,
                            "page_counters",
                            &["Madison".into()],
                            vec!["Madison".into(), Value::Int(n + 1)],
                        )
                    });
                    match res {
                        Ok(()) => {
                            db.commit(tx).unwrap();
                            done += 1;
                        }
                        Err(_) => {
                            let _ = db.abort(tx);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });
    let final_2pl = db.scan_autocommit("page_counters").unwrap()[0][1].clone();

    // Strawman: each read and write is its own transaction — the lost-update
    // anomaly an RDBMS exists to prevent.
    let db2 = Arc::new(Database::in_memory());
    db2.create_table(
        TableSchema::new(
            "page_counters",
            vec![Column::new("page", DataType::Text), Column::new("edits", DataType::Int)],
            &["page"],
            &[],
        )
        .unwrap(),
    )
    .unwrap();
    db2.insert_autocommit("page_counters", vec!["Madison".into(), Value::Int(0)]).unwrap();
    let barrier = Arc::new(std::sync::Barrier::new(editors));
    let attempts = Arc::new(AtomicI64::new(0));
    let (_, ms_naive) = timed(|| {
        let mut handles = Vec::new();
        for _ in 0..editors {
            let db = Arc::clone(&db2);
            let barrier = Arc::clone(&barrier);
            let attempts = Arc::clone(&attempts);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..edits_per {
                    // Read in one transaction...
                    let tx = db.begin();
                    let n = match db.get(tx, "page_counters", &["Madison".into()]) {
                        Ok(row) => row[1].as_f64().unwrap() as i64,
                        Err(_) => {
                            let _ = db.abort(tx);
                            continue;
                        }
                    };
                    let _ = db.commit(tx);
                    // ...write in another: the interleaving window.
                    std::thread::yield_now();
                    let tx = db.begin();
                    let _ = db.update(
                        tx,
                        "page_counters",
                        &["Madison".into()],
                        vec!["Madison".into(), Value::Int(n + 1)],
                    );
                    let _ = db.commit(tx);
                    attempts.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });
    let final_naive = db2.scan_autocommit("page_counters").unwrap()[0][1].clone();
    let expected = (editors * edits_per) as i64;
    let lost = expected - final_naive.as_f64().unwrap_or(0.0) as i64;

    let mut t = Table::new(&["scheme", "expected", "observed", "lost updates", "ms"]);
    t.row(&[
        "strict 2PL transactions".into(),
        expected.to_string(),
        final_2pl.to_string(),
        "0".into(),
        f1(ms_2pl),
    ]);
    t.row(&[
        "separate read/write txns".into(),
        expected.to_string(),
        final_naive.to_string(),
        lost.to_string(),
        f1(ms_naive),
    ]);
    t.print();
    println!(
        "\nexpected shape: deltas ≫ full copies in space; filestore scans faster than the\n\
         transactional store; 2PL preserves every update ({} editors × {} edits), the\n\
         strawman loses {:.0}%+ of them.",
        editors,
        edits_per,
        100.0 * lost as f64 / expected as f64
    );
}
