//! E11 — §3.3: "it is very easy for users to recognize something that fits
//! their needs, yet very difficult for them to generate this something
//! without help ... narrowing the set of potential matches to a manageable
//! number allows users to spot the correct match, when they would be
//! swamped by the total number of potential matches."
//!
//! Task: for each left record (a person page), find its true duplicate
//! among N candidates. Two protocols at *equal human budget k*:
//!   recognition — the matcher ranks candidates; the user reviews the top k;
//!   generation  — no system help; the user reviews k candidates blindly.

use quarry_bench::{banner, f3, Table};
use quarry_corpus::{Corpus, CorpusConfig, NoiseConfig};
use quarry_hi::oracle::SimulatedUser;
use quarry_hi::{Answer, Question};
use quarry_integrate::matcher::{match_score, MatchConfig, Record};
use quarry_storage::Value;

fn main() {
    banner(
        "E11 recognize vs generate",
        "verification beats generation at equal budget when the system narrows the \
         candidates (§3.3)",
    );
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 11,
        n_people: 200,
        duplicate_rate: 1.0, // every person has exactly one duplicate page
        noise: NoiseConfig { name_variant: 1.0, ..NoiseConfig::default() },
        ..CorpusConfig::default()
    });
    let people = &corpus.truth.people;
    // Pages: even indexes original, odd indexes duplicates (generation order).
    let originals: Vec<usize> = (0..people.len()).step_by(2).collect();
    let duplicates: Vec<usize> = (1..people.len()).step_by(2).collect();
    println!(
        "task: match {} original pages to their duplicate among {} candidates\n",
        originals.len(),
        duplicates.len()
    );

    let cfg = MatchConfig::default();
    let rec = |idx: usize| {
        let p = &people[idx];
        Record::new(
            idx,
            [
                ("name", Value::Text(corpus.docs[p.doc.index()].title.clone())),
                ("birth_year", Value::Int(p.birth_year as i64)),
                ("employer", Value::Text(p.employer.clone())),
            ],
        )
    };

    let mut user = SimulatedUser::new(0, 0.05, 17);
    let mut table =
        Table::new(&["budget k", "recognition (ranked top-k)", "generation (blind scan)"]);
    for k in [1usize, 3, 5, 10, 20] {
        let mut recog = 0usize;
        let mut blind = 0usize;
        for (qi, &left) in originals.iter().enumerate() {
            let truth_right =
                duplicates.iter().copied().find(|&d| people[d].entity == people[left].entity);
            let Some(truth_right) = truth_right else { continue };

            // Recognition: rank all candidates by matcher score, show top-k.
            let mut scored: Vec<(usize, f64)> =
                duplicates.iter().map(|&d| (d, match_score(&rec(left), &rec(d), &cfg))).collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            if scan(&mut user, qi, left, truth_right, scored.iter().take(k).map(|(d, _)| *d)) {
                recog += 1;
            }

            // Generation: no ranking; the user inspects k arbitrary
            // candidates (deterministic pseudo-shuffle).
            let mut order = duplicates.clone();
            let n = order.len();
            for i in 0..n {
                let j = (i * 7919 + left * 31) % n;
                order.swap(i, j);
            }
            if scan(&mut user, qi + 100_000, left, truth_right, order.into_iter().take(k)) {
                blind += 1;
            }
        }
        let n = originals.len() as f64;
        table.row(&[k.to_string(), f3(recog as f64 / n), f3(blind as f64 / n)]);
    }
    table.print();
    println!("\nexpected shape: recognition near-perfect at tiny k; blind generation scales\nonly as k/N — the automated narrowing is what makes human verification viable.");
}

/// The user inspects candidates in order, answering "is this the match?"
/// per pair; returns whether they accepted the true match.
fn scan(
    user: &mut SimulatedUser,
    qbase: usize,
    _left: usize,
    truth_right: usize,
    candidates: impl Iterator<Item = usize>,
) -> bool {
    for (off, cand) in candidates.enumerate() {
        let q = Question::verify_match(qbase * 64 + off, "left", "right", cand == truth_right);
        if user.answer(&q) == Answer::Bool(true) && cand == truth_right {
            return true;
        }
    }
    false
}
