//! E1 — §2: keyword search cannot answer structure-requiring questions;
//! structure extracted from the same pages can.
//!
//! Four query classes over a 200-city corpus. "Keyword answers" means the
//! *exact answer value* appears verbatim in a top-5 page (the most generous
//! possible reading — the user still has to find it by eye); for lookups it
//! means the top-1 hit is the right page. "Structured answers" means the
//! query over extracted structure returns exactly the ground-truth value.

use quarry_bench::{banner, f3, Table};
use quarry_corpus::{Corpus, CorpusConfig, NoiseConfig};
use quarry_lang::{optimize, parse, ExecContext, Executor, ExtractorRegistry, LogicalPlan};
use quarry_query::engine::{execute, AggFn, Predicate, Query};
use quarry_query::InvertedIndex;
use quarry_storage::{Database, Value};

fn main() {
    banner(
        "E1 structure-vs-keyword",
        "\"with keyword search we cannot ask ... 'find the average March–September \
         temperature in Madison'\" (§2)",
    );
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 1,
        n_cities: 200,
        n_people: 50,
        n_companies: 20,
        n_publications: 20,
        duplicate_rate: 0.2,
        noise: NoiseConfig::none(),
    });
    let index = InvertedIndex::build(corpus.docs.iter());

    // Build structure once.
    let db = Database::in_memory();
    let registry = ExtractorRegistry::standard();
    let months = [
        "january",
        "february",
        "march",
        "april",
        "may",
        "june",
        "july",
        "august",
        "september",
        "october",
        "november",
        "december",
    ];
    let month_attrs: Vec<String> = months.iter().map(|m| format!("\"{m}_temp\"")).collect();
    let src = format!(
        "PIPELINE cities FROM corpus\nEXTRACT infobox, rules\nWHERE attribute IN (\"name\", \"state\", \"population\", {})\nRESOLVE BY name\nSTORE INTO cities KEY name",
        month_attrs.join(", ")
    );
    let plan = optimize(&LogicalPlan::from_pipeline(&parse(&src).unwrap()), &registry);
    let mut ctx = ExecContext::new(&corpus.docs, &registry, &db);
    let stats = Executor::run(&plan, &mut ctx).expect("pipeline");
    println!("structure: {} extractions → {} rows\n", stats.extractions, stats.rows_stored);

    let cities: Vec<_> = corpus.truth.cities.iter().step_by(4).collect(); // 50 queries per class
    let mut table = Table::new(&["query class", "keyword", "structured", "n"]);

    // --- Class 1: lookup ("population of X"). -----------------------------
    let mut kw = 0;
    let mut st = 0;
    for c in &cities {
        let hits = index.search(&format!("population {}", c.name), 1);
        if hits.first().map(|h| h.doc) == Some(c.doc) {
            kw += 1;
        }
        let q = Query::scan("cities")
            .filter(vec![Predicate::Eq("name".into(), c.name.as_str().into())])
            .project(&["population"]);
        if let Ok(r) = execute(&db, &q) {
            if r.rows.first().map(|r| r[0].clone()) == Some(Value::Int(c.population as i64)) {
                st += 1;
            }
        }
    }
    let n = cities.len();
    table.row(&[
        "lookup (find the page/value)".into(),
        f3(kw as f64 / n as f64),
        f3(st as f64 / n as f64),
        n.to_string(),
    ]);

    // --- Class 2: aggregate (average March–September temperature). --------
    let mut kw = 0;
    let mut st = 0;
    for c in &cities {
        let truth = c.avg_temp(2, 8);
        // Keyword: does any top-5 page literally contain the averaged value?
        let hits = index.search(&format!("average march september temperature {}", c.name), 5);
        let answer_str = format!("{truth:.2}");
        if hits.iter().any(|h| corpus.docs[h.doc.index()].text.contains(&answer_str)) {
            kw += 1;
        }
        // Structured: average the seven monthly columns.
        let mut sum = 0.0;
        let mut ok = true;
        for m in &months[2..=8] {
            let q = Query::scan("cities")
                .filter(vec![Predicate::Eq("name".into(), c.name.as_str().into())])
                .aggregate(None, AggFn::Avg, &format!("{m}_temp"));
            match execute(&db, &q).ok().and_then(|r| r.scalar().and_then(Value::as_f64)) {
                Some(v) => sum += v,
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && (sum / 7.0 - truth).abs() < 0.01 {
            st += 1;
        }
    }
    table.row(&[
        "aggregate (avg Mar–Sep temp)".into(),
        f3(kw as f64 / n as f64),
        f3(st as f64 / n as f64),
        n.to_string(),
    ]);

    // --- Class 3: comparison (which of two cities is warmer in July?). ----
    let mut kw = 0;
    let mut st = 0;
    let mut pairs = 0;
    for w in cities.chunks(2) {
        let [a, b] = w else { continue };
        pairs += 1;
        let truth_warmer =
            if a.monthly_temp_f[6] >= b.monthly_temp_f[6] { &a.name } else { &b.name };
        let hits = index.search(&format!("warmer july {} {}", a.name, b.name), 5);
        // Keyword can only "answer" if some page compares them (none does).
        if hits.iter().any(|h| {
            let t = &corpus.docs[h.doc.index()].text;
            t.contains(a.name.as_str()) && t.contains(b.name.as_str())
        }) {
            kw += 1;
        }
        let q = Query::scan("cities")
            .filter(vec![Predicate::In(
                "name".into(),
                vec![a.name.as_str().into(), b.name.as_str().into()],
            )])
            .project(&["name", "july_temp"]);
        if let Ok(r) = execute(&db, &q) {
            let mut best: Option<(&Value, f64)> = None;
            for row in &r.rows {
                if let Some(t) = row[1].as_f64() {
                    if best.is_none() || t > best.as_ref().unwrap().1 {
                        best = Some((&row[0], t));
                    }
                }
            }
            if best.map(|(name, _)| name.to_string()) == Some(truth_warmer.clone()) {
                st += 1;
            }
        }
    }
    table.row(&[
        "comparison (warmer in July)".into(),
        f3(kw as f64 / pairs as f64),
        f3(st as f64 / pairs as f64),
        pairs.to_string(),
    ]);

    // --- Class 4: ranking (top-3 most populous cities in a state). --------
    let mut kw = 0;
    let mut st = 0;
    let mut states: Vec<&str> = corpus.truth.cities.iter().map(|c| c.state.as_str()).collect();
    states.sort();
    states.dedup();
    for state in &states {
        let mut truth: Vec<(&str, u64)> = corpus
            .truth
            .cities
            .iter()
            .filter(|c| c.state == *state)
            .map(|c| (c.name.as_str(), c.population))
            .collect();
        truth.sort_by_key(|&(_, pop)| std::cmp::Reverse(pop));
        truth.truncate(3);
        let hits = index.search(&format!("most populous cities {state}"), 5);
        let top_pages: Vec<&str> =
            hits.iter().map(|h| corpus.docs[h.doc.index()].title.as_str()).collect();
        if truth.iter().all(|(name, _)| top_pages.iter().any(|t| t.starts_with(name))) {
            kw += 1;
        }
        let q = Query::scan("cities")
            .filter(vec![Predicate::Eq("state".into(), (*state).into())])
            .project(&["name", "population"]);
        if let Ok(r) = execute(&db, &q) {
            let mut got: Vec<(String, f64)> = r
                .rows
                .iter()
                .filter_map(|row| row[1].as_f64().map(|p| (row[0].to_string(), p)))
                .collect();
            got.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            got.truncate(3);
            if got.len() == truth.len() && got.iter().zip(&truth).all(|((gn, _), (tn, _))| gn == tn)
            {
                st += 1;
            }
        }
    }
    table.row(&[
        "ranking (top-3 by population)".into(),
        f3(kw as f64 / states.len() as f64),
        f3(st as f64 / states.len() as f64),
        states.len().to_string(),
    ]);

    table.print();
    println!(
        "\nexpected shape: keyword competitive only on page lookup; structured ≈ 1.0 everywhere."
    );
}
