//! PR10 — sharded serving with mid-run failover: a 3-shard × 1-replica
//! loopback cluster behind the shard router, driven by a read-mix
//! workload that survives killing a primary.
//!
//! Seeds a keyed table through the router (rows partitioned over the
//! consistent-hash ring), lets every replica catch up over the
//! WAL-shipping transport, then measures three phases client-side:
//!
//! 1. **healthy** — point reads, fan-out sorted scans, and distributed
//!    aggregates against the full cluster;
//! 2. **failover** — one shard's primary is killed mid-run; requests
//!    needing it fail `Unavailable` until its replica is promoted and
//!    the router retargeted (the wall time of that gap is reported);
//! 3. **recovered** — the same read mix against the failed-over
//!    topology, with a correctness gate: the post-failover table count
//!    and a full sorted scan must equal the pre-failure answers exactly.
//!
//! Writes `BENCH_pr10.json`. `--check` runs a small-size variant for CI
//! smoke testing; both modes assert zero lost rows across the failover.

use quarry_bench::{banner, f3, Table};
use quarry_cluster::{Cluster, ClusterConfig};
use quarry_query::engine::{AggFn, Predicate, Query};
use quarry_serve::{Client, ClientError, ErrorKind};
use quarry_storage::{Column, DataType, TableSchema, Value};
use std::time::{Duration, Instant};

fn schema() -> TableSchema {
    TableSchema::new(
        "readings",
        vec![
            Column::new("id", DataType::Int),
            Column::new("station", DataType::Text),
            Column::new("value", DataType::Int),
        ],
        &["id"],
        &[],
    )
    // quarry-audit: allow(QA101, reason = "static schema literal; a bench aborts on malformed fixtures")
    .unwrap()
}

fn row(i: i64) -> Vec<Value> {
    let station = format!("station-{}", i % 7);
    vec![Value::Int(i), station.into(), Value::Int(100 + (i * 13) % 1000)]
}

/// `q`-th percentile (nearest-rank on the sorted sample), in µs.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct Phase {
    name: &'static str,
    ok: usize,
    wall_ms: f64,
    rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

/// One pass of the read mix: point reads by key, a sorted top-k fan-out,
/// and a grouped distributed aggregate, cycling deterministically.
fn read_mix(c: &mut Client, rows: i64, reads: usize, name: &'static str) -> Phase {
    let mut lat = Vec::with_capacity(reads);
    let start = Instant::now();
    for i in 0..reads {
        let t0 = Instant::now();
        match i % 4 {
            0 | 1 => {
                let id = (i as i64 * 37) % rows;
                let q = Query::scan("readings")
                    .filter(vec![Predicate::Eq("id".into(), Value::Int(id))]);
                let (_, got) = c.query(&q).unwrap();
                assert_eq!(got.len(), 1, "point read lost row {id}");
            }
            2 => {
                let q = Query::scan("readings").sort("value", true, Some(10));
                let (_, got) = c.query(&q).unwrap();
                assert_eq!(got.len(), 10);
            }
            _ => {
                let q = Query::scan("readings").aggregate(Some("station"), AggFn::Count, "id");
                let (_, got) = c.query(&q).unwrap();
                assert_eq!(got.len(), 7, "grouped aggregate lost a group");
            }
        }
        lat.push(t0.elapsed().as_micros() as u64);
    }
    let wall = start.elapsed();
    lat.sort_unstable();
    Phase {
        name,
        ok: lat.len(),
        wall_ms: wall.as_secs_f64() * 1e3,
        rps: lat.len() as f64 / wall.as_secs_f64(),
        p50_us: percentile(&lat, 0.50),
        p95_us: percentile(&lat, 0.95),
        p99_us: percentile(&lat, 0.99),
    }
}

fn write_json(
    path: &str,
    mode: &str,
    shards: usize,
    rows: i64,
    phases: &[Phase],
    unavailable_seen: usize,
    failover_ms: f64,
) {
    let items: Vec<String> = phases
        .iter()
        .map(|p| {
            format!(
                "    {{\"phase\": \"{}\", \"ok\": {}, \"wall_ms\": {:.2}, \
                 \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}",
                p.name, p.ok, p.wall_ms, p.rps, p.p50_us, p.p95_us, p.p99_us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"pr10_cluster\",\n  \"mode\": \"{mode}\",\n  \
         \"shards\": {shards},\n  \"replicas_per_shard\": 1,\n  \"rows\": {rows},\n  \
         \"phases\": [\n{}\n  ],\n  \"failover\": {{\"unavailable_seen\": {unavailable_seen}, \
         \"kill_to_recovery_ms\": {failover_ms:.2}}}\n}}\n",
        items.join(",\n"),
    );
    std::fs::write(path, json).unwrap();
    println!("\nwrote {path}");
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    banner(
        "PR10",
        "a sharded cluster behind the router serves a read mix across shards, \
         loses a primary mid-run, and resumes exact service after replica \
         promotion — zero rows lost across the failover",
    );

    let (rows, reads): (i64, usize) = if check { (210, 120) } else { (3000, 1500) };
    const SHARDS: usize = 3;

    let dir = std::env::temp_dir().join(format!("quarry-pr10-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut cluster = Cluster::start(
        &dir,
        ClusterConfig { shards: SHARDS, replicas_per_shard: 1, ..Default::default() },
    )
    .unwrap();
    let mut c = cluster.client().unwrap();

    // Seed through the router: the ring partitions each batch.
    c.create_table(schema()).unwrap();
    for chunk in (0..rows).collect::<Vec<_>>().chunks(500) {
        c.insert_rows("readings", chunk.iter().map(|&i| row(i)).collect()).unwrap();
    }
    for s in 0..SHARDS {
        assert!(
            cluster.await_replicas_caught_up(s, Duration::from_secs(30)),
            "shard {s} replicas never caught up"
        );
    }
    println!("seeded {rows} rows over {SHARDS} shards (1 replica each)\n");

    // Reference answers that must survive the failover bit-for-bit.
    let count_q = Query::scan("readings").aggregate(None, AggFn::Count, "id");
    let scan_q = Query::scan("readings").sort("id", false, None);
    let count_before = c.query(&count_q).unwrap();
    let scan_before = c.query(&scan_q).unwrap();

    let healthy = read_mix(&mut c, rows, reads, "healthy");

    // Kill shard 1's primary mid-run: reads owned by it become
    // Unavailable until promotion; count how many we observe.
    let killed_at = Instant::now();
    cluster.kill_primary(1);
    let mut unavailable_seen = 0usize;
    for i in 0..50 {
        let id = (i * 37) % rows;
        let q = Query::scan("readings").filter(vec![Predicate::Eq("id".into(), Value::Int(id))]);
        match c.query(&q) {
            Ok((_, got)) => assert_eq!(got.len(), 1),
            Err(ClientError::Server { kind: ErrorKind::Unavailable, .. }) => {
                unavailable_seen += 1;
            }
            Err(e) => panic!("unexpected failure with a dead shard: {e}"),
        }
    }
    assert!(unavailable_seen > 0, "no request ever routed to the dead shard");
    cluster.promote(1, 0).unwrap();
    // First end-to-end success after promotion closes the outage window.
    let (_, got) = c.query(&scan_q).unwrap();
    let failover_ms = killed_at.elapsed().as_secs_f64() * 1e3;
    assert_eq!(got.len(), rows as usize);

    // Correctness gate: the failed-over cluster answers exactly as the
    // healthy one did.
    assert_eq!(c.query(&count_q).unwrap(), count_before, "row count changed across failover");
    assert_eq!(c.query(&scan_q).unwrap(), scan_before, "table contents changed across failover");

    let recovered = read_mix(&mut c, rows, reads, "recovered");

    let phases = [healthy, recovered];
    let mut t = Table::new(&["phase", "req/s", "p50 (ms)", "p95 (ms)", "p99 (ms)"]);
    for p in &phases {
        t.row(&[
            p.name.to_string(),
            format!("{:.0}", p.rps),
            f3(p.p50_us as f64 / 1e3),
            f3(p.p95_us as f64 / 1e3),
            f3(p.p99_us as f64 / 1e3),
        ]);
    }
    t.print();
    println!(
        "\nfailover: {unavailable_seen} Unavailable while down, \
         {failover_ms:.1} ms kill-to-recovery (incl. probe traffic)"
    );

    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    write_json(
        "BENCH_pr10.json",
        if check { "check" } else { "full" },
        SHARDS,
        rows,
        &phases,
        unavailable_seen,
        failover_ms,
    );
}
