//! E9 — §4 Part V: uncertainty management and provenance.
//!
//! (a) Overhead of building tuple-level lineage (time and graph size).
//! (b) Explanation completeness: what fraction of stored tuples trace back
//!     to at least one raw-text span?
//! (c) Confidence calibration: are the extractors' confidences honest
//!     probabilities? (reliability bins + Brier/ECE against ground truth)

use quarry_bench::{banner, f3, timed, Table};
use quarry_core::{Quarry, QuarryConfig};
use quarry_corpus::{Corpus, CorpusConfig};
use quarry_extract::{eval, extract_all, ExtractorSet};
use quarry_uncertainty::prob::CalibrationReport;

const PIPELINE: &str = r#"
PIPELINE cities FROM corpus
EXTRACT infobox, rules
WHERE attribute IN ("name", "state", "population", "founded", "july_temp")
RESOLVE BY name
STORE INTO cities KEY name
"#;

fn main() {
    banner(
        "E9 provenance & uncertainty",
        "Part V \"handles the uncertainty that arise during the IE, II, and HI \
         processes. It also provides the provenance and explanation for the derived \
         structured data\" (§4)",
    );
    let corpus =
        Corpus::generate(&CorpusConfig { seed: 9, n_cities: 150, ..CorpusConfig::default() });

    // --- (a) lineage overhead. ---------------------------------------------
    let mut q = Quarry::new(QuarryConfig::builder().build()).unwrap();
    q.ingest(corpus.docs.clone());
    let (_, ms_pipeline) = timed(|| q.run_pipeline(PIPELINE).unwrap());
    let (nodes, ms_lineage) = timed(|| q.record_lineage("cities").unwrap());
    let mut t = Table::new(&["phase", "wall ms", "artifacts"]);
    t.row(&[
        "pipeline (no lineage)".into(),
        format!("{ms_pipeline:.1}"),
        format!("{} rows", nodes.len()),
    ]);
    t.row(&[
        "lineage construction".into(),
        format!("{ms_lineage:.1}"),
        format!("{} graph nodes", q.lineage.len()),
    ]);
    t.print();

    // --- (b) explanation completeness. --------------------------------------
    let traced = nodes.iter().filter(|(_, n)| !q.lineage.source_spans(*n).is_empty()).count();
    println!(
        "\nexplanation completeness: {traced}/{} stored tuples trace to ≥1 source span ({:.1}%)",
        nodes.len(),
        100.0 * traced as f64 / nodes.len() as f64
    );
    let sample = &nodes[0];
    println!("\nsample explanation:\n{}", q.explain(sample.1));

    // --- (c) confidence calibration. ----------------------------------------
    let exts = extract_all(&corpus, &ExtractorSet::standard());
    let truth_pairs = eval::truth_pairs(&corpus.truth);
    let predictions: Vec<(f64, bool)> = exts
        .iter()
        .filter_map(|e| {
            let attr = eval::canonical_attribute(&e.attribute);
            // Score only attributes the truth model covers.
            if !truth_pairs.iter().any(|(_, a, _)| *a == attr) {
                return None;
            }
            let correct = truth_pairs.contains(&(e.doc.0, attr, e.value.clone()));
            Some((e.confidence, correct))
        })
        .collect();
    let report = CalibrationReport::from_predictions(&predictions, 10);
    println!("confidence calibration over {} scored extractions:", predictions.len());
    let mut t = Table::new(&["confidence bin", "n", "mean conf", "accuracy"]);
    for b in report.bins.iter().filter(|b| b.count > 0) {
        t.row(&[
            format!("[{:.1}, {:.1})", b.lo, b.hi),
            b.count.to_string(),
            f3(b.mean_confidence),
            f3(b.accuracy),
        ]);
    }
    t.print();
    println!("Brier score: {:.4}   expected calibration error: {:.4}", report.brier, report.ece);
    println!("\nexpected shape: lineage costs a fraction of extraction time; completeness\nnear 100%; higher-confidence extractors (infobox 0.95) empirically more accurate\nthan prose rules (0.70–0.75).");
}
