//! Shared utilities for the experiment binaries (E1–E12).
//!
//! Each binary in `src/bin/` regenerates one experiment from DESIGN.md's
//! index, printing the table/series that EXPERIMENTS.md records. Everything
//! is seeded; rerunning a binary reproduces its numbers exactly (wall-clock
//! timings vary with the machine; shapes should not).

#![forbid(unsafe_code)]

use std::time::Instant;

/// A fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table { headers: headers.iter().map(|h| h.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let padded: Vec<String> =
                cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
            println!("  {}", padded.join("  "));
        };
        line(&self.headers);
        let total = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format helper: a float to 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format helper: a float to 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Time a closure, returning (result, milliseconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64() * 1000.0)
}

/// Print an experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("\n=== {id} ===");
    println!("claim under test: {claim}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        t.print(); // visual; the assertion is that arity checks hold
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn timed_returns_result() {
        let (v, ms) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }
}
