//! Criterion microbenchmarks for the user layer: BM25 search, the
//! structured query engine, and keyword→structured translation.

use criterion::{criterion_group, criterion_main, Criterion};
use quarry_corpus::{Corpus, CorpusConfig};
use quarry_query::engine::{execute, AggFn, Predicate, Query};
use quarry_query::{InvertedIndex, Translator};
use quarry_storage::{Column, DataType, Database, TableSchema, Value};
use std::hint::black_box;

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig { seed: 12, n_cities: 150, ..CorpusConfig::default() })
}

fn bench_search(c: &mut Criterion) {
    let corpus = corpus();
    c.bench_function("search/build-index-400-docs", |b| {
        b.iter(|| InvertedIndex::build(black_box(corpus.docs.iter())).len())
    });
    let ix = InvertedIndex::build(corpus.docs.iter());
    c.bench_function("search/bm25-3-terms-top10", |b| {
        b.iter(|| ix.search(black_box("average temperature Madison"), 10).len())
    });
}

fn temps_db(corpus: &Corpus) -> Database {
    let db = Database::in_memory();
    db.create_table(
        TableSchema::new(
            "temps",
            vec![
                Column::new("city", DataType::Text),
                Column::new("month", DataType::Int),
                Column::new("temp", DataType::Int),
            ],
            &["city", "month"],
            &["city"],
        )
        .unwrap(),
    )
    .unwrap();
    let tx = db.begin();
    for ct in &corpus.truth.cities {
        for (m, t) in ct.monthly_temp_f.iter().enumerate() {
            db.insert(
                tx,
                "temps",
                vec![ct.name.as_str().into(), Value::Int(m as i64 + 1), Value::Int(*t as i64)],
            )
            .unwrap();
        }
    }
    db.commit(tx).unwrap();
    db
}

fn bench_engine(c: &mut Criterion) {
    let corpus = corpus();
    let db = temps_db(&corpus);
    let name = corpus.truth.cities[0].name.clone();
    let paper_query = Query::scan("temps")
        .filter(vec![
            Predicate::Eq("city".into(), name.as_str().into()),
            Predicate::Ge("month".into(), Value::Int(3)),
            Predicate::Le("month".into(), Value::Int(9)),
        ])
        .aggregate(None, AggFn::Avg, "temp");
    c.bench_function("engine/avg-march-september-1800-rows", |b| {
        b.iter(|| execute(&db, black_box(&paper_query)).unwrap())
    });
    let group = Query::scan("temps").aggregate(Some("month"), AggFn::Avg, "temp");
    c.bench_function("engine/group-by-month", |b| {
        b.iter(|| execute(&db, black_box(&group)).unwrap().rows.len())
    });
    let join = Query::scan("temps")
        .filter(vec![Predicate::Eq("month".into(), Value::Int(7))])
        .join(
            Query::scan("temps").filter(vec![Predicate::Eq("month".into(), Value::Int(1))]),
            "city",
            "city",
        )
        .project(&["city", "temp", "right.temp"]);
    c.bench_function("engine/self-join-150x150", |b| {
        b.iter(|| execute(&db, black_box(&join)).unwrap().rows.len())
    });
}

fn bench_translate(c: &mut Criterion) {
    let corpus = corpus();
    let db = temps_db(&corpus);
    c.bench_function("translate/build-from-db", |b| {
        b.iter(|| Translator::from_database(black_box(&db)))
    });
    let tr = Translator::from_database(&db);
    let q = format!("average temp {}", corpus.truth.cities[0].name);
    c.bench_function("translate/keywords-to-candidates", |b| {
        b.iter(|| tr.translate(black_box(&q), 5).len())
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_search, bench_engine, bench_translate
}
criterion_main!(benches);
