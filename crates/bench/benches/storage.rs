//! Criterion microbenchmarks for the storage layer: delta encoding, WAL,
//! snapshot store, and the structured store's hot paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use quarry_storage::{delta, Column, DataType, Database, SnapshotStore, TableSchema, Value, Wal};
use std::hint::black_box;

fn page(lines: usize, edit: usize) -> String {
    (0..lines)
        .map(|i| {
            if i == edit % lines {
                format!("edited line {edit} of the page\n")
            } else {
                format!("stable line {i} with some content\n")
            }
        })
        .collect()
}

fn bench_delta(c: &mut Criterion) {
    let base = page(200, 0);
    let target = page(200, 57);
    c.bench_function("delta/diff-200-lines", |b| {
        b.iter(|| delta::diff(black_box(&base), black_box(&target)))
    });
    let d = delta::diff(&base, &target);
    c.bench_function("delta/apply-200-lines", |b| {
        b.iter(|| delta::apply(black_box(&d), black_box(&base)).unwrap())
    });
}

fn bench_snapshot_store(c: &mut Criterion) {
    c.bench_function("snapshot/put-30-versions", |b| {
        b.iter_batched(
            || SnapshotStore::new(16),
            |mut s| {
                for day in 0..30 {
                    s.put("page", &page(100, day));
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    let mut s = SnapshotStore::new(16);
    for day in 0..30 {
        s.put("page", &page(100, day));
    }
    c.bench_function("snapshot/get-mid-of-30", |b| {
        b.iter(|| s.get(black_box("page"), black_box(17)).unwrap())
    });
}

fn bench_wal(c: &mut Criterion) {
    let p = std::env::temp_dir().join(format!("quarry-bench-{}.wal", std::process::id()));
    let payload = vec![0xABu8; 256];
    c.bench_function("wal/append-256B-unsynced", |b| {
        let _ = std::fs::remove_file(&p);
        let mut wal = Wal::open(&p).unwrap();
        b.iter(|| wal.append(black_box(&payload)).unwrap());
    });
    let _ = std::fs::remove_file(&p);
    {
        let mut wal = Wal::open(&p).unwrap();
        for _ in 0..10_000 {
            wal.append(&payload).unwrap();
        }
        wal.sync().unwrap();
    }
    c.bench_function("wal/replay-10k-records", |b| {
        b.iter(|| Wal::replay(black_box(&p)).unwrap().len())
    });
    let _ = std::fs::remove_file(&p);
}

fn test_db(n: usize) -> Database {
    let db = Database::in_memory();
    db.create_table(
        TableSchema::new(
            "t",
            vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Text),
                Column::new("n", DataType::Int),
            ],
            &["k"],
            &["n"],
        )
        .unwrap(),
    )
    .unwrap();
    let tx = db.begin();
    for i in 0..n {
        db.insert(
            tx,
            "t",
            vec![Value::Int(i as i64), format!("value {i}").into(), Value::Int((i % 100) as i64)],
        )
        .unwrap();
    }
    db.commit(tx).unwrap();
    db
}

fn bench_database(c: &mut Criterion) {
    let db = test_db(10_000);
    c.bench_function("db/point-get", |b| {
        b.iter(|| {
            let tx = db.begin();
            let r = db.get(tx, "t", &[Value::Int(black_box(4242))]).unwrap();
            db.commit(tx).unwrap();
            r
        })
    });
    c.bench_function("db/index-probe-100-rows", |b| {
        b.iter(|| {
            let tx = db.begin();
            let rows = db.index_lookup(tx, "t", "n", &Value::Int(black_box(7))).unwrap();
            db.commit(tx).unwrap();
            rows.len()
        })
    });
    c.bench_function("db/scan-10k", |b| b.iter(|| db.scan_autocommit("t").unwrap().len()));
    // Key source survives criterion re-invoking the setup closure.
    static NEXT_KEY: std::sync::atomic::AtomicI64 = std::sync::atomic::AtomicI64::new(1_000_000);
    c.bench_function("db/insert-commit", |b| {
        b.iter(|| {
            let k = NEXT_KEY.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            db.insert_autocommit("t", vec![Value::Int(k), "x".into(), Value::Int(1)]).unwrap()
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_delta, bench_snapshot_store, bench_wal, bench_database
}
criterion_main!(benches);
