//! Criterion microbenchmarks for the MapReduce physical layer, including
//! the cost of failure-driven re-execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quarry_cluster::mapreduce::{run, FaultPlan, JobConfig};
use quarry_corpus::{Corpus, CorpusConfig};
use quarry_extract::pipeline::ExtractorSet;

fn bench_wordcount_scaling(c: &mut Criterion) {
    let inputs: Vec<String> = (0..400)
        .map(|i| format!("alpha beta gamma token{} token{} shared words", i, i % 17))
        .collect();
    let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    let mut group = c.benchmark_group("mapreduce/wordcount-400-docs");
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            let cfg = JobConfig { workers: w, partitions: 0, faults: FaultPlan::none() };
            b.iter(|| {
                run(
                    &refs,
                    |t: &&str| t.split_whitespace().map(|x| (x.to_string(), 1usize)).collect(),
                    |k: &String, vs: Vec<usize>| vec![(k.clone(), vs.len())],
                    &cfg,
                )
                .0
                .len()
            })
        });
    }
    group.finish();
}

fn bench_extraction_job(c: &mut Criterion) {
    let corpus = Corpus::generate(&CorpusConfig { seed: 13, ..CorpusConfig::default() });
    let mut group = c.benchmark_group("mapreduce/ie-job-240-docs");
    group.sample_size(10);
    for (label, rate) in [("no-faults", 0.0), ("20pct-faults", 0.2)] {
        group.bench_function(label, |b| {
            let cfg = JobConfig { workers: 4, partitions: 4, faults: FaultPlan::rate(rate, 3) };
            b.iter(|| {
                run(
                    &corpus.docs,
                    |d: &quarry_corpus::Document| {
                        ExtractorSet::standard()
                            .extract_doc(d)
                            .into_iter()
                            .map(|e| (e.attribute, 1usize))
                            .collect()
                    },
                    |k: &String, vs: Vec<usize>| vec![(k.clone(), vs.len())],
                    &cfg,
                )
                .0
                .len()
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_wordcount_scaling, bench_extraction_job
}
criterion_main!(benches);
