//! Criterion microbenchmarks for IE and II operators: the regex engine,
//! tokenizer, extractors, similarity measures, and blocking.

use criterion::{criterion_group, criterion_main, Criterion};
use quarry_corpus::{Corpus, CorpusConfig};
use quarry_exec::{ExecPool, ExecReport};
use quarry_extract::dictionary::Gazetteer;
use quarry_extract::pipeline::{extract_all, extract_all_with, ExtractorSet};
use quarry_extract::regex::Regex;
use quarry_extract::rules::standard_rules;
use quarry_extract::token::tokenize;
use quarry_extract::{infobox, rules};
use quarry_integrate::blocking;
use quarry_integrate::matcher::{decide, MatchConfig, Record};
use quarry_integrate::similarity::{jaro_winkler, levenshtein, name_similarity, qgram_jaccard};
use quarry_integrate::{score_pairs, SimCache};
use quarry_storage::Value;
use std::hint::black_box;

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig { seed: 99, ..CorpusConfig::default() })
}

fn bench_regex(c: &mut Criterion) {
    let re = Regex::new(r"\| *([a-zA-Z_][a-zA-Z0-9_]*) *= *([^\n]+)").unwrap();
    let corpus = corpus();
    let text = &corpus.docs[0].text;
    c.bench_function("regex/infobox-line-captures", |b| {
        b.iter(|| re.captures_iter(black_box(text)).len())
    });
    let re_num = Regex::new(r"-?\d+ (°F|F|degrees Fahrenheit)").unwrap();
    c.bench_function("regex/temperature-find-iter", |b| {
        b.iter(|| re_num.find_iter(black_box(text)).len())
    });
}

fn bench_tokenize(c: &mut Criterion) {
    let corpus = corpus();
    let text = &corpus.docs[0].text;
    c.bench_function("token/tokenize-city-page", |b| b.iter(|| tokenize(black_box(text)).len()));
}

fn bench_extractors(c: &mut Criterion) {
    let corpus = corpus();
    let doc = &corpus.docs[0];
    c.bench_function("extract/infobox-per-doc", |b| {
        b.iter(|| infobox::extract(black_box(doc)).len())
    });
    let rls = standard_rules();
    c.bench_function("extract/prose-rules-per-doc", |b| {
        b.iter(|| rules::extract(black_box(doc), &rls).len())
    });
    let names: Vec<&str> = corpus.truth.cities.iter().map(|x| x.name.as_str()).collect();
    let g = Gazetteer::from_names("city", names.iter().copied(), false);
    c.bench_function("extract/gazetteer-50-entries-per-doc", |b| {
        b.iter(|| g.extract(black_box(doc)).len())
    });
}

fn bench_similarity(c: &mut Criterion) {
    c.bench_function("sim/levenshtein-12ch", |b| {
        b.iter(|| levenshtein(black_box("David Smithe"), black_box("Davod Smith")))
    });
    c.bench_function("sim/jaro-winkler-12ch", |b| {
        b.iter(|| jaro_winkler(black_box("David Smithe"), black_box("Davod Smith")))
    });
    c.bench_function("sim/qgram-jaccard-12ch", |b| {
        b.iter(|| qgram_jaccard(black_box("David Smithe"), black_box("Davod Smith"), 3))
    });
    c.bench_function("sim/name-similarity-variant", |b| {
        b.iter(|| name_similarity(black_box("David Smith"), black_box("Smith, David")))
    });
}

fn bench_blocking(c: &mut Criterion) {
    let corpus = Corpus::generate(&CorpusConfig {
        seed: 7,
        n_people: 300,
        duplicate_rate: 0.4,
        ..CorpusConfig::default()
    });
    let titles: Vec<String> =
        corpus.truth.people.iter().map(|p| corpus.docs[p.doc.index()].title.clone()).collect();
    c.bench_function("blocking/key-400-records", |b| {
        b.iter(|| {
            blocking::key_blocking(black_box(&titles), |t| {
                t.rsplit(' ').next().unwrap_or("").to_lowercase()
            })
            .len()
        })
    });
    c.bench_function("blocking/sorted-neighborhood-w5", |b| {
        b.iter(|| blocking::sorted_neighborhood(black_box(&titles), |t| t.to_lowercase(), 5).len())
    });
}

/// ≥2k-document corpus for the sequential-vs-parallel comparison.
fn big_corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        seed: 11,
        n_cities: 400,
        n_people: 900,
        duplicate_rate: 0.3,
        n_companies: 300,
        n_publications: 300,
        ..CorpusConfig::default()
    })
}

fn bench_parallel_extract(c: &mut Criterion) {
    let corpus = big_corpus();
    assert!(corpus.docs.len() >= 2000, "corpus too small: {}", corpus.docs.len());
    let set = ExtractorSet::standard();
    c.bench_function("exec/extract-2k-docs-sequential", |b| {
        b.iter(|| extract_all(black_box(&corpus), &set).len())
    });
    for threads in [2, 4] {
        let pool = ExecPool::new(threads);
        c.bench_function(&format!("exec/extract-2k-docs-{threads}-threads"), |b| {
            b.iter(|| {
                let mut report = ExecReport::new();
                extract_all_with(black_box(&corpus), &set, &pool, &mut report).len()
            })
        });
    }
}

fn bench_parallel_scoring(c: &mut Criterion) {
    let corpus = big_corpus();
    let records: Vec<Record> = corpus
        .truth
        .people
        .iter()
        .take(400)
        .enumerate()
        .map(|(i, p)| {
            Record::new(
                i,
                [
                    ("name", Value::Text(p.name.clone())),
                    ("birth_year", Value::Int(p.birth_year as i64)),
                ],
            )
        })
        .collect();
    let pairs = blocking::all_pairs(records.len());
    let cfg = MatchConfig::default();
    c.bench_function("exec/score-80k-pairs-sequential", |b| {
        b.iter(|| pairs.iter().map(|&(i, j)| decide(&records[i], &records[j], &cfg).1).sum::<f64>())
    });
    for threads in [2, 4] {
        let pool = ExecPool::new(threads);
        c.bench_function(&format!("exec/score-80k-pairs-{threads}-threads"), |b| {
            b.iter(|| {
                let cache = SimCache::default();
                let mut report = ExecReport::new();
                score_pairs(&records, &pairs, &cfg, &pool, Some(&cache), &mut report).len()
            })
        });
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_regex, bench_tokenize, bench_extractors, bench_similarity, bench_blocking,
        bench_parallel_extract, bench_parallel_scoring
}
criterion_main!(benches);
