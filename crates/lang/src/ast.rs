//! QDL abstract syntax.

use quarry_exec::diag::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A full QDL program: one named pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    /// Pipeline name.
    pub name: String,
    /// Document source (currently always `corpus`; named for forward
    /// compatibility with multiple sources).
    pub source: String,
    /// Steps in program order.
    pub steps: Vec<Step>,
}

/// One pipeline step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Step {
    /// Run the named extraction operators.
    Extract {
        /// Operator names, as registered.
        extractors: Vec<String>,
    },
    /// Filter the extraction stream.
    Where {
        /// Conjunctive conditions.
        conditions: Vec<Condition>,
    },
    /// Resolve records into entities by a key attribute.
    Resolve {
        /// The attribute whose values identify entities (e.g. `name`).
        key: String,
    },
    /// Route uncertain decisions to human review.
    Curate {
        /// Budget units available.
        budget: u32,
        /// Crowd votes per question.
        votes: u32,
    },
    /// Store resolved records into a table.
    Store {
        /// Target table.
        table: String,
        /// Key attribute(s) forming the table's primary key.
        key: Vec<String>,
    },
}

/// A filter condition over the extraction stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// `attribute = "x"`.
    AttributeEq(String),
    /// `attribute IN ("x", "y")`.
    AttributeIn(Vec<String>),
    /// `confidence >= c`.
    ConfidenceGe(f64),
    /// `extractor = "name"` — keep only one operator's output.
    ExtractorEq(String),
}

impl Condition {
    /// The attribute names this condition restricts the stream to, if it is
    /// an attribute condition (the optimizer's pruning input).
    pub fn attribute_set(&self) -> Option<Vec<&str>> {
        match self {
            Condition::AttributeEq(a) => Some(vec![a.as_str()]),
            Condition::AttributeIn(attrs) => Some(attrs.iter().map(String::as_str).collect()),
            _ => None,
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::AttributeEq(a) => write!(f, "attribute = \"{a}\""),
            Condition::AttributeIn(attrs) => {
                let quoted: Vec<String> = attrs.iter().map(|a| format!("\"{a}\"")).collect();
                write!(f, "attribute IN ({})", quoted.join(", "))
            }
            Condition::ConfidenceGe(c) => write!(f, "confidence >= {c}"),
            Condition::ExtractorEq(e) => write!(f, "extractor = \"{e}\""),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Extract { extractors } => write!(f, "EXTRACT {}", extractors.join(", ")),
            Step::Where { conditions } => {
                let cs: Vec<String> = conditions.iter().map(Condition::to_string).collect();
                write!(f, "WHERE {}", cs.join(" AND "))
            }
            Step::Resolve { key } => write!(f, "RESOLVE BY {key}"),
            Step::Curate { budget, votes } => write!(f, "CURATE BUDGET {budget} VOTES {votes}"),
            Step::Store { table, key } => {
                write!(f, "STORE INTO {table} KEY {}", key.join(", "))
            }
        }
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PIPELINE {}", self.name)?;
        writeln!(f, "FROM {}", self.source)?;
        for s in &self.steps {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Byte-span table for one parsed [`Pipeline`], kept parallel to the AST
/// rather than embedded in it.
///
/// Keeping spans out of the AST preserves the derived `PartialEq`/serde
/// behaviour the print→reparse property tests rely on (two structurally
/// identical programs compare equal regardless of formatting), and spares
/// the dozens of hand-built `Pipeline` literals in tests and benches from
/// carrying positions. `parser::parse_spanned` produces both halves; the
/// indices line up one-to-one (`spans.steps[i]` describes `steps[i]`).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSpans {
    /// Span of the pipeline name identifier.
    pub name: Span,
    /// Span of the source identifier after `FROM`.
    pub source: Span,
    /// One entry per step, in program order.
    pub steps: Vec<StepSpans>,
}

/// Spans for one [`Step`], variant-matched.
#[derive(Debug, Clone, PartialEq)]
pub enum StepSpans {
    /// Spans for `EXTRACT a, b, ...`.
    Extract {
        /// The `EXTRACT` keyword.
        keyword: Span,
        /// One span per extractor name, same order as the AST list.
        extractors: Vec<Span>,
    },
    /// Spans for `WHERE c1 AND c2 ...`.
    Where {
        /// The `WHERE` keyword.
        keyword: Span,
        /// One entry per condition, same order as the AST list.
        conditions: Vec<ConditionSpans>,
    },
    /// Spans for `RESOLVE BY key`.
    Resolve {
        /// The `RESOLVE` keyword.
        keyword: Span,
        /// The key identifier.
        key: Span,
    },
    /// Spans for `CURATE BUDGET b VOTES v`.
    Curate {
        /// The `CURATE` keyword.
        keyword: Span,
        /// The budget number literal.
        budget: Span,
        /// The votes number literal.
        votes: Span,
    },
    /// Spans for `STORE INTO table KEY k1, k2`.
    Store {
        /// The `STORE` keyword.
        keyword: Span,
        /// The table identifier.
        table: Span,
        /// One span per key identifier, same order as the AST list.
        keys: Vec<Span>,
    },
}

impl StepSpans {
    /// The step's leading keyword span — the anchor used when a diagnostic
    /// is about the step as a whole.
    pub fn keyword(&self) -> Span {
        match self {
            StepSpans::Extract { keyword, .. }
            | StepSpans::Where { keyword, .. }
            | StepSpans::Resolve { keyword, .. }
            | StepSpans::Curate { keyword, .. }
            | StepSpans::Store { keyword, .. } => *keyword,
        }
    }
}

/// Spans for one [`Condition`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionSpans {
    /// The whole condition (`attribute IN ("a", "b")`).
    pub full: Span,
    /// The value literal(s): each string of an `IN` list, the single
    /// string of an `=` form, or the number of a `confidence >=` bound.
    pub values: Vec<Span>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_program() {
        let p = Pipeline {
            name: "city_facts".into(),
            source: "corpus".into(),
            steps: vec![
                Step::Extract { extractors: vec!["infobox".into(), "rules".into()] },
                Step::Where {
                    conditions: vec![
                        Condition::AttributeIn(vec!["population".into(), "state".into()]),
                        Condition::ConfidenceGe(0.6),
                    ],
                },
                Step::Resolve { key: "name".into() },
                Step::Curate { budget: 50, votes: 3 },
                Step::Store { table: "cities".into(), key: vec!["name".into()] },
            ],
        };
        let text = p.to_string();
        assert!(text.contains("PIPELINE city_facts"));
        assert!(text.contains("EXTRACT infobox, rules"));
        assert!(
            text.contains("WHERE attribute IN (\"population\", \"state\") AND confidence >= 0.6")
        );
        assert!(text.contains("CURATE BUDGET 50 VOTES 3"));
        assert!(text.contains("STORE INTO cities KEY name"));
    }

    #[test]
    fn attribute_sets() {
        assert_eq!(Condition::AttributeEq("a".into()).attribute_set(), Some(vec!["a"]));
        assert_eq!(
            Condition::AttributeIn(vec!["a".into(), "b".into()]).attribute_set(),
            Some(vec!["a", "b"])
        );
        assert_eq!(Condition::ConfidenceGe(0.5).attribute_set(), None);
    }
}
