//! QDL lexer.

use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are matched case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// Double-quoted string literal, unescaped.
    Str(String),
    /// Numeric literal.
    Number(f64),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `>=`
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Number(n) => write!(f, "{n}"),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Eq => write!(f, "="),
            Token::Ge => write!(f, ">="),
        }
    }
}

/// Lexing error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// Description.
    pub message: String,
}

/// Tokenize a QDL program. `--` starts a comment to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '>' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Ge);
                i += 2;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError { at: i, message: "unterminated string".into() });
                }
                out.push(Token::Str(src[start..j].to_string()));
                i = j + 1;
            }
            _ if c.is_ascii_digit()
                || (c == '.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) =>
            {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                let text = &src[start..i];
                let n: f64 = text
                    .parse()
                    .map_err(|_| LexError { at: start, message: format!("bad number {text}") })?;
                out.push(Token::Number(n));
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'-'
                        || bytes[i] == b':')
                {
                    // Allow '-' inside identifiers (extractor names like
                    // `prose-rule`) but not a trailing comment starter.
                    if bytes[i] == b'-' && bytes.get(i + 1) == Some(&b'-') {
                        break;
                    }
                    i += 1;
                }
                out.push(Token::Ident(src[start..i].to_string()));
            }
            _ => {
                return Err(LexError { at: i, message: format!("unexpected character {c:?}") });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_full_program() {
        let toks = lex("PIPELINE p\nFROM corpus -- comment\nEXTRACT infobox, prose-rule\nWHERE confidence >= 0.6").unwrap();
        assert!(toks.contains(&Token::Ident("PIPELINE".into())));
        assert!(toks.contains(&Token::Ident("prose-rule".into())));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Number(0.6)));
        assert!(!toks.iter().any(|t| matches!(t, Token::Ident(s) if s == "comment")));
    }

    #[test]
    fn strings_and_punctuation() {
        let toks = lex("attribute IN (\"population\", \"state\")").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("attribute".into()),
                Token::Ident("IN".into()),
                Token::LParen,
                Token::Str("population".into()),
                Token::Comma,
                Token::Str("state".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("abc \"unterminated").unwrap_err();
        assert_eq!(err.at, 4);
        let err = lex("abc @").unwrap_err();
        assert!(err.message.contains('@'));
    }

    #[test]
    fn numbers_integer_and_decimal() {
        let toks = lex("50 0.75").unwrap();
        assert_eq!(toks, vec![Token::Number(50.0), Token::Number(0.75)]);
    }

    #[test]
    fn empty_and_comment_only() {
        assert!(lex("").unwrap().is_empty());
        assert!(lex("-- nothing here\n-- more").unwrap().is_empty());
    }
}
