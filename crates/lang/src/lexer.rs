//! QDL lexer.

use quarry_exec::diag::{line_col_of, Span};
use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are matched case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// Double-quoted string literal, unescaped.
    Str(String),
    /// Numeric literal.
    Number(f64),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `>=`
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Number(n) => write!(f, "{n}"),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Eq => write!(f, "="),
            Token::Ge => write!(f, ">="),
        }
    }
}

/// A token plus the byte range of the source text it was lexed from.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token itself.
    pub tok: Token,
    /// Byte range in the original source. For string literals the span
    /// covers the quotes too, so carets underline what the user typed.
    pub span: Span,
}

/// Lexing error with byte position and resolved line/column.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// 1-based line of the offending character.
    pub line: usize,
    /// 1-based column of the offending character.
    pub col: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a QDL program. `--` starts a comment to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    Ok(lex_spanned(src)?.into_iter().map(|st| st.tok).collect())
}

/// Tokenize a QDL program, keeping each token's byte span.
pub fn lex_spanned(src: &str) -> Result<Vec<SpannedToken>, LexError> {
    let err = |at: usize, message: String| {
        let (line, col) = line_col_of(src, at);
        LexError { at, line, col, message }
    };
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                out.push(SpannedToken { tok: Token::Comma, span: Span::new(i, i + 1) });
                i += 1;
            }
            '(' => {
                out.push(SpannedToken { tok: Token::LParen, span: Span::new(i, i + 1) });
                i += 1;
            }
            ')' => {
                out.push(SpannedToken { tok: Token::RParen, span: Span::new(i, i + 1) });
                i += 1;
            }
            '=' => {
                out.push(SpannedToken { tok: Token::Eq, span: Span::new(i, i + 1) });
                i += 1;
            }
            '>' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(SpannedToken { tok: Token::Ge, span: Span::new(i, i + 2) });
                i += 2;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(err(i, "unterminated string".into()));
                }
                out.push(SpannedToken {
                    tok: Token::Str(src[start..j].to_string()),
                    span: Span::new(i, j + 1),
                });
                i = j + 1;
            }
            _ if c.is_ascii_digit()
                || (c == '.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) =>
            {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                let text = &src[start..i];
                let n: f64 = text.parse().map_err(|_| err(start, format!("bad number {text}")))?;
                out.push(SpannedToken { tok: Token::Number(n), span: Span::new(start, i) });
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'-'
                        || bytes[i] == b':')
                {
                    // Allow '-' inside identifiers (extractor names like
                    // `prose-rule`) but not a trailing comment starter.
                    if bytes[i] == b'-' && bytes.get(i + 1) == Some(&b'-') {
                        break;
                    }
                    i += 1;
                }
                out.push(SpannedToken {
                    tok: Token::Ident(src[start..i].to_string()),
                    span: Span::new(start, i),
                });
            }
            _ => {
                return Err(err(i, format!("unexpected character {c:?}")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_full_program() {
        let toks = lex("PIPELINE p\nFROM corpus -- comment\nEXTRACT infobox, prose-rule\nWHERE confidence >= 0.6").unwrap();
        assert!(toks.contains(&Token::Ident("PIPELINE".into())));
        assert!(toks.contains(&Token::Ident("prose-rule".into())));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Number(0.6)));
        assert!(!toks.iter().any(|t| matches!(t, Token::Ident(s) if s == "comment")));
    }

    #[test]
    fn strings_and_punctuation() {
        let toks = lex("attribute IN (\"population\", \"state\")").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("attribute".into()),
                Token::Ident("IN".into()),
                Token::LParen,
                Token::Str("population".into()),
                Token::Comma,
                Token::Str("state".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("abc \"unterminated").unwrap_err();
        assert_eq!(err.at, 4);
        assert_eq!((err.line, err.col), (1, 5));
        let err = lex("abc @").unwrap_err();
        assert!(err.message.contains('@'));
    }

    #[test]
    fn lex_error_display_has_line_and_column() {
        let err = lex("PIPELINE p\nFROM @corpus").unwrap_err();
        assert_eq!((err.line, err.col), (2, 6));
        assert_eq!(err.to_string(), "lex error at 2:6: unexpected character '@'");
    }

    #[test]
    fn spans_cover_the_lexed_text() {
        let src = "EXTRACT infobox\nWHERE attribute = \"name\"";
        let toks = lex_spanned(src).unwrap();
        for st in &toks {
            let text = &src[st.span.start..st.span.end];
            match &st.tok {
                Token::Ident(s) => assert_eq!(text, s),
                Token::Str(s) => assert_eq!(text, format!("\"{s}\"")),
                _ => {}
            }
        }
        let name = toks.iter().find(|t| t.tok == Token::Str("name".into())).unwrap();
        assert_eq!(&src[name.span.start..name.span.end], "\"name\"");
    }

    #[test]
    fn numbers_integer_and_decimal() {
        let toks = lex("50 0.75").unwrap();
        assert_eq!(toks, vec![Token::Number(50.0), Token::Number(0.75)]);
    }

    #[test]
    fn empty_and_comment_only() {
        assert!(lex("").unwrap().is_empty());
        assert!(lex("-- nothing here\n-- more").unwrap().is_empty());
    }
}
