//! The QDL executor.
//!
//! Runs a [`LogicalPlan`] over a document set: extraction (with a
//! materialization cache keyed by (doc, operator)), stream filtering,
//! entity resolution (blocking + pairwise matching + union-find), human
//! curation of the matcher's uncertain band, and storage into the
//! structured store. Every step reports counters in [`ExecStats`] — the
//! numbers E3/E5 plot.

use crate::ast::Condition;
use crate::plan::{LogicalPlan, PlanOp};
use crate::registry::ExtractorRegistry;
use quarry_corpus::{DocId, Document};
use quarry_exec::{ExecPool, ExecReport};
use quarry_extract::Extraction;
use quarry_hi::{Answer, Crowd, Question, QuestionKind};
use quarry_integrate::blocking;
use quarry_integrate::matcher::{MatchConfig, MatchDecision, Record};
use quarry_integrate::parallel::{score_pairs, SimCache};
use quarry_integrate::UnionFind;
use quarry_storage::{Column, DataType, Database, StorageError, TableSchema, Value};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Executor error.
#[derive(Debug)]
pub enum ExecError {
    /// Plan references an unregistered operator.
    UnknownExtractor(String),
    /// Step sequence invalid (e.g. `STORE` before `RESOLVE`).
    InvalidPlan(String),
    /// Static analysis found error-severity diagnostics; the plan was
    /// refused before any document was read.
    Rejected(quarry_exec::LintReport),
    /// Storage failure.
    Storage(StorageError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownExtractor(e) => write!(f, "unknown extractor: {e}"),
            ExecError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            ExecError::Rejected(report) => {
                write!(
                    f,
                    "plan rejected by static analysis ({} error(s)):\n{}",
                    report.error_count(),
                    report.render()
                )
            }
            ExecError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

/// Ground-truth oracle for simulated curation: do two documents describe
/// the same real-world entity? Supplied by experiment harnesses (the
/// corpus knows); `None` disables curation.
pub type TruthOracle = Arc<dyn Fn(DocId, DocId) -> bool + Send + Sync>;

/// Everything a plan needs to run.
pub struct ExecContext<'a> {
    /// The documents (the `FROM corpus` source).
    pub docs: &'a [Document],
    /// The operator library.
    pub registry: &'a ExtractorRegistry,
    /// Target structured store.
    pub db: &'a Database,
    /// Simulated users for `CURATE` (optional).
    pub crowd: Option<Crowd>,
    /// Ground truth driving the simulated users (optional).
    pub truth: Option<TruthOracle>,
    /// Materialization cache: (doc, extractor) → extractions. Shared across
    /// plan runs to model the blueprint's "intermediate structured data
    /// kept around for optimization purposes".
    pub cache: HashMap<(DocId, String), Vec<Extraction>>,
    /// Executor pool for the data-parallel stages. Results are identical
    /// at every thread count; `ExecPool::sequential()` runs inline.
    pub pool: ExecPool,
    /// Per-stage instrumentation, appended to on every run.
    pub report: ExecReport,
}

impl<'a> ExecContext<'a> {
    /// Context without HI, running inline on the calling thread.
    pub fn new(docs: &'a [Document], registry: &'a ExtractorRegistry, db: &'a Database) -> Self {
        ExecContext {
            docs,
            registry,
            db,
            crowd: None,
            truth: None,
            cache: HashMap::new(),
            pool: ExecPool::sequential(),
            report: ExecReport::new(),
        }
    }

    /// Run the data-parallel stages on `pool` instead of inline.
    pub fn with_pool(mut self, pool: ExecPool) -> Self {
        self.pool = pool;
        self
    }
}

/// Per-run execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecStats {
    /// Extractor invocations actually executed.
    pub extractor_runs: usize,
    /// Invocations served from the materialization cache.
    pub cache_hits: usize,
    /// Extractions entering the stream (post-dedup).
    pub extractions: usize,
    /// Extractions removed by filters.
    pub filtered_out: usize,
    /// Per-document records entering resolution.
    pub records: usize,
    /// Candidate pairs scored by the matcher.
    pub pairs_scored: usize,
    /// Pairs in the matcher's uncertain band.
    pub uncertain_pairs: usize,
    /// HI questions asked.
    pub questions_asked: usize,
    /// HI budget units spent.
    pub hi_spent: u32,
    /// Entities after merging.
    pub entities: usize,
    /// Rows written to the store.
    pub rows_stored: usize,
    /// Cost units consumed by extraction (registry cost × runs).
    pub cost_units: f64,
}

/// A per-document record mid-resolution.
#[derive(Debug, Clone)]
struct DocRecord {
    doc: DocId,
    key: String,
    fields: BTreeMap<String, (Value, f64)>,
}

enum State {
    Stream(Vec<Extraction>),
    Resolved {
        records: Vec<DocRecord>,
        uf: UnionFind,
        pending: Vec<(usize, usize, f64)>,
        key_attr: String,
    },
}

/// The executor.
pub struct Executor;

impl Executor {
    /// Run a plan to completion; returns statistics.
    ///
    /// The plan is statically checked first — an unknown extractor or an
    /// error-severity lint diagnostic ([`crate::lint`]) rejects it before
    /// a single document is read or a single extractor is invoked.
    pub fn run(plan: &LogicalPlan, ctx: &mut ExecContext<'_>) -> Result<ExecStats, ExecError> {
        // Gate 1: every referenced operator must exist. Checked upfront so
        // the failure arrives before (not midway through) extraction.
        for op in &plan.ops {
            let PlanOp::Extract { extractors } = op else { continue };
            for name in extractors {
                if ctx.registry.get(name).is_none() {
                    return Err(ExecError::UnknownExtractor(name.clone()));
                }
            }
        }
        // Gate 2: the static analyzer's error-severity codes (QL002–QL005)
        // reject the plan outright; warnings pass through.
        if let Some(report) = crate::lint::analyze_plan(plan, ctx.registry, None) {
            if !report.is_clean() {
                return Err(ExecError::Rejected(report));
            }
        }

        let mut stats = ExecStats::default();
        let mut state = State::Stream(Vec::new());

        for op in &plan.ops {
            match op {
                PlanOp::Extract { extractors } => {
                    let State::Stream(stream) = &mut state else {
                        return Err(ExecError::InvalidPlan("EXTRACT after RESOLVE".into()));
                    };
                    for name in extractors {
                        let reg = ctx
                            .registry
                            .get(name)
                            .ok_or_else(|| ExecError::UnknownExtractor(name.clone()))?
                            .clone();
                        // Fan the cache misses out on the pool in document
                        // order, then walk the documents sequentially,
                        // splicing cached and fresh results back together.
                        // The stream therefore grows in exactly the order
                        // the sequential per-document loop produced.
                        let uncached: Vec<&Document> = ctx
                            .docs
                            .iter()
                            .filter(|d| !ctx.cache.contains_key(&(d.id, name.clone())))
                            .collect();
                        let fresh: Vec<(Vec<Extraction>, std::time::Duration)> = ctx.pool.map(
                            &format!("exec/extract:{name}"),
                            &uncached,
                            |_, doc| {
                                let t0 = Instant::now();
                                let exts = (reg.run)(doc);
                                (exts, t0.elapsed())
                            },
                            &mut ctx.report,
                        );
                        let mut fresh = fresh.into_iter();
                        for doc in ctx.docs {
                            let cache_key = (doc.id, name.clone());
                            if let Some(cached) = ctx.cache.get(&cache_key) {
                                stats.cache_hits += 1;
                                stream.extend(cached.iter().cloned());
                            } else {
                                // The walk can only miss on documents the
                                // pre-loop filter also missed (the cache
                                // only grows), so `fresh` cannot run dry;
                                // a typed error keeps a broken invariant
                                // from panicking a server worker.
                                let (exts, took) = fresh.next().ok_or_else(|| {
                                    ExecError::InvalidPlan(format!(
                                        "extractor {name}: fewer pooled results than uncached documents"
                                    ))
                                })?;
                                ctx.report.record_operator(name, took);
                                stats.extractor_runs += 1;
                                stats.cost_units += reg.cost;
                                ctx.cache.insert(cache_key, exts.clone());
                                stream.extend(exts);
                            }
                        }
                    }
                    // Parallel stable-equivalent sort + dedup: identical to
                    // `quarry_extract::model::dedup` (see that module).
                    let sorted = ctx.pool.sort_by(
                        "exec/dedup",
                        std::mem::take(stream),
                        quarry_extract::model::dedup_order,
                        &mut ctx.report,
                    );
                    *stream = quarry_extract::model::dedup_sorted(sorted);
                    stats.extractions = stream.len();
                }
                PlanOp::Filter { conditions } => {
                    let State::Stream(stream) = &mut state else {
                        return Err(ExecError::InvalidPlan("WHERE after RESOLVE".into()));
                    };
                    let before = stream.len();
                    stream.retain(|e| conditions.iter().all(|c| eval_condition(c, e)));
                    stats.filtered_out += before - stream.len();
                }
                PlanOp::Resolve { key } => {
                    let State::Stream(stream) = &mut state else {
                        return Err(ExecError::InvalidPlan("duplicate RESOLVE".into()));
                    };
                    let records = build_doc_records(stream, key);
                    stats.records = records.len();
                    let (uf, pending, scored) =
                        match_records(&records, key, &ctx.pool, &mut ctx.report);
                    stats.pairs_scored = scored;
                    stats.uncertain_pairs = pending.len();
                    state = State::Resolved { records, uf, pending, key_attr: key.clone() };
                }
                PlanOp::Curate { budget, votes } => {
                    let State::Resolved { records, uf, pending, .. } = &mut state else {
                        return Err(ExecError::InvalidPlan("CURATE before RESOLVE".into()));
                    };
                    let (Some(crowd), Some(truth)) = (ctx.crowd.as_mut(), ctx.truth.as_ref())
                    else {
                        continue; // no HI capability wired: curation is a no-op
                    };
                    // Most uncertain first (closest to the decision boundary).
                    pending.sort_by(|a, b| {
                        (a.2 - 0.675)
                            .abs()
                            .partial_cmp(&(b.2 - 0.675).abs())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    let mut spent = 0u32;
                    for (qid, (i, j, _)) in pending.iter().enumerate() {
                        if spent >= *budget {
                            break;
                        }
                        let (a, b) = (&records[*i], &records[*j]);
                        let q = Question {
                            id: qid,
                            kind: QuestionKind::VerifyMatch {
                                left: render_record(a),
                                right: render_record(b),
                            },
                            truth: Answer::Bool(truth(a.doc, b.doc)),
                        };
                        let outcome = crowd.ask_majority(&q, *votes as usize);
                        spent += outcome.cost;
                        stats.questions_asked += 1;
                        if outcome.answer.as_bool() {
                            uf.union(*i, *j);
                        }
                    }
                    stats.hi_spent += spent;
                    pending.clear();
                }
                PlanOp::Store { table, key } => {
                    let State::Resolved { records, uf, key_attr, .. } = &mut state else {
                        return Err(ExecError::InvalidPlan("STORE before RESOLVE".into()));
                    };
                    let entities = merge_clusters(records, uf);
                    stats.entities = entities.len();
                    stats.rows_stored = store_entities(ctx.db, table, key, key_attr, &entities)?;
                }
            }
        }
        Ok(stats)
    }
}

fn eval_condition(c: &Condition, e: &Extraction) -> bool {
    match c {
        Condition::AttributeEq(a) => &e.attribute == a,
        Condition::AttributeIn(attrs) => attrs.contains(&e.attribute),
        Condition::ConfidenceGe(t) => e.confidence >= *t,
        Condition::ExtractorEq(name) => e.extractor == name,
    }
}

fn build_doc_records(stream: &[Extraction], key: &str) -> Vec<DocRecord> {
    let mut per_doc: BTreeMap<DocId, BTreeMap<String, (Value, f64)>> = BTreeMap::new();
    for e in stream {
        let slot = per_doc.entry(e.doc).or_default();
        let entry = slot.entry(e.attribute.clone()).or_insert((e.value.clone(), e.confidence));
        if e.confidence > entry.1 {
            *entry = (e.value.clone(), e.confidence);
        }
    }
    per_doc
        .into_iter()
        .filter_map(|(doc, fields)| {
            let key_val = fields.get(key)?.0.to_string();
            Some(DocRecord { doc, key: key_val, fields })
        })
        .collect()
}

fn match_records(
    records: &[DocRecord],
    key: &str,
    pool: &ExecPool,
    report: &mut ExecReport,
) -> (UnionFind, Vec<(usize, usize, f64)>, usize) {
    let cfg = MatchConfig { name_field: key.to_string(), ..MatchConfig::default() };
    // Materialize match records once (the sequential loop rebuilt them per
    // pair; construction is pure, so building each exactly once is
    // observationally identical and strictly less work).
    let match_recs: Vec<Record> = pool.map(
        "exec/build-records",
        records,
        |i, r| {
            let mut fields: BTreeMap<String, Value> =
                r.fields.iter().map(|(k, (v, _))| (k.clone(), v.clone())).collect();
            fields.insert(key.to_string(), Value::Text(r.key.clone()));
            Record { id: i, fields }
        },
        report,
    );
    // Blocking: all pairs for small sets; last-token key blocking beyond.
    let pairs: Vec<(usize, usize)> = if records.len() <= 60 {
        blocking::all_pairs(records.len())
    } else {
        blocking::key_blocking(records, |r| {
            r.key
                .rsplit(' ')
                .next()
                .unwrap_or("")
                .trim_matches(|c: char| !c.is_alphanumeric())
                .to_lowercase()
        })
    };
    // Score all candidate pairs on the pool (decisions come back in pair
    // order), then apply union-find merges sequentially in that same
    // order — the part that actually has to be serial.
    let cache = SimCache::default();
    let decisions = score_pairs(&match_recs, &pairs, &cfg, pool, Some(&cache), report);
    let mut uf = UnionFind::new(records.len());
    let mut pending = Vec::new();
    let mut scored = 0usize;
    for ((i, j), d, score) in decisions {
        scored += 1;
        match d {
            MatchDecision::Match => {
                uf.union(i, j);
            }
            MatchDecision::Uncertain => pending.push((i, j, score)),
            MatchDecision::NonMatch => {}
        }
    }
    (uf, pending, scored)
}

fn render_record(r: &DocRecord) -> String {
    let fields: Vec<String> = r.fields.iter().map(|(k, (v, _))| format!("{k}={v}")).collect();
    format!("{} [{}]", r.key, fields.join(", "))
}

/// Merge union-find clusters into canonical entities: per attribute, the
/// highest-confidence value wins; the longest key string is the canonical
/// name (abbreviations lose to full forms).
fn merge_clusters(records: &[DocRecord], uf: &mut UnionFind) -> Vec<DocRecord> {
    let mut clusters: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..records.len() {
        clusters.entry(uf.find(i)).or_default().push(i);
    }
    clusters
        .into_values()
        .map(|members| {
            let mut fields: BTreeMap<String, (Value, f64)> = BTreeMap::new();
            let mut key = String::new();
            let mut doc = records[members[0]].doc;
            for &m in &members {
                let r = &records[m];
                if r.key.len() > key.len() {
                    key = r.key.clone();
                    doc = r.doc;
                }
                for (attr, (v, conf)) in &r.fields {
                    let entry = fields.entry(attr.clone()).or_insert((v.clone(), *conf));
                    if *conf > entry.1 {
                        *entry = (v.clone(), *conf);
                    }
                }
            }
            DocRecord { doc, key, fields }
        })
        .collect()
}

fn infer_type(values: &[&Value]) -> DataType {
    let non_null: Vec<&&Value> = values.iter().filter(|v| !v.is_null()).collect();
    if non_null.is_empty() {
        return DataType::Text;
    }
    if non_null.iter().all(|v| matches!(v, Value::Int(_))) {
        DataType::Int
    } else if non_null.iter().all(|v| v.as_f64().is_some()) {
        DataType::Float
    } else {
        DataType::Text
    }
}

fn store_entities(
    db: &Database,
    table: &str,
    key_cols: &[String],
    key_attr: &str,
    entities: &[DocRecord],
) -> Result<usize, ExecError> {
    // Column set: declared keys first, then every other attribute sorted.
    let mut attrs: Vec<String> = entities
        .iter()
        .flat_map(|e| e.fields.keys().cloned())
        .filter(|a| a != key_attr && !key_cols.contains(a))
        .collect();
    attrs.sort();
    attrs.dedup();

    // A keyless STORE is a malformed plan, not a panic: reject it before
    // the first-key lookup below can index out of bounds.
    let Some(first_key) = key_cols.first() else {
        return Err(ExecError::InvalidPlan("STORE requires at least one KEY column".into()));
    };
    let value_of = |e: &DocRecord, col: &str| -> Value {
        if col == key_attr || col == first_key {
            return Value::Text(e.key.clone());
        }
        e.fields.get(col).map(|(v, _)| v.clone()).unwrap_or(Value::Null)
    };

    let mut columns = Vec::new();
    for k in key_cols {
        columns.push(Column::new(k, DataType::Text));
    }
    for a in &attrs {
        let sample: Vec<&Value> =
            entities.iter().filter_map(|e| e.fields.get(a).map(|(v, _)| v)).collect();
        columns.push(Column::nullable(a, infer_type(&sample)));
    }
    let key_refs: Vec<&str> = key_cols.iter().map(String::as_str).collect();
    let schema =
        TableSchema::new(table, columns.clone(), &key_refs, &[]).map_err(ExecError::Storage)?;
    if db.schema(table).is_err() {
        db.create_table(schema.clone())?;
    }

    let tx = db.begin();
    let mut stored = 0usize;
    for e in entities {
        let row: Vec<Value> = columns
            .iter()
            .map(|c| {
                let v = value_of(e, &c.name);
                // Coerce to the inferred column type where needed.
                match (&v, c.dtype) {
                    (Value::Int(i), DataType::Float) => Value::Float(*i as f64),
                    (Value::Null, _) => Value::Null,
                    (other, DataType::Text) if other.as_text().is_none() => {
                        Value::Text(other.to_string())
                    }
                    _ => v,
                }
            })
            .collect();
        if schema.validate(&row).is_err() {
            continue; // a type-conflicted entity: skip rather than poison the batch
        }
        let key_vals = schema.key_of(&row);
        let result = match db.get(tx, table, &key_vals) {
            Ok(_) => db.update(tx, table, &key_vals, row),
            Err(_) => db.insert(tx, table, row).map(|_| ()),
        };
        if result.is_ok() {
            stored += 1;
        }
    }
    db.commit(tx)?;
    Ok(stored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::plan::{optimize, LogicalPlan};
    use quarry_corpus::{Corpus, CorpusConfig, NoiseConfig};
    use quarry_hi::oracle::panel;

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusConfig {
            noise: NoiseConfig { name_variant: 1.0, ..NoiseConfig::none() },
            duplicate_rate: 0.5,
            ..CorpusConfig::tiny(13)
        })
    }

    fn run_src(src: &str, corpus: &Corpus, db: &Database) -> ExecStats {
        let reg = ExtractorRegistry::standard();
        let plan = LogicalPlan::from_pipeline(&parse(src).unwrap());
        let plan = optimize(&plan, &reg);
        let mut ctx = ExecContext::new(&corpus.docs, &reg, db);
        Executor::run(&plan, &mut ctx).unwrap()
    }

    #[test]
    fn end_to_end_city_pipeline_stores_rows() {
        let c = corpus();
        let db = Database::in_memory();
        let stats = run_src(
            r#"PIPELINE cities FROM corpus
EXTRACT infobox, rules
WHERE attribute IN ("name", "state", "population", "founded")
RESOLVE BY name
STORE INTO cities KEY name"#,
            &c,
            &db,
        );
        assert!(stats.rows_stored > 0);
        assert!(stats.extractions > 0);
        let rows = db.scan_autocommit("cities").unwrap();
        assert_eq!(rows.len(), stats.rows_stored);
        // Stored city names include real ground-truth cities.
        let schema = db.schema("cities").unwrap();
        let ni = schema.column_index("name").unwrap();
        let names: Vec<String> = rows.iter().map(|r| r[ni].to_string()).collect();
        assert!(c.truth.cities.iter().any(|cf| names.contains(&cf.name)));
    }

    #[test]
    fn keyless_store_is_a_typed_error_not_a_panic() {
        let db = Database::in_memory();
        match store_entities(&db, "t", &[], "name", &[]) {
            Err(ExecError::InvalidPlan(msg)) => assert!(msg.contains("KEY"), "{msg}"),
            other => panic!("expected InvalidPlan, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_document_ids_do_not_break_the_extract_splice() {
        // Two documents with the same id: the pre-loop uncached filter
        // counts both, but the walk consumes only one pooled result (the
        // second occurrence hits the cache the first one populated). The
        // splice must neither panic nor run the iterator dry.
        let c = corpus();
        let mut docs = c.docs.clone();
        docs.push(docs[0].clone());
        let db = Database::in_memory();
        let reg = ExtractorRegistry::standard();
        let plan = LogicalPlan::from_pipeline(
            &parse("PIPELINE p FROM corpus EXTRACT infobox RESOLVE BY name STORE INTO t KEY name")
                .unwrap(),
        );
        let plan = optimize(&plan, &reg);
        let mut ctx = ExecContext::new(&docs, &reg, &db);
        let stats = Executor::run(&plan, &mut ctx).unwrap();
        assert!(stats.cache_hits >= 1, "duplicate id must be served from cache: {stats:?}");
    }

    #[test]
    fn filters_reduce_the_stream() {
        let c = corpus();
        let db = Database::in_memory();
        let stats = run_src(
            r#"PIPELINE p FROM corpus
EXTRACT infobox
WHERE attribute = "population"
RESOLVE BY population
STORE INTO pops KEY population"#,
            &c,
            &db,
        );
        assert!(stats.filtered_out > 0);
    }

    #[test]
    fn cache_serves_repeated_runs() {
        let c = corpus();
        let db = Database::in_memory();
        let reg = ExtractorRegistry::standard();
        let plan = LogicalPlan::from_pipeline(
            &parse("PIPELINE p FROM corpus EXTRACT infobox RESOLVE BY name STORE INTO t KEY name")
                .unwrap(),
        );
        let mut ctx = ExecContext::new(&c.docs, &reg, &db);
        let s1 = Executor::run(&plan, &mut ctx).unwrap();
        assert_eq!(s1.cache_hits, 0);
        assert_eq!(s1.extractor_runs, c.docs.len());
        let s2 = Executor::run(&plan, &mut ctx).unwrap();
        assert_eq!(s2.extractor_runs, 0, "second run fully cached");
        assert_eq!(s2.cache_hits, c.docs.len());
        assert_eq!(s2.cost_units, 0.0);
    }

    #[test]
    fn resolution_merges_person_name_variants() {
        let c = corpus();
        let db = Database::in_memory();
        let stats = run_src(
            r#"PIPELINE people FROM corpus
EXTRACT infobox
WHERE attribute IN ("name", "birth_year", "employer", "residence")
RESOLVE BY name
STORE INTO people KEY name"#,
            &c,
            &db,
        );
        // Duplicate person pages must merge: fewer entities than records.
        assert!(stats.entities < stats.records, "{stats:?}");
    }

    #[test]
    fn curation_improves_merging_with_perfect_oracle() {
        let c = corpus();
        // Entity ground truth by doc: person pages sharing `entity`.
        let person_entity: HashMap<DocId, u32> =
            c.truth.people.iter().map(|p| (p.doc, p.entity)).collect();
        let truth: TruthOracle = {
            let pe = person_entity.clone();
            Arc::new(move |a, b| match (pe.get(&a), pe.get(&b)) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            })
        };
        let reg = ExtractorRegistry::standard();
        let src = r#"PIPELINE people FROM corpus
EXTRACT infobox
WHERE attribute IN ("name", "birth_year", "employer", "residence")
RESOLVE BY name
CURATE BUDGET 500 VOTES 1
STORE INTO people KEY name"#;
        let plan = optimize(&LogicalPlan::from_pipeline(&parse(src).unwrap()), &reg);

        let db = Database::in_memory();
        let mut ctx = ExecContext::new(&c.docs, &reg, &db);
        ctx.crowd = Some(Crowd::new(panel(3, &[0.0], 5)));
        ctx.truth = Some(truth);
        let with_hi = Executor::run(&plan, &mut ctx).unwrap();
        assert!(with_hi.questions_asked > 0 || with_hi.uncertain_pairs == 0);
        assert!(with_hi.hi_spent <= 500);
    }

    #[test]
    fn invalid_plans_error() {
        let c = corpus();
        let db = Database::in_memory();
        let reg = ExtractorRegistry::standard();
        let bad = LogicalPlan::from_pipeline(
            &parse("PIPELINE p FROM corpus EXTRACT infobox STORE INTO t KEY name").unwrap(),
        );
        let mut ctx = ExecContext::new(&c.docs, &reg, &db);
        assert!(matches!(Executor::run(&bad, &mut ctx), Err(ExecError::InvalidPlan(_))));
        let unknown = LogicalPlan::from_pipeline(
            &parse(
                "PIPELINE p FROM corpus EXTRACT warp_drive RESOLVE BY name STORE INTO t KEY name",
            )
            .unwrap(),
        );
        assert!(matches!(Executor::run(&unknown, &mut ctx), Err(ExecError::UnknownExtractor(_))));
    }

    #[test]
    fn statically_broken_plans_are_rejected_before_any_document_is_read() {
        let c = corpus();
        let db = Database::in_memory();
        let reg = ExtractorRegistry::standard();
        // QL005: the resolve key is filtered out — every record would drop.
        let plan = LogicalPlan::from_pipeline(
            &parse(
                r#"PIPELINE p FROM corpus
EXTRACT infobox
WHERE attribute IN ("population", "state")
RESOLVE BY name
STORE INTO cities KEY name"#,
            )
            .unwrap(),
        );
        let mut ctx = ExecContext::new(&c.docs, &reg, &db);
        let err = Executor::run(&plan, &mut ctx).unwrap_err();
        let ExecError::Rejected(report) = &err else { panic!("expected Rejected, got {err}") };
        assert!(report.error_count() > 0);
        assert!(report.diagnostics.iter().any(|d| d.code == "QL005"), "{report:#?}");
        // Rejection is pre-execution: no extractor ran, nothing was cached,
        // no parallel stage was recorded, nothing was stored.
        assert!(ctx.cache.is_empty(), "extraction cache must stay untouched");
        assert!(ctx.report.stages.is_empty(), "no execution stage may have run");
        assert!(db.schema("cities").is_err(), "no table may have been created");

        // Unknown extractors are likewise caught upfront, with the
        // long-standing error variant.
        let unknown = LogicalPlan::from_pipeline(
            &parse(
                "PIPELINE p FROM corpus EXTRACT infobox, warp_drive RESOLVE BY name STORE INTO t KEY name",
            )
            .unwrap(),
        );
        let mut ctx = ExecContext::new(&c.docs, &reg, &db);
        assert!(matches!(Executor::run(&unknown, &mut ctx), Err(ExecError::UnknownExtractor(_))));
        assert!(ctx.cache.is_empty(), "infobox must not have run before the unknown-name check");
    }

    #[test]
    fn optimized_plan_does_less_work_same_rows() {
        let c = corpus();
        let reg = ExtractorRegistry::standard();
        let src = r#"PIPELINE p FROM corpus
EXTRACT infobox, rules, rule:monthly-temperature, rule:lead-author
RESOLVE BY name
WHERE attribute IN ("name", "state", "population")
STORE INTO cities KEY name"#;
        let naive = LogicalPlan::from_pipeline(&parse(src).unwrap());
        let opt = optimize(&naive, &reg);

        let db1 = Database::in_memory();
        let mut ctx1 = ExecContext::new(&c.docs, &reg, &db1);
        // Naive order (WHERE after RESOLVE) is invalid at execution time —
        // the naive baseline instead runs with filters in place but without
        // pruning, which is what "unoptimized" means for E5.
        let naive_runnable = crate::plan::optimize_with(
            &naive,
            &reg,
            crate::plan::OptimizerConfig {
                filter_placement: true,
                extractor_pruning: false,
                cost_ordering: false,
            },
        );
        let s_naive = Executor::run(&naive_runnable, &mut ctx1).unwrap();

        let db2 = Database::in_memory();
        let mut ctx2 = ExecContext::new(&c.docs, &reg, &db2);
        let s_opt = Executor::run(&opt, &mut ctx2).unwrap();

        assert!(s_opt.cost_units < s_naive.cost_units, "{s_opt:?} vs {s_naive:?}");
        assert_eq!(
            db1.row_count("cities").unwrap(),
            db2.row_count("cities").unwrap(),
            "optimization must not change the stored result"
        );
    }
}
