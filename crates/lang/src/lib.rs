//! QDL — Quarry's declarative IE+II+HI language (blueprint Parts I–II).
//!
//! "At the heart of this layer is a data model, a declarative language
//! (over this data model) that combines IE, II, and HI, and a library of
//! basic operators. ... These programs can be parsed, reformulated,
//! optimized, then executed." A QDL program:
//!
//! ```text
//! PIPELINE city_facts
//! FROM corpus
//! EXTRACT infobox, rules
//! WHERE attribute IN ("population", "state") AND confidence >= 0.6
//! RESOLVE BY name
//! CURATE BUDGET 50 VOTES 3
//! STORE INTO cities KEY name
//! ```
//!
//! - [`ast`] + [`lexer`] + [`parser`] — surface syntax; programs print and
//!   re-parse losslessly (property-tested);
//! - [`registry`] — the operator library: named extractors with declared
//!   output-attribute signatures and per-document costs;
//! - [`lint`] — the static semantic analyzer: span-anchored QL001–QL008
//!   diagnostics against the registry and schema registry, checked before
//!   any document is read;
//! - [`plan`] — logical plans and the rule-based optimizer (extractor
//!   pruning against WHERE clauses, selection placement, materialization
//!   reuse), plus `EXPLAIN` rendering;
//! - [`exec`] — the executor: runs a plan over documents, resolves
//!   entities, routes uncertain decisions to an HI oracle, and stores the
//!   result into the structured store, reporting per-step statistics.

#![forbid(unsafe_code)]

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod lint;
pub mod parser;
pub mod plan;
pub mod registry;

pub use ast::{Condition, Pipeline, ProgramSpans, Step};
pub use exec::{ExecContext, ExecStats, Executor};
pub use lint::{analyze, lint_source};
pub use parser::{parse, parse_spanned};
pub use plan::{optimize, LogicalPlan, PlanOp};
pub use registry::ExtractorRegistry;
