//! The operator library: named extractors with signatures and costs.
//!
//! Developers "write declarative IE+II+HI programs" against a library of
//! basic operators, and "may have to write domain-specific operators, but
//! the framework makes it easy to use such operators in the programs".
//! Registration = a name, a closure, a declared output signature (which
//! attributes it can produce — the optimizer's pruning input), and a cost
//! estimate per document (the optimizer's ordering input).

use quarry_corpus::Document;
use quarry_extract::dictionary::Gazetteer;
use quarry_extract::rules::{self, ProseRule};
use quarry_extract::{infobox, Extraction};
use std::collections::HashMap;
use std::sync::Arc;

/// What attributes an extractor can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Produces {
    /// Could produce any attribute (infobox parsing).
    Any,
    /// Exactly these attributes.
    Set(Vec<String>),
    /// Attributes ending with this suffix (e.g. `_temp`).
    Suffix(String),
}

impl Produces {
    /// Could this extractor produce any of the named attributes?
    pub fn intersects(&self, attrs: &[&str]) -> bool {
        match self {
            Produces::Any => true,
            Produces::Set(set) => attrs.iter().any(|a| set.iter().any(|s| s == a)),
            Produces::Suffix(suf) => attrs.iter().any(|a| a.ends_with(suf.as_str())),
        }
    }
}

type ExtractFn = Arc<dyn Fn(&Document) -> Vec<Extraction> + Send + Sync>;

/// One registered operator.
#[derive(Clone)]
pub struct RegisteredExtractor {
    /// Registered name.
    pub name: String,
    /// Declared output signature.
    pub produces: Produces,
    /// Relative cost per document (arbitrary units; infobox = 1).
    pub cost: f64,
    /// The operator itself.
    pub run: ExtractFn,
}

/// The registry.
#[derive(Clone, Default)]
pub struct ExtractorRegistry {
    by_name: HashMap<String, RegisteredExtractor>,
}

impl ExtractorRegistry {
    /// Empty registry.
    pub fn new() -> ExtractorRegistry {
        ExtractorRegistry::default()
    }

    /// The standard library: `infobox` and `rules` (all standard prose
    /// rules as one operator, plus each rule individually as
    /// `rule:<name>`).
    pub fn standard() -> ExtractorRegistry {
        let mut r = ExtractorRegistry::new();
        r.register("infobox", Produces::Any, 1.0, infobox::extract);
        let all_rules = rules::standard_rules();
        r.register_owned(
            "rules".to_string(),
            Produces::Set(standard_rule_attributes(&all_rules)),
            5.0,
            {
                let all_rules = all_rules.clone();
                move |d| rules::extract(d, &all_rules)
            },
        );
        for rule in all_rules {
            let name = format!("rule:{}", rule.name);
            let produces = Produces::Set(rule_attributes(&rule));
            r.register_owned(name, produces, 1.0, move |d| rule.extract(d));
        }
        r
    }

    /// Register an operator.
    pub fn register(
        &mut self,
        name: &str,
        produces: Produces,
        cost: f64,
        f: impl Fn(&Document) -> Vec<Extraction> + Send + Sync + 'static,
    ) {
        self.register_owned(name.to_string(), produces, cost, f);
    }

    fn register_owned(
        &mut self,
        name: String,
        produces: Produces,
        cost: f64,
        f: impl Fn(&Document) -> Vec<Extraction> + Send + Sync + 'static,
    ) {
        self.by_name
            .insert(name.clone(), RegisteredExtractor { name, produces, cost, run: Arc::new(f) });
    }

    /// Register a gazetteer as an operator.
    pub fn register_gazetteer(&mut self, name: &str, g: Gazetteer, cost: f64) {
        let produces = Produces::Set(vec![name.to_string()]);
        let attr_owned = g;
        self.register(name, produces, cost, move |d| attr_owned.extract(d));
    }

    /// Look up an operator.
    pub fn get(&self, name: &str) -> Option<&RegisteredExtractor> {
        self.by_name.get(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.by_name.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of registered operators.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// True when no operators are registered.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

impl std::fmt::Debug for ExtractorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtractorRegistry").field("names", &self.names()).finish()
    }
}

/// The attributes a single prose rule can emit (resolving the dynamic
/// month placeholder to the twelve month attributes).
fn rule_attributes(rule: &ProseRule) -> Vec<String> {
    match rule.name {
        "monthly-temperature" => MONTHS.iter().map(|m| format!("{m}_temp")).collect(),
        "population-of" => vec!["population".into()],
        "founded-and-area" => vec!["founded".into(), "area_sq_mi".into()],
        "person-born-works" => vec!["birth_year".into(), "employer".into()],
        "lives-in" => vec!["residence".into()],
        "company-industry-hq" => vec!["industry".into(), "headquarters".into()],
        "company-founded" => vec!["founded".into()],
        "publication-venue-year" => vec!["venue".into(), "year".into()],
        "lead-author" => vec!["author".into()],
        other => vec![other.to_string()],
    }
}

fn standard_rule_attributes(all: &[ProseRule]) -> Vec<String> {
    let mut out: Vec<String> = all.iter().flat_map(rule_attributes).collect();
    out.sort();
    out.dedup();
    out
}

const MONTHS: [&str; 12] = [
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_corpus::{DocId, DocKind};

    fn doc(text: &str) -> Document {
        Document { id: DocId(0), title: "T".into(), text: text.into(), kind: DocKind::City }
    }

    #[test]
    fn standard_registry_has_infobox_and_rules() {
        let r = ExtractorRegistry::standard();
        assert!(r.get("infobox").is_some());
        assert!(r.get("rules").is_some());
        assert!(r.get("rule:population-of").is_some());
        assert!(r.len() > 5);
    }

    #[test]
    fn operators_run() {
        let r = ExtractorRegistry::standard();
        let d = doc(
            "{{Infobox settlement\n| population = 9,000\n}}\n\nthe population of Oakton was 9,000.",
        );
        let from_infobox = (r.get("infobox").unwrap().run)(&d);
        assert_eq!(from_infobox.len(), 1);
        let from_rules = (r.get("rules").unwrap().run)(&d);
        assert!(from_rules.iter().any(|e| e.attribute == "population"));
    }

    #[test]
    fn produces_intersection() {
        assert!(Produces::Any.intersects(&["anything"]));
        assert!(Produces::Set(vec!["a".into(), "b".into()]).intersects(&["b"]));
        assert!(!Produces::Set(vec!["a".into()]).intersects(&["b"]));
        assert!(Produces::Suffix("_temp".into()).intersects(&["march_temp"]));
        assert!(!Produces::Suffix("_temp".into()).intersects(&["population"]));
    }

    #[test]
    fn rule_signatures_cover_their_outputs() {
        let r = ExtractorRegistry::standard();
        let monthly = r.get("rule:monthly-temperature").unwrap();
        assert!(monthly.produces.intersects(&["march_temp"]));
        assert!(!monthly.produces.intersects(&["population"]));
    }

    #[test]
    fn custom_operator_registration() {
        let mut r = ExtractorRegistry::new();
        r.register("noop", Produces::Set(vec!["x".into()]), 2.0, |_| Vec::new());
        assert_eq!(r.names(), vec!["noop"]);
        assert_eq!((r.get("noop").unwrap().run)(&doc("text")), Vec::new());
        assert_eq!(r.get("noop").unwrap().cost, 2.0);
    }

    #[test]
    fn gazetteer_registration() {
        let mut r = ExtractorRegistry::new();
        let g = Gazetteer::from_names("city_mention", ["Madison"], false);
        r.register_gazetteer("city_mention", g, 3.0);
        let exts = (r.get("city_mention").unwrap().run)(&doc("Visit Madison today"));
        assert_eq!(exts.len(), 1);
    }
}
