//! Static semantic analysis of QDL pipelines.
//!
//! The blueprint's processing layer promises programs that "can be
//! parsed, reformulated, optimized, then executed" — and a program worth
//! optimizing is worth *checking*: an unknown extractor, a filter no
//! selected extractor can satisfy, or a store key the pipeline never
//! projects should be rejected before a single document is read, not
//! discovered as an empty table after a full extraction pass.
//!
//! [`analyze`] walks a parsed [`Pipeline`] (with its
//! [`ProgramSpans`] table) against the [`ExtractorRegistry`] — and
//! optionally a [`SchemaRegistry`] — and emits span-anchored
//! [`Diagnostic`]s with the stable codes below. Errors block execution
//! (the [`crate::exec::Executor`] refuses them); warnings do not.
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | QL000 | error | syntax error (lex/parse failure, from [`lint_source`]) |
//! | QL001 | error | unknown extractor |
//! | QL002 | error | WHERE attribute no selected extractor can produce |
//! | QL003 | error | confidence bound outside `[0, 1]` |
//! | QL004 | error | unsatisfiable predicate conjunction |
//! | QL005 | error | RESOLVE/STORE key not among projected attributes |
//! | QL006 | warning | extractor fully pruned by WHERE (dead) |
//! | QL007 | warning | CURATE budget/votes cannot do useful work |
//! | QL008 | error | STORE key conflicts with the registered schema |

use crate::ast::{Condition, Pipeline, ProgramSpans, Step, StepSpans};
use crate::parser::{parse_spanned, ParseError};
use crate::plan::{LogicalPlan, PlanOp};
use crate::registry::{ExtractorRegistry, Produces};
use quarry_exec::diag::{closest, Diagnostic, LintReport, Span};
use quarry_schema::SchemaRegistry;

/// Stable diagnostic codes emitted by the QDL analyzer.
pub mod codes {
    /// Lex or parse failure (reported through [`super::lint_source`]).
    pub const SYNTAX: &str = "QL000";
    /// `EXTRACT` names an operator the registry does not know.
    pub const UNKNOWN_EXTRACTOR: &str = "QL001";
    /// `WHERE` admits an attribute no selected extractor can produce.
    pub const UNPRODUCIBLE_ATTRIBUTE: &str = "QL002";
    /// `confidence >=` bound outside `[0, 1]`.
    pub const CONFIDENCE_RANGE: &str = "QL003";
    /// Predicate conjunction no extraction can satisfy.
    pub const UNSATISFIABLE: &str = "QL004";
    /// `RESOLVE BY`/`STORE ... KEY` names an attribute the pipeline filters out.
    pub const KEY_NOT_PROJECTED: &str = "QL005";
    /// Extractor whose whole output the `WHERE` clause rejects.
    pub const DEAD_EXTRACTOR: &str = "QL006";
    /// `CURATE` budget/votes combination that cannot do useful work.
    pub const CURATE_SANITY: &str = "QL007";
    /// Declared `STORE` key conflicts with the registered schema version.
    pub const SCHEMA_CONFLICT: &str = "QL008";
}

/// Analyze a parsed pipeline. `spans` must come from the same
/// `parse_spanned` call that produced `pipeline` (indices line up 1:1).
/// Pass `schemas` to also check `STORE` targets against registered schema
/// versions (QL008). Diagnostics are returned in source order.
pub fn analyze(
    pipeline: &Pipeline,
    spans: &ProgramSpans,
    registry: &ExtractorRegistry,
    schemas: Option<&SchemaRegistry>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // ── Selected extractors (QL001) ─────────────────────────────────
    let mut selected: Vec<(&str, Span)> = Vec::new();
    let mut unknown_selected = false;
    for (step, sp) in pipeline.steps.iter().zip(&spans.steps) {
        let (Step::Extract { extractors }, StepSpans::Extract { extractors: ex_spans, .. }) =
            (step, sp)
        else {
            continue;
        };
        for (name, &span) in extractors.iter().zip(ex_spans) {
            selected.push((name.as_str(), span));
            if registry.get(name).is_none() {
                unknown_selected = true;
                let mut d = Diagnostic::error(
                    codes::UNKNOWN_EXTRACTOR,
                    span,
                    format!("unknown extractor `{name}`"),
                );
                d = match closest(name, registry.names()) {
                    Some(suggest) => d.with_help(format!("did you mean `{suggest}`?")),
                    None => d.with_help(format!(
                        "registered extractors: {}",
                        registry.names().join(", ")
                    )),
                };
                diags.push(d);
            }
        }
    }

    // ── Attribute allow-list (mirrors LogicalPlan::attribute_allowlist,
    //    tracking which condition emptied the intersection for QL004) ──
    let mut allow: Option<Vec<String>> = None;
    let mut emptied_at: Option<Span> = None;
    let mut extractor_eq: Option<(String, Span)> = None;
    for (step, sp) in pipeline.steps.iter().zip(&spans.steps) {
        let (Step::Where { conditions }, StepSpans::Where { conditions: cond_spans, .. }) =
            (step, sp)
        else {
            continue;
        };
        for (cond, csp) in conditions.iter().zip(cond_spans) {
            if let Some(attrs) = cond.attribute_set() {
                let set: Vec<String> = attrs.iter().map(|a| a.to_string()).collect();
                allow = Some(match allow.take() {
                    None => set,
                    Some(prev) => {
                        let was_empty = prev.is_empty();
                        let inter: Vec<String> =
                            prev.into_iter().filter(|a| set.contains(a)).collect();
                        if inter.is_empty() && !was_empty && emptied_at.is_none() {
                            emptied_at = Some(csp.full);
                        }
                        inter
                    }
                });
            }
            match cond {
                Condition::ConfidenceGe(c) if !(0.0..=1.0).contains(c) => {
                    diags.push(
                        Diagnostic::error(
                            codes::CONFIDENCE_RANGE,
                            csp.values[0],
                            format!("confidence bound {c} is outside [0, 1]"),
                        )
                        .with_help("extraction confidences are probabilities in [0, 1]"),
                    );
                }
                Condition::ExtractorEq(name) => match &extractor_eq {
                    Some((prev, _)) if prev != name => {
                        diags.push(
                            Diagnostic::error(
                                codes::UNSATISFIABLE,
                                csp.full,
                                format!(
                                    "contradictory conjunction: extractor = \"{prev}\" \
                                     and extractor = \"{name}\" cannot both hold"
                                ),
                            )
                            .with_help("each extraction comes from exactly one extractor"),
                        );
                    }
                    Some(_) => {}
                    None => extractor_eq = Some((name.clone(), csp.full)),
                },
                _ => {}
            }
        }
    }
    if let Some(span) = emptied_at {
        diags.push(
            Diagnostic::error(
                codes::UNSATISFIABLE,
                span,
                "unsatisfiable conjunction: no attribute satisfies every attribute condition"
                    .to_string(),
            )
            .with_help("attribute conditions AND together; their sets must overlap"),
        );
    }
    let allow_empty = allow.as_ref().is_some_and(|a| a.is_empty());

    // ── QL002: filter admits attributes nothing selected can produce.
    //    Skipped when an unknown extractor is selected (its signature is
    //    unknowable — QL001 already fired) or nothing is extracted. ────
    if !unknown_selected && !selected.is_empty() {
        let declared: Vec<&str> = selected
            .iter()
            .filter_map(|(n, _)| registry.get(n))
            .filter_map(|r| match &r.produces {
                Produces::Set(set) => Some(set.iter().map(String::as_str)),
                _ => None,
            })
            .flatten()
            .collect();
        for (step, sp) in pipeline.steps.iter().zip(&spans.steps) {
            let (Step::Where { conditions }, StepSpans::Where { conditions: cond_spans, .. }) =
                (step, sp)
            else {
                continue;
            };
            for (cond, csp) in conditions.iter().zip(cond_spans) {
                let attrs: Vec<&String> = match cond {
                    Condition::AttributeEq(a) => vec![a],
                    Condition::AttributeIn(list) => list.iter().collect(),
                    _ => continue,
                };
                for (attr, &span) in attrs.iter().zip(&csp.values) {
                    let producible = selected.iter().any(|(n, _)| {
                        registry.get(n).is_some_and(|r| r.produces.intersects(&[attr.as_str()]))
                    });
                    if !producible {
                        let mut d = Diagnostic::error(
                            codes::UNPRODUCIBLE_ATTRIBUTE,
                            span,
                            format!("no selected extractor can produce attribute \"{attr}\""),
                        );
                        if let Some(suggest) = closest(attr, declared.iter().copied()) {
                            d = d.with_help(format!("did you mean \"{suggest}\"?"));
                        }
                        diags.push(d);
                    }
                }
            }
        }
    }

    // ── QL005 + QL006 (both meaningless once the allow-list is empty —
    //    QL004 already explains why nothing flows) ────────────────────
    let mut resolve_key: Option<&str> = None;
    if let Some(allow) = allow.as_ref().filter(|a| !a.is_empty()) {
        let allow_refs: Vec<&str> = allow.iter().map(String::as_str).collect();
        for (name, span) in &selected {
            if let Some(reg) = registry.get(name) {
                if !reg.produces.intersects(&allow_refs) {
                    diags.push(
                        Diagnostic::warning(
                            codes::DEAD_EXTRACTOR,
                            *span,
                            format!(
                                "extractor `{name}` produces no attribute admitted by WHERE; \
                                 the optimizer will prune it"
                            ),
                        )
                        .with_help("drop it from EXTRACT, or widen the attribute conditions"),
                    );
                }
            }
        }
        for (step, sp) in pipeline.steps.iter().zip(&spans.steps) {
            match (step, sp) {
                (Step::Resolve { key }, StepSpans::Resolve { key: key_span, .. }) => {
                    resolve_key = Some(key.as_str());
                    if !allow.contains(key) {
                        diags.push(
                            Diagnostic::error(
                                codes::KEY_NOT_PROJECTED,
                                *key_span,
                                format!(
                                    "RESOLVE key \"{key}\" is filtered out by WHERE; \
                                     every record would be dropped"
                                ),
                            )
                            .with_help(format!("add \"{key}\" to a WHERE attribute condition")),
                        );
                    }
                }
                (Step::Store { key, .. }, StepSpans::Store { keys: key_spans, .. }) => {
                    // The first store key is bound to the resolve key's
                    // value at execution time; later keys must survive
                    // the filters (or be the resolve attribute itself).
                    for (k, &span) in key.iter().zip(key_spans).skip(1) {
                        if !allow.contains(k) && resolve_key != Some(k.as_str()) {
                            diags.push(
                                Diagnostic::error(
                                    codes::KEY_NOT_PROJECTED,
                                    span,
                                    format!(
                                        "STORE key \"{k}\" is filtered out by WHERE; \
                                         its column would be all NULL"
                                    ),
                                )
                                .with_help(format!("add \"{k}\" to a WHERE attribute condition")),
                            );
                        }
                    }
                }
                _ => {}
            }
        }
    } else if !allow_empty {
        // Unrestricted stream: remember the resolve key for QL008 below.
        resolve_key = pipeline.steps.iter().find_map(|s| match s {
            Step::Resolve { key } => Some(key.as_str()),
            _ => None,
        });
    }
    let _ = resolve_key;

    // ── QL007: curation sanity ──────────────────────────────────────
    for (step, sp) in pipeline.steps.iter().zip(&spans.steps) {
        let (
            Step::Curate { budget, votes },
            StepSpans::Curate { budget: budget_span, votes: votes_span, .. },
        ) = (step, sp)
        else {
            continue;
        };
        if *budget == 0 {
            diags.push(
                Diagnostic::warning(
                    codes::CURATE_SANITY,
                    *budget_span,
                    "CURATE BUDGET 0 disables curation entirely".to_string(),
                )
                .with_help("drop the CURATE step, or grant a positive budget"),
            );
        }
        if *votes == 0 {
            diags.push(
                Diagnostic::warning(
                    codes::CURATE_SANITY,
                    *votes_span,
                    "CURATE VOTES 0 asks nobody; every uncertain pair stays unresolved".to_string(),
                )
                .with_help("use at least 1 vote per question"),
            );
        } else if *votes > *budget && *budget > 0 {
            diags.push(
                Diagnostic::warning(
                    codes::CURATE_SANITY,
                    *votes_span,
                    format!(
                        "VOTES {votes} exceeds BUDGET {budget}; \
                         not even one question fits in the budget"
                    ),
                )
                .with_help("raise BUDGET or lower VOTES"),
            );
        }
    }

    // ── QL008: schema-evolution conflicts ───────────────────────────
    if let Some(schemas) = schemas {
        for (step, sp) in pipeline.steps.iter().zip(&spans.steps) {
            let (Step::Store { table, key }, StepSpans::Store { table: table_span, .. }) =
                (step, sp)
            else {
                continue;
            };
            let Some(latest) = schemas.latest(table) else { continue };
            let Some(schema) = schemas.schema(table, latest) else { continue };
            let registered: Vec<&str> =
                schema.key.iter().map(|&i| schema.columns[i].name.as_str()).collect();
            let declared: Vec<&str> = key.iter().map(String::as_str).collect();
            if registered != declared {
                diags.push(
                    Diagnostic::error(
                        codes::SCHEMA_CONFLICT,
                        *table_span,
                        format!(
                            "table `{table}` is registered at schema version v{} \
                             with key ({}), but the pipeline stores with key ({})",
                            latest.0,
                            registered.join(", "),
                            declared.join(", ")
                        ),
                    )
                    .with_help("match the registered key, or evolve the schema before storing"),
                );
            }
        }
    }

    diags
}

/// Lint QDL source end-to-end: lex + parse (failures become a single
/// QL000 diagnostic), then [`analyze`]. Always returns a report — syntax
/// errors never escape as `Err`, so callers can render uniformly.
pub fn lint_source(
    origin: &str,
    src: &str,
    registry: &ExtractorRegistry,
    schemas: Option<&SchemaRegistry>,
) -> LintReport {
    match parse_spanned(src) {
        Ok((pipeline, spans)) => {
            LintReport::new(origin, src, analyze(&pipeline, &spans, registry, schemas))
        }
        Err(ParseError { message, span, .. }) => {
            LintReport::new(origin, src, vec![Diagnostic::error(codes::SYNTAX, span, message)])
        }
    }
}

/// Lint a lowered [`LogicalPlan`] by reconstructing its pipeline form,
/// printing it, and linting the printed text (printing is lossless, so
/// spans land on real source). Returns `None` when the plan's printed
/// form does not re-parse (e.g. exotic float literals) — callers should
/// treat that as "no static verdict", not as clean or broken.
pub fn analyze_plan(
    plan: &LogicalPlan,
    registry: &ExtractorRegistry,
    schemas: Option<&SchemaRegistry>,
) -> Option<LintReport> {
    let steps: Vec<Step> = plan
        .ops
        .iter()
        .map(|op| match op {
            PlanOp::Extract { extractors } => Step::Extract { extractors: extractors.clone() },
            PlanOp::Filter { conditions } => Step::Where { conditions: conditions.clone() },
            PlanOp::Resolve { key } => Step::Resolve { key: key.clone() },
            PlanOp::Curate { budget, votes } => Step::Curate { budget: *budget, votes: *votes },
            PlanOp::Store { table, key } => Step::Store { table: table.clone(), key: key.clone() },
        })
        .collect();
    let pipeline = Pipeline { name: "plan".into(), source: "corpus".into(), steps };
    let src = pipeline.to_string();
    let (reparsed, spans) = parse_spanned(&src).ok()?;
    Some(LintReport::new("<plan>", &src, analyze(&reparsed, &spans, registry, schemas)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_exec::diag::Severity;
    use quarry_storage::{Column, DataType, TableSchema};

    fn lint(src: &str) -> LintReport {
        lint_source("test.qdl", src, &ExtractorRegistry::standard(), None)
    }

    /// The single diagnostic with `code`, asserting it is the only one.
    fn only<'r>(report: &'r LintReport, code: &str) -> &'r Diagnostic {
        assert_eq!(
            report.diagnostics.len(),
            1,
            "expected exactly one diagnostic: {:#?}",
            report.diagnostics
        );
        let d = &report.diagnostics[0];
        assert_eq!(d.code, code);
        d
    }

    fn covered<'a>(report: &'a LintReport, d: &Diagnostic) -> &'a str {
        &report.source[d.span.start..d.span.end]
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let report = lint(
            r#"PIPELINE p FROM corpus
EXTRACT infobox, rules
WHERE attribute IN ("name", "population") AND confidence >= 0.6
RESOLVE BY name
CURATE BUDGET 50 VOTES 3
STORE INTO cities KEY name"#,
        );
        assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    }

    #[test]
    fn ql000_syntax_error_becomes_a_diagnostic() {
        let report = lint("PIPELINE p FROM corpus FROBNICATE");
        let d = only(&report, codes::SYNTAX);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(covered(&report, d), "FROBNICATE");
    }

    #[test]
    fn ql001_unknown_extractor_with_suggestion() {
        let report = lint("PIPELINE p FROM corpus EXTRACT infobx RESOLVE BY name");
        let d = only(&report, codes::UNKNOWN_EXTRACTOR);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(covered(&report, d), "infobx");
        assert_eq!(d.help.as_deref(), Some("did you mean `infobox`?"));
    }

    #[test]
    fn ql002_unproducible_attribute() {
        // rule:lead-author produces only `author`; no Any-extractor selected.
        let report = lint(
            r#"PIPELINE p FROM corpus
EXTRACT rule:lead-author
WHERE attribute IN ("author", "theme")
RESOLVE BY author"#,
        );
        let d = only(&report, codes::UNPRODUCIBLE_ATTRIBUTE);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(covered(&report, d), "\"theme\"");
    }

    #[test]
    fn ql002_is_silenced_by_an_any_extractor() {
        let report = lint(
            r#"PIPELINE p FROM corpus
EXTRACT infobox
WHERE attribute = "anything_at_all"
RESOLVE BY anything_at_all"#,
        );
        assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    }

    #[test]
    fn ql002_is_silenced_after_ql001() {
        // With an unknown extractor selected, its signature is unknowable:
        // only QL001 may fire, not a cascading QL002.
        let report = lint(
            r#"PIPELINE p FROM corpus
EXTRACT warp_drive
WHERE attribute = "dilithium"
RESOLVE BY dilithium"#,
        );
        let d = only(&report, codes::UNKNOWN_EXTRACTOR);
        assert_eq!(covered(&report, d), "warp_drive");
    }

    #[test]
    fn ql003_confidence_out_of_range() {
        let report =
            lint("PIPELINE p FROM corpus EXTRACT infobox WHERE confidence >= 1.5 RESOLVE BY name");
        let d = only(&report, codes::CONFIDENCE_RANGE);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(covered(&report, d), "1.5");
    }

    #[test]
    fn ql004_disjoint_attribute_conjunction() {
        let report = lint(
            r#"PIPELINE p FROM corpus
EXTRACT infobox
WHERE attribute = "population" AND attribute = "state""#,
        );
        let d = only(&report, codes::UNSATISFIABLE);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(covered(&report, d), "attribute = \"state\"");
    }

    #[test]
    fn ql004_contradictory_extractor_equalities() {
        let report = lint(
            r#"PIPELINE p FROM corpus
EXTRACT infobox, rules
WHERE extractor = "infobox" AND extractor = "rules""#,
        );
        let d = only(&report, codes::UNSATISFIABLE);
        assert_eq!(covered(&report, d), "extractor = \"rules\"");
    }

    #[test]
    fn ql005_resolve_key_filtered_out() {
        let report = lint(
            r#"PIPELINE p FROM corpus
EXTRACT infobox
WHERE attribute IN ("population", "state")
RESOLVE BY name
STORE INTO cities KEY name"#,
        );
        let d = only(&report, codes::KEY_NOT_PROJECTED);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(covered(&report, d), "name");
        let (line, _) = quarry_exec::diag::line_col_of(&report.source, d.span.start);
        assert_eq!(line, 4, "span must point at the RESOLVE line");
    }

    #[test]
    fn ql005_secondary_store_key_filtered_out() {
        let report = lint(
            r#"PIPELINE p FROM corpus
EXTRACT infobox
WHERE attribute IN ("name", "population")
RESOLVE BY name
STORE INTO cities KEY name, state"#,
        );
        let d = only(&report, codes::KEY_NOT_PROJECTED);
        assert_eq!(covered(&report, d), "state");
    }

    #[test]
    fn ql006_dead_extractor_is_a_warning() {
        let report = lint(
            r#"PIPELINE p FROM corpus
EXTRACT infobox, rule:monthly-temperature
WHERE attribute IN ("name", "population")
RESOLVE BY name"#,
        );
        let d = only(&report, codes::DEAD_EXTRACTOR);
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(covered(&report, d), "rule:monthly-temperature");
        assert!(report.is_clean(), "warnings must not block execution");
    }

    #[test]
    fn ql007_curate_sanity_warnings() {
        let report = lint(
            r#"PIPELINE p FROM corpus
EXTRACT infobox
RESOLVE BY name
CURATE BUDGET 0 VOTES 9"#,
        );
        // budget 0 fires once; votes>budget is subsumed by budget==0.
        let budget_warnings: Vec<_> =
            report.diagnostics.iter().filter(|d| d.code == codes::CURATE_SANITY).collect();
        assert_eq!(budget_warnings.len(), 1, "{:#?}", report.diagnostics);
        assert_eq!(budget_warnings[0].severity, Severity::Warning);
        assert_eq!(covered(&report, budget_warnings[0]), "0");

        let report =
            lint("PIPELINE p FROM corpus EXTRACT infobox RESOLVE BY name CURATE BUDGET 2 VOTES 5");
        let d = only(&report, codes::CURATE_SANITY);
        assert_eq!(covered(&report, d), "5");
        let report =
            lint("PIPELINE p FROM corpus EXTRACT infobox RESOLVE BY name CURATE BUDGET 5 VOTES 0");
        let d = only(&report, codes::CURATE_SANITY);
        assert_eq!(covered(&report, d), "0");
    }

    #[test]
    fn ql008_schema_key_conflict() {
        let mut schemas = SchemaRegistry::new();
        schemas
            .register(
                TableSchema::new(
                    "cities",
                    vec![
                        Column::new("city_id", DataType::Text),
                        Column::nullable("name", DataType::Text),
                    ],
                    &["city_id"],
                    &[],
                )
                .unwrap(),
            )
            .unwrap();
        let src = r#"PIPELINE p FROM corpus
EXTRACT infobox
RESOLVE BY name
STORE INTO cities KEY name"#;
        let report = lint_source("test.qdl", src, &ExtractorRegistry::standard(), Some(&schemas));
        let d = only(&report, codes::SCHEMA_CONFLICT);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(covered(&report, d), "cities");
        assert!(d.message.contains("city_id") && d.message.contains("name"), "{}", d.message);

        // Matching key: clean.
        let ok = r#"PIPELINE p FROM corpus
EXTRACT infobox
RESOLVE BY city_id
STORE INTO cities KEY city_id"#;
        let report = lint_source("test.qdl", ok, &ExtractorRegistry::standard(), Some(&schemas));
        assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    }

    #[test]
    fn diagnostics_are_ordered_by_span() {
        let report = lint(
            r#"PIPELINE p FROM corpus
EXTRACT warp_drive, infobx
WHERE confidence >= 2
RESOLVE BY name"#,
        );
        let codes_in_order: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(
            codes_in_order,
            vec![codes::UNKNOWN_EXTRACTOR, codes::UNKNOWN_EXTRACTOR, codes::CONFIDENCE_RANGE]
        );
        let starts: Vec<usize> = report.diagnostics.iter().map(|d| d.span.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn analyze_plan_flags_lowered_plans() {
        let reg = ExtractorRegistry::standard();
        let plan = LogicalPlan {
            ops: vec![
                PlanOp::Extract { extractors: vec!["infobox".into()] },
                PlanOp::Filter {
                    conditions: vec![Condition::AttributeIn(vec!["population".into()])],
                },
                PlanOp::Resolve { key: "name".into() },
                PlanOp::Store { table: "t".into(), key: vec!["name".into()] },
            ],
        };
        let report = analyze_plan(&plan, &reg, None).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.diagnostics[0].code, codes::KEY_NOT_PROJECTED);
        // And a clean plan stays clean.
        let plan = LogicalPlan {
            ops: vec![
                PlanOp::Extract { extractors: vec!["infobox".into()] },
                PlanOp::Resolve { key: "name".into() },
                PlanOp::Store { table: "t".into(), key: vec!["name".into()] },
            ],
        };
        assert!(analyze_plan(&plan, &reg, None).unwrap().diagnostics.is_empty());
    }

    #[test]
    fn rendered_report_shows_carets() {
        let report = lint("PIPELINE p FROM corpus EXTRACT infobx RESOLVE BY name");
        let text = report.render();
        assert!(text.contains("error[QL001]"), "{text}");
        assert!(text.contains("^^^^^^"), "{text}");
        assert!(text.contains("test.qdl:1:"), "{text}");
    }
}
