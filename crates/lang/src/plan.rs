//! Logical plans and the rule-based optimizer.
//!
//! A parsed pipeline lowers to a [`LogicalPlan`] — the same step sequence,
//! normalized. The optimizer then applies three rewrite rules, each
//! ablatable independently (experiment E5):
//!
//! 1. **Filter placement** — extraction-stream filters move directly after
//!    the `Extract` op (they only reference extraction fields, so filtering
//!    before entity resolution and curation is both legal and cheaper);
//!    adjacent filters merge.
//! 2. **Extractor pruning** — an extractor whose declared signature cannot
//!    produce any attribute admitted by the filters is removed.
//! 3. **Cost ordering** — surviving extractors run cheapest-first (stable
//!    and deterministic; matters when a downstream consumer short-circuits).

use crate::ast::{Condition, Pipeline, Step};
use crate::registry::ExtractorRegistry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One logical operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanOp {
    /// Run extraction operators.
    Extract {
        /// Operator names in execution order.
        extractors: Vec<String>,
    },
    /// Filter the extraction stream.
    Filter {
        /// Conjunctive conditions.
        conditions: Vec<Condition>,
    },
    /// Resolve entities.
    Resolve {
        /// Key attribute.
        key: String,
    },
    /// Human curation of uncertain decisions.
    Curate {
        /// Budget units.
        budget: u32,
        /// Votes per question.
        votes: u32,
    },
    /// Store into the structured store.
    Store {
        /// Target table.
        table: String,
        /// Key attributes.
        key: Vec<String>,
    },
}

/// An ordered operator list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicalPlan {
    /// Operators, first executed first.
    pub ops: Vec<PlanOp>,
}

impl LogicalPlan {
    /// Lower a parsed pipeline to a plan (1:1, unoptimized).
    pub fn from_pipeline(p: &Pipeline) -> LogicalPlan {
        let ops = p
            .steps
            .iter()
            .map(|s| match s {
                Step::Extract { extractors } => PlanOp::Extract { extractors: extractors.clone() },
                Step::Where { conditions } => PlanOp::Filter { conditions: conditions.clone() },
                Step::Resolve { key } => PlanOp::Resolve { key: key.clone() },
                Step::Curate { budget, votes } => PlanOp::Curate { budget: *budget, votes: *votes },
                Step::Store { table, key } => {
                    PlanOp::Store { table: table.clone(), key: key.clone() }
                }
            })
            .collect();
        LogicalPlan { ops }
    }

    /// The attribute allow-list implied by the plan's filters, if every
    /// filter-constrained attribute set intersects (None = unrestricted).
    pub fn attribute_allowlist(&self) -> Option<Vec<String>> {
        let mut allow: Option<Vec<String>> = None;
        for op in &self.ops {
            let PlanOp::Filter { conditions } = op else { continue };
            for c in conditions {
                if let Some(attrs) = c.attribute_set() {
                    let set: Vec<String> = attrs.iter().map(|a| a.to_string()).collect();
                    allow = Some(match allow {
                        None => set,
                        Some(prev) => prev.into_iter().filter(|a| set.contains(a)).collect(),
                    });
                }
            }
        }
        allow
    }

    /// Estimated cost in operator units over `n_docs` documents.
    pub fn estimated_cost(&self, registry: &ExtractorRegistry, n_docs: usize) -> f64 {
        self.ops
            .iter()
            .map(|op| match op {
                PlanOp::Extract { extractors } => {
                    extractors.iter().map(|e| registry.get(e).map_or(1.0, |r| r.cost)).sum::<f64>()
                        * n_docs as f64
                }
                // Non-extraction ops are per-item and cheap relative to IE.
                _ => 0.1 * n_docs as f64,
            })
            .sum()
    }

    /// Render an EXPLAIN listing through the shared plan renderer (the
    /// same tree display `quarry-query`'s physical explain uses).
    pub fn explain(&self, registry: &ExtractorRegistry, n_docs: usize) -> String {
        use quarry_exec::PlanNode;
        let root = PlanNode::branch(
            format!(
                "PLAN ({} ops, est. cost {:.0} units over {n_docs} docs)",
                self.ops.len(),
                self.estimated_cost(registry, n_docs)
            ),
            self.ops
                .iter()
                .enumerate()
                .map(|(i, op)| PlanNode::leaf(format!("{i}: {op}")))
                .collect(),
        );
        root.render()
    }
}

impl fmt::Display for PlanOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanOp::Extract { extractors } => write!(f, "Extract[{}]", extractors.join(", ")),
            PlanOp::Filter { conditions } => {
                let cs: Vec<String> = conditions.iter().map(Condition::to_string).collect();
                write!(f, "Filter[{}]", cs.join(" AND "))
            }
            PlanOp::Resolve { key } => write!(f, "Resolve[by {key}]"),
            PlanOp::Curate { budget, votes } => write!(f, "Curate[budget {budget}, votes {votes}]"),
            PlanOp::Store { table, key } => write!(f, "Store[{table} key {}]", key.join(", ")),
        }
    }
}

/// Optimizer toggles (all on by default; E5 ablates them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerConfig {
    /// Rule 1: move/merge filters directly after extraction.
    pub filter_placement: bool,
    /// Rule 2: drop extractors that cannot satisfy the filters.
    pub extractor_pruning: bool,
    /// Rule 3: order extractors by ascending cost.
    pub cost_ordering: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig { filter_placement: true, extractor_pruning: true, cost_ordering: true }
    }
}

/// Optimize a plan under the default configuration.
pub fn optimize(plan: &LogicalPlan, registry: &ExtractorRegistry) -> LogicalPlan {
    optimize_with(plan, registry, OptimizerConfig::default())
}

/// Optimize with explicit toggles.
pub fn optimize_with(
    plan: &LogicalPlan,
    registry: &ExtractorRegistry,
    cfg: OptimizerConfig,
) -> LogicalPlan {
    let mut ops = plan.ops.clone();

    if cfg.filter_placement {
        // Collect every filter, merge, and reinsert right after Extract.
        let mut conditions = Vec::new();
        ops.retain(|op| match op {
            PlanOp::Filter { conditions: cs } => {
                conditions.extend(cs.clone());
                false
            }
            _ => true,
        });
        if !conditions.is_empty() {
            let at = ops
                .iter()
                .position(|op| !matches!(op, PlanOp::Extract { .. }))
                .unwrap_or(ops.len());
            ops.insert(at, PlanOp::Filter { conditions });
        }
    }

    if cfg.extractor_pruning {
        let allow = LogicalPlan { ops: ops.clone() }.attribute_allowlist();
        if let Some(allow) = allow {
            let allow_refs: Vec<&str> = allow.iter().map(String::as_str).collect();
            for op in &mut ops {
                if let PlanOp::Extract { extractors } = op {
                    extractors.retain(|e| {
                        registry.get(e).is_none_or(|r| r.produces.intersects(&allow_refs))
                    });
                }
            }
        }
    }

    if cfg.cost_ordering {
        for op in &mut ops {
            if let PlanOp::Extract { extractors } = op {
                extractors.sort_by(|a, b| {
                    let ca = registry.get(a).map_or(1.0, |r| r.cost);
                    let cb = registry.get(b).map_or(1.0, |r| r.cost);
                    ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(b))
                });
            }
        }
    }

    LogicalPlan { ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn plan(src: &str) -> LogicalPlan {
        LogicalPlan::from_pipeline(&parse(src).unwrap())
    }

    const SRC: &str = r#"
PIPELINE p FROM corpus
EXTRACT rules, infobox, rule:monthly-temperature
RESOLVE BY name
WHERE attribute IN ("population", "name")
STORE INTO cities KEY name
"#;

    #[test]
    fn lowering_preserves_step_order() {
        let p = plan(SRC);
        assert_eq!(p.ops.len(), 4);
        assert!(matches!(p.ops[0], PlanOp::Extract { .. }));
        assert!(matches!(p.ops[2], PlanOp::Filter { .. }));
    }

    #[test]
    fn filter_moves_before_resolve() {
        let reg = ExtractorRegistry::standard();
        let opt = optimize(&plan(SRC), &reg);
        let filter_pos = opt.ops.iter().position(|o| matches!(o, PlanOp::Filter { .. })).unwrap();
        let resolve_pos = opt.ops.iter().position(|o| matches!(o, PlanOp::Resolve { .. })).unwrap();
        assert!(filter_pos < resolve_pos, "{opt:?}");
    }

    #[test]
    fn adjacent_filters_merge() {
        let src = r#"PIPELINE p FROM corpus
EXTRACT infobox
WHERE confidence >= 0.5
WHERE attribute = "population""#;
        let reg = ExtractorRegistry::standard();
        let opt = optimize(&plan(src), &reg);
        let filters: Vec<_> =
            opt.ops.iter().filter(|o| matches!(o, PlanOp::Filter { .. })).collect();
        assert_eq!(filters.len(), 1);
        if let PlanOp::Filter { conditions } = filters[0] {
            assert_eq!(conditions.len(), 2);
        }
    }

    #[test]
    fn pruning_drops_extractors_that_cannot_help() {
        // Only `author` is wanted; the monthly-temperature rule can't
        // produce it and must go, while infobox (Any) stays.
        let src = r#"PIPELINE p FROM corpus
EXTRACT infobox, rule:monthly-temperature, rule:lead-author
WHERE attribute = "author""#;
        let reg = ExtractorRegistry::standard();
        let opt = optimize(&plan(src), &reg);
        if let PlanOp::Extract { extractors } = &opt.ops[0] {
            assert!(extractors.contains(&"infobox".to_string()));
            assert!(extractors.contains(&"rule:lead-author".to_string()));
            assert!(!extractors.contains(&"rule:monthly-temperature".to_string()));
        } else {
            panic!("first op should be Extract: {opt:?}");
        }
    }

    #[test]
    fn cost_ordering_puts_cheap_first() {
        let src = "PIPELINE p FROM corpus EXTRACT rules, infobox";
        let reg = ExtractorRegistry::standard();
        let opt = optimize(&plan(src), &reg);
        if let PlanOp::Extract { extractors } = &opt.ops[0] {
            assert_eq!(extractors[0], "infobox", "cost 1 before cost 5");
        } else {
            panic!();
        }
    }

    #[test]
    fn optimized_plan_costs_less() {
        let reg = ExtractorRegistry::standard();
        let naive = plan(SRC);
        let opt = optimize(&naive, &reg);
        assert!(opt.estimated_cost(&reg, 100) < naive.estimated_cost(&reg, 100));
    }

    #[test]
    fn toggles_disable_rules() {
        let reg = ExtractorRegistry::standard();
        let none = OptimizerConfig {
            filter_placement: false,
            extractor_pruning: false,
            cost_ordering: false,
        };
        let p = plan(SRC);
        assert_eq!(optimize_with(&p, &reg, none), p, "all-off is identity");
    }

    #[test]
    fn allowlist_intersects_multiple_conditions() {
        let src = r#"PIPELINE p FROM corpus
EXTRACT infobox
WHERE attribute IN ("a", "b") AND attribute = "b""#;
        assert_eq!(plan(src).attribute_allowlist(), Some(vec!["b".to_string()]));
        let src2 = "PIPELINE p FROM corpus EXTRACT infobox WHERE confidence >= 0.5";
        assert_eq!(plan(src2).attribute_allowlist(), None);
    }

    #[test]
    fn explain_renders() {
        let reg = ExtractorRegistry::standard();
        let text = optimize(&plan(SRC), &reg).explain(&reg, 50);
        assert!(text.contains("PLAN"));
        assert!(text.contains("Resolve[by name]"));
        assert!(text.contains("est. cost"));
    }

    #[test]
    fn unknown_extractors_survive_pruning() {
        // Pruning must not silently drop operators it knows nothing about.
        let src = r#"PIPELINE p FROM corpus
EXTRACT mystery_op
WHERE attribute = "x""#;
        let reg = ExtractorRegistry::standard();
        let opt = optimize(&plan(src), &reg);
        if let PlanOp::Extract { extractors } = &opt.ops[0] {
            assert_eq!(extractors, &vec!["mystery_op".to_string()]);
        } else {
            panic!();
        }
    }
}
