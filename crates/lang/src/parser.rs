//! QDL parser: recursive descent over the token stream.

use crate::ast::{Condition, Pipeline, Step};
use crate::lexer::{lex, Token};
use std::fmt;

/// Parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(ParseError(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError(format!("expected identifier, found {other:?}"))),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(s),
            other => Err(ParseError(format!("expected string, found {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            other => Err(ParseError(format!("expected number, found {other:?}"))),
        }
    }

    fn ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut out = vec![self.ident()?];
        while self.peek() == Some(&Token::Comma) {
            self.next();
            out.push(self.ident()?);
        }
        Ok(out)
    }

    fn pipeline(&mut self) -> Result<Pipeline, ParseError> {
        self.keyword("PIPELINE")?;
        let name = self.ident()?;
        self.keyword("FROM")?;
        let source = self.ident()?;
        let mut steps = Vec::new();
        while let Some(tok) = self.peek() {
            let Token::Ident(kw) = tok else {
                return Err(ParseError(format!("expected step keyword, found {tok:?}")));
            };
            let step = match kw.to_ascii_uppercase().as_str() {
                "EXTRACT" => {
                    self.next();
                    Step::Extract { extractors: self.ident_list()? }
                }
                "WHERE" => {
                    self.next();
                    Step::Where { conditions: self.conditions()? }
                }
                "RESOLVE" => {
                    self.next();
                    self.keyword("BY")?;
                    Step::Resolve { key: self.ident()? }
                }
                "CURATE" => {
                    self.next();
                    self.keyword("BUDGET")?;
                    let budget = self.number()? as u32;
                    self.keyword("VOTES")?;
                    let votes = self.number()? as u32;
                    Step::Curate { budget, votes }
                }
                "STORE" => {
                    self.next();
                    self.keyword("INTO")?;
                    let table = self.ident()?;
                    self.keyword("KEY")?;
                    Step::Store { table, key: self.ident_list()? }
                }
                other => return Err(ParseError(format!("unknown step {other}"))),
            };
            steps.push(step);
        }
        Ok(Pipeline { name, source, steps })
    }

    fn conditions(&mut self) -> Result<Vec<Condition>, ParseError> {
        let mut out = vec![self.condition()?];
        while self.peek_keyword("AND") {
            self.next();
            out.push(self.condition()?);
        }
        Ok(out)
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        let field = self.ident()?;
        match field.to_ascii_lowercase().as_str() {
            "attribute" => {
                if self.peek_keyword("IN") {
                    self.next();
                    if self.next() != Some(Token::LParen) {
                        return Err(ParseError("expected ( after IN".into()));
                    }
                    let mut attrs = vec![self.string()?];
                    while self.peek() == Some(&Token::Comma) {
                        self.next();
                        attrs.push(self.string()?);
                    }
                    if self.next() != Some(Token::RParen) {
                        return Err(ParseError("expected ) closing IN list".into()));
                    }
                    Ok(Condition::AttributeIn(attrs))
                } else if self.next() == Some(Token::Eq) {
                    Ok(Condition::AttributeEq(self.string()?))
                } else {
                    Err(ParseError("expected = or IN after attribute".into()))
                }
            }
            "confidence" => {
                if self.next() != Some(Token::Ge) {
                    return Err(ParseError("expected >= after confidence".into()));
                }
                Ok(Condition::ConfidenceGe(self.number()?))
            }
            "extractor" => {
                if self.next() != Some(Token::Eq) {
                    return Err(ParseError("expected = after extractor".into()));
                }
                Ok(Condition::ExtractorEq(self.string()?))
            }
            other => Err(ParseError(format!("unknown condition field {other}"))),
        }
    }
}

/// Parse a QDL program.
pub fn parse(src: &str) -> Result<Pipeline, ParseError> {
    let tokens = lex(src).map_err(|e| ParseError(format!("{} at byte {}", e.message, e.at)))?;
    let mut p = Parser { tokens, pos: 0 };
    let pipeline = p.pipeline()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError(format!("trailing tokens after program: {:?}", p.peek())));
    }
    Ok(pipeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const PROGRAM: &str = r#"
PIPELINE city_facts
FROM corpus
EXTRACT infobox, prose-rule
WHERE attribute IN ("population", "state") AND confidence >= 0.6
RESOLVE BY name
CURATE BUDGET 50 VOTES 3
STORE INTO cities KEY name
"#;

    #[test]
    fn parses_full_program() {
        let p = parse(PROGRAM).unwrap();
        assert_eq!(p.name, "city_facts");
        assert_eq!(p.source, "corpus");
        assert_eq!(p.steps.len(), 5);
        assert_eq!(
            p.steps[0],
            Step::Extract { extractors: vec!["infobox".into(), "prose-rule".into()] }
        );
        assert_eq!(
            p.steps[1],
            Step::Where {
                conditions: vec![
                    Condition::AttributeIn(vec!["population".into(), "state".into()]),
                    Condition::ConfidenceGe(0.6),
                ]
            }
        );
        assert_eq!(p.steps[3], Step::Curate { budget: 50, votes: 3 });
        assert_eq!(p.steps[4], Step::Store { table: "cities".into(), key: vec!["name".into()] });
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let p = parse("pipeline p from corpus extract infobox").unwrap();
        assert_eq!(p.steps.len(), 1);
    }

    #[test]
    fn print_reparse_round_trip() {
        let p = parse(PROGRAM).unwrap();
        let printed = p.to_string();
        let reparsed = parse(&printed).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn attribute_eq_and_extractor_conditions() {
        let p = parse(
            "PIPELINE p FROM corpus EXTRACT infobox WHERE attribute = \"population\" AND extractor = \"infobox\"",
        )
        .unwrap();
        assert_eq!(
            p.steps[1],
            Step::Where {
                conditions: vec![
                    Condition::AttributeEq("population".into()),
                    Condition::ExtractorEq("infobox".into()),
                ]
            }
        );
    }

    #[test]
    fn multi_key_store() {
        let p = parse("PIPELINE p FROM corpus EXTRACT infobox STORE INTO temps KEY city, month")
            .unwrap();
        assert_eq!(
            p.steps[1],
            Step::Store { table: "temps".into(), key: vec!["city".into(), "month".into()] }
        );
    }

    #[test]
    fn parse_errors_are_descriptive() {
        for (src, needle) in [
            ("FROM corpus", "PIPELINE"),
            ("PIPELINE p EXTRACT x", "FROM"),
            ("PIPELINE p FROM corpus FROBNICATE", "unknown step"),
            ("PIPELINE p FROM corpus WHERE speed >= 1", "unknown condition"),
            ("PIPELINE p FROM corpus CURATE BUDGET x", "expected number"),
            ("PIPELINE p FROM corpus EXTRACT infobox )", "expected step"),
        ] {
            let err = parse(src).unwrap_err();
            assert!(err.0.contains(needle), "{src}: {err}");
        }
    }

    proptest! {
        #[test]
        fn prop_print_reparse_identity(
            name in "[a-z][a-z_]{0,8}",
            extractors in proptest::collection::vec("[a-z](-?[a-z]){0,5}", 1..4),
            attrs in proptest::collection::vec("[a-z_]{1,8}", 1..4),
            conf in 0.0f64..1.0,
            budget in 0u32..1000,
            votes in 1u32..9,
        ) {
            let p = Pipeline {
                name,
                source: "corpus".into(),
                steps: vec![
                    Step::Extract { extractors },
                    Step::Where { conditions: vec![
                        Condition::AttributeIn(attrs),
                        Condition::ConfidenceGe((conf * 100.0).round() / 100.0),
                    ]},
                    Step::Curate { budget, votes },
                ],
            };
            let reparsed = parse(&p.to_string()).unwrap();
            prop_assert_eq!(p, reparsed);
        }
    }
}
