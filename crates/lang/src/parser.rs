//! QDL parser: recursive descent over the token stream.

use crate::ast::{Condition, ConditionSpans, Pipeline, ProgramSpans, Step, StepSpans};
use crate::lexer::{lex_spanned, SpannedToken, Token};
use quarry_exec::diag::{line_col_of, Span};
use std::fmt;

/// Valid step keywords, listed in "unknown step" errors.
pub const STEP_KEYWORDS: [&str; 5] = ["EXTRACT", "WHERE", "RESOLVE", "CURATE", "STORE"];
/// Valid condition fields, listed in "unknown condition field" errors.
pub const CONDITION_FIELDS: [&str; 3] = ["attribute", "confidence", "extractor"];

/// Parse error, anchored to the byte span of the offending token.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte range of the offending token (a point span at end of input
    /// when the program ended early).
    pub span: Span,
    /// 1-based line of `span.start`.
    pub line: usize,
    /// 1-based column of `span.start`.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'s> {
    src: &'s str,
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl<'s> Parser<'s> {
    fn err(&self, span: Span, message: String) -> ParseError {
        let (line, col) = line_col_of(self.src, span.start);
        ParseError { message, span, line, col }
    }

    /// Span to blame when the current token is missing or wrong: the
    /// token's own span, or a point at end of input.
    fn here(&self) -> Span {
        self.tokens.get(self.pos).map(|t| t.span).unwrap_or_else(|| Span::point(self.src.len()))
    }

    fn describe(&self) -> String {
        match self.tokens.get(self.pos) {
            Some(t) => format!("`{}`", t.tok),
            None => "end of input".into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<SpannedToken> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> Result<Span, ParseError> {
        let (span, found) = (self.here(), self.describe());
        match self.next() {
            Some(SpannedToken { tok: Token::Ident(s), span }) if s.eq_ignore_ascii_case(kw) => {
                Ok(span)
            }
            _ => Err(self.err(span, format!("expected {kw}, found {found}"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<(String, Span), ParseError> {
        let (span, found) = (self.here(), self.describe());
        match self.next() {
            Some(SpannedToken { tok: Token::Ident(s), span }) => Ok((s, span)),
            _ => Err(self.err(span, format!("expected identifier, found {found}"))),
        }
    }

    fn string(&mut self) -> Result<(String, Span), ParseError> {
        let (span, found) = (self.here(), self.describe());
        match self.next() {
            Some(SpannedToken { tok: Token::Str(s), span }) => Ok((s, span)),
            _ => Err(self.err(span, format!("expected string, found {found}"))),
        }
    }

    fn number(&mut self) -> Result<(f64, Span), ParseError> {
        let (span, found) = (self.here(), self.describe());
        match self.next() {
            Some(SpannedToken { tok: Token::Number(n), span }) => Ok((n, span)),
            _ => Err(self.err(span, format!("expected number, found {found}"))),
        }
    }

    fn punct(&mut self, want: Token, what: &str) -> Result<(), ParseError> {
        let (span, found) = (self.here(), self.describe());
        match self.next() {
            Some(SpannedToken { tok, .. }) if tok == want => Ok(()),
            _ => Err(self.err(span, format!("expected {what}, found {found}"))),
        }
    }

    fn ident_list(&mut self) -> Result<(Vec<String>, Vec<Span>), ParseError> {
        let first = self.ident()?;
        let (mut names, mut spans) = (vec![first.0], vec![first.1]);
        while self.peek() == Some(&Token::Comma) {
            self.next();
            let (n, s) = self.ident()?;
            names.push(n);
            spans.push(s);
        }
        Ok((names, spans))
    }

    fn pipeline(&mut self) -> Result<(Pipeline, ProgramSpans), ParseError> {
        self.keyword("PIPELINE")?;
        let (name, name_span) = self.ident()?;
        self.keyword("FROM")?;
        let (source, source_span) = self.ident()?;
        let mut steps = Vec::new();
        let mut step_spans = Vec::new();
        while let Some(tok) = self.peek() {
            let Token::Ident(kw) = tok else {
                let (span, found) = (self.here(), self.describe());
                return Err(self.err(span, format!("expected step keyword, found {found}")));
            };
            let kw = kw.to_ascii_uppercase();
            // The peek above proved a token is present: consume it once
            // here rather than `next().unwrap()` in every arm below.
            let Some(step_tok) = self.next() else { break };
            let keyword = step_tok.span;
            let (step, spans) = match kw.as_str() {
                "EXTRACT" => {
                    let (extractors, spans) = self.ident_list()?;
                    (
                        Step::Extract { extractors },
                        StepSpans::Extract { keyword, extractors: spans },
                    )
                }
                "WHERE" => {
                    let (conditions, spans) = self.conditions()?;
                    (Step::Where { conditions }, StepSpans::Where { keyword, conditions: spans })
                }
                "RESOLVE" => {
                    self.keyword("BY")?;
                    let (key, key_span) = self.ident()?;
                    (Step::Resolve { key }, StepSpans::Resolve { keyword, key: key_span })
                }
                "CURATE" => {
                    self.keyword("BUDGET")?;
                    let (budget, budget_span) = self.number()?;
                    self.keyword("VOTES")?;
                    let (votes, votes_span) = self.number()?;
                    (
                        Step::Curate { budget: budget as u32, votes: votes as u32 },
                        StepSpans::Curate { keyword, budget: budget_span, votes: votes_span },
                    )
                }
                "STORE" => {
                    self.keyword("INTO")?;
                    let (table, table_span) = self.ident()?;
                    self.keyword("KEY")?;
                    let (key, key_spans) = self.ident_list()?;
                    (
                        Step::Store { table, key },
                        StepSpans::Store { keyword, table: table_span, keys: key_spans },
                    )
                }
                other => {
                    return Err(self.err(
                        keyword,
                        format!(
                            "unknown step {other}; valid steps are {}",
                            STEP_KEYWORDS.join(", ")
                        ),
                    ));
                }
            };
            steps.push(step);
            step_spans.push(spans);
        }
        Ok((
            Pipeline { name, source, steps },
            ProgramSpans { name: name_span, source: source_span, steps: step_spans },
        ))
    }

    fn conditions(&mut self) -> Result<(Vec<Condition>, Vec<ConditionSpans>), ParseError> {
        let first = self.condition()?;
        let (mut conds, mut spans) = (vec![first.0], vec![first.1]);
        while self.peek_keyword("AND") {
            self.next();
            let (c, s) = self.condition()?;
            conds.push(c);
            spans.push(s);
        }
        Ok((conds, spans))
    }

    fn condition(&mut self) -> Result<(Condition, ConditionSpans), ParseError> {
        let (field, field_span) = self.ident()?;
        match field.to_ascii_lowercase().as_str() {
            "attribute" => {
                if self.peek_keyword("IN") {
                    self.next();
                    self.punct(Token::LParen, "( after IN")?;
                    let first = self.string()?;
                    let (mut attrs, mut value_spans) = (vec![first.0], vec![first.1]);
                    while self.peek() == Some(&Token::Comma) {
                        self.next();
                        let (a, s) = self.string()?;
                        attrs.push(a);
                        value_spans.push(s);
                    }
                    let close = self.here();
                    self.punct(Token::RParen, ") closing IN list")?;
                    Ok((
                        Condition::AttributeIn(attrs),
                        ConditionSpans { full: field_span.to(close), values: value_spans },
                    ))
                } else if self.peek() == Some(&Token::Eq) {
                    self.next();
                    let (value, value_span) = self.string()?;
                    Ok((
                        Condition::AttributeEq(value),
                        ConditionSpans {
                            full: field_span.to(value_span),
                            values: vec![value_span],
                        },
                    ))
                } else {
                    let (span, found) = (self.here(), self.describe());
                    Err(self.err(span, format!("expected = or IN after attribute, found {found}")))
                }
            }
            "confidence" => {
                let (span, found) = (self.here(), self.describe());
                if self.next().map(|t| t.tok) != Some(Token::Ge) {
                    return Err(
                        self.err(span, format!("expected >= after confidence, found {found}"))
                    );
                }
                let (bound, bound_span) = self.number()?;
                Ok((
                    Condition::ConfidenceGe(bound),
                    ConditionSpans { full: field_span.to(bound_span), values: vec![bound_span] },
                ))
            }
            "extractor" => {
                let (span, found) = (self.here(), self.describe());
                if self.next().map(|t| t.tok) != Some(Token::Eq) {
                    return Err(
                        self.err(span, format!("expected = after extractor, found {found}"))
                    );
                }
                let (value, value_span) = self.string()?;
                Ok((
                    Condition::ExtractorEq(value),
                    ConditionSpans { full: field_span.to(value_span), values: vec![value_span] },
                ))
            }
            other => Err(self.err(
                field_span,
                format!(
                    "unknown condition field {other}; valid fields are {}",
                    CONDITION_FIELDS.join(", ")
                ),
            )),
        }
    }
}

/// Parse a QDL program.
pub fn parse(src: &str) -> Result<Pipeline, ParseError> {
    parse_spanned(src).map(|(p, _)| p)
}

/// Parse a QDL program, also returning the byte-span table used by the
/// static analyzer and diagnostics renderer.
pub fn parse_spanned(src: &str) -> Result<(Pipeline, ProgramSpans), ParseError> {
    let tokens = lex_spanned(src).map_err(|e| ParseError {
        message: e.message.clone(),
        span: Span::point(e.at),
        line: e.line,
        col: e.col,
    })?;
    let mut p = Parser { src, tokens, pos: 0 };
    let out = p.pipeline()?;
    if p.pos != p.tokens.len() {
        let (span, found) = (p.here(), p.describe());
        return Err(p.err(span, format!("trailing tokens after program: {found}")));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const PROGRAM: &str = r#"
PIPELINE city_facts
FROM corpus
EXTRACT infobox, prose-rule
WHERE attribute IN ("population", "state") AND confidence >= 0.6
RESOLVE BY name
CURATE BUDGET 50 VOTES 3
STORE INTO cities KEY name
"#;

    #[test]
    fn parses_full_program() {
        let p = parse(PROGRAM).unwrap();
        assert_eq!(p.name, "city_facts");
        assert_eq!(p.source, "corpus");
        assert_eq!(p.steps.len(), 5);
        assert_eq!(
            p.steps[0],
            Step::Extract { extractors: vec!["infobox".into(), "prose-rule".into()] }
        );
        assert_eq!(
            p.steps[1],
            Step::Where {
                conditions: vec![
                    Condition::AttributeIn(vec!["population".into(), "state".into()]),
                    Condition::ConfidenceGe(0.6),
                ]
            }
        );
        assert_eq!(p.steps[3], Step::Curate { budget: 50, votes: 3 });
        assert_eq!(p.steps[4], Step::Store { table: "cities".into(), key: vec!["name".into()] });
    }

    #[test]
    fn spans_point_at_the_source_text() {
        let (p, spans) = parse_spanned(PROGRAM).unwrap();
        assert_eq!(&PROGRAM[spans.name.start..spans.name.end], "city_facts");
        assert_eq!(&PROGRAM[spans.source.start..spans.source.end], "corpus");
        assert_eq!(spans.steps.len(), p.steps.len());
        let StepSpans::Extract { keyword, extractors } = &spans.steps[0] else {
            panic!("expected extract spans");
        };
        assert_eq!(&PROGRAM[keyword.start..keyword.end], "EXTRACT");
        assert_eq!(&PROGRAM[extractors[1].start..extractors[1].end], "prose-rule");
        let StepSpans::Where { conditions, .. } = &spans.steps[1] else {
            panic!("expected where spans");
        };
        assert_eq!(
            &PROGRAM[conditions[0].full.start..conditions[0].full.end],
            "attribute IN (\"population\", \"state\")"
        );
        assert_eq!(
            &PROGRAM[conditions[0].values[0].start..conditions[0].values[0].end],
            "\"population\""
        );
        assert_eq!(&PROGRAM[conditions[1].values[0].start..conditions[1].values[0].end], "0.6");
        let StepSpans::Store { table, keys, .. } = &spans.steps[4] else {
            panic!("expected store spans");
        };
        assert_eq!(&PROGRAM[table.start..table.end], "cities");
        assert_eq!(&PROGRAM[keys[0].start..keys[0].end], "name");
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let p = parse("pipeline p from corpus extract infobox").unwrap();
        assert_eq!(p.steps.len(), 1);
    }

    #[test]
    fn print_reparse_round_trip() {
        let p = parse(PROGRAM).unwrap();
        let printed = p.to_string();
        let reparsed = parse(&printed).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn attribute_eq_and_extractor_conditions() {
        let p = parse(
            "PIPELINE p FROM corpus EXTRACT infobox WHERE attribute = \"population\" AND extractor = \"infobox\"",
        )
        .unwrap();
        assert_eq!(
            p.steps[1],
            Step::Where {
                conditions: vec![
                    Condition::AttributeEq("population".into()),
                    Condition::ExtractorEq("infobox".into()),
                ]
            }
        );
    }

    #[test]
    fn multi_key_store() {
        let p = parse("PIPELINE p FROM corpus EXTRACT infobox STORE INTO temps KEY city, month")
            .unwrap();
        assert_eq!(
            p.steps[1],
            Step::Store { table: "temps".into(), key: vec!["city".into(), "month".into()] }
        );
    }

    #[test]
    fn parse_errors_are_descriptive() {
        for (src, needle) in [
            ("FROM corpus", "PIPELINE"),
            ("PIPELINE p EXTRACT x", "FROM"),
            ("PIPELINE p FROM corpus FROBNICATE", "unknown step"),
            ("PIPELINE p FROM corpus WHERE speed >= 1", "unknown condition"),
            ("PIPELINE p FROM corpus CURATE BUDGET x", "expected number"),
            ("PIPELINE p FROM corpus EXTRACT infobox )", "expected step"),
        ] {
            let err = parse(src).unwrap_err();
            assert!(err.message.contains(needle), "{src}: {err}");
        }
    }

    #[test]
    fn unknown_step_and_condition_errors_list_alternatives() {
        let err = parse("PIPELINE p FROM corpus FROBNICATE").unwrap_err();
        for kw in STEP_KEYWORDS {
            assert!(err.message.contains(kw), "missing {kw} in: {err}");
        }
        let err = parse("PIPELINE p FROM corpus WHERE speed >= 1").unwrap_err();
        for field in CONDITION_FIELDS {
            assert!(err.message.contains(field), "missing {field} in: {err}");
        }
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let err = parse("PIPELINE p\nFROM corpus\nWHERE speed >= 1").unwrap_err();
        assert_eq!((err.line, err.col), (3, 7));
        assert!(err.to_string().starts_with("parse error at 3:7: "), "{err}");
        let src = "PIPELINE p\nFROM corpus\nWHERE speed >= 1";
        assert_eq!(&src[err.span.start..err.span.end], "speed");
        // End-of-input errors point one past the last byte.
        let err = parse("PIPELINE p FROM corpus RESOLVE").unwrap_err();
        assert_eq!(err.span, Span::point("PIPELINE p FROM corpus RESOLVE".len()));
        assert!(err.message.contains("end of input"), "{err}");
    }

    proptest! {
        #[test]
        fn prop_print_reparse_identity(
            name in "[a-z][a-z_]{0,8}",
            extractors in proptest::collection::vec("[a-z](-?[a-z]){0,5}", 1..4),
            attrs in proptest::collection::vec("[a-z_]{1,8}", 1..4),
            conf in 0.0f64..1.0,
            budget in 0u32..1000,
            votes in 1u32..9,
        ) {
            let p = Pipeline {
                name,
                source: "corpus".into(),
                steps: vec![
                    Step::Extract { extractors },
                    Step::Where { conditions: vec![
                        Condition::AttributeIn(attrs),
                        Condition::ConfidenceGe((conf * 100.0).round() / 100.0),
                    ]},
                    Step::Curate { budget, votes },
                ],
            };
            let reparsed = parse(&p.to_string()).unwrap();
            prop_assert_eq!(p, reparsed);
        }
    }
}
