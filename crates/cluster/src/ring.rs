//! Consistent-hash ring over shard indexes.
//!
//! The router places every table row on exactly one shard by hashing its
//! canonical primary-key bytes (the storage layer's [`codec`] row
//! encoding, so logically equal keys hash identically regardless of how
//! the client spelled them) onto a ring of virtual nodes. Virtual nodes
//! smooth the distribution and keep reshard movement proportional to
//! 1/N, the standard consistent-hashing argument.
//!
//! Hashing is a hand-rolled FNV-1a-64 with a finalizing avalanche mix:
//! the placement of every key is part of the cluster's on-the-wire
//! contract (two routers over the same topology must agree), so it
//! cannot depend on `std`'s unstable `DefaultHasher`.
//!
//! [`codec`]: quarry_storage::codec

use quarry_storage::{codec, Value};
use std::collections::BTreeMap;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a-64 over `bytes`, finished with a 64-bit avalanche mix
/// (splitmix64's finalizer) so short keys still spread over the ring.
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Avalanche: FNV alone is weak in the high bits for short inputs.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring mapping primary keys to shard indexes.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Virtual node position → owning shard index.
    ring: BTreeMap<u64, usize>,
    shards: usize,
}

/// Virtual nodes per shard: enough to keep the spread within a few
/// percent at single-digit shard counts.
const VNODES: usize = 64;

impl HashRing {
    /// A ring over `shards` shard indexes (`0..shards`).
    pub fn new(shards: usize) -> HashRing {
        assert!(shards > 0, "a ring needs at least one shard");
        let mut ring = BTreeMap::new();
        for shard in 0..shards {
            for vnode in 0..VNODES {
                let mut label = Vec::with_capacity(16);
                label.extend_from_slice(&(shard as u64).to_le_bytes());
                label.extend_from_slice(&(vnode as u64).to_le_bytes());
                // First-writer wins on the (astronomically unlikely)
                // collision; deterministic because insertion order is.
                ring.entry(hash_bytes(&label)).or_insert(shard);
            }
        }
        HashRing { ring, shards }
    }

    /// Number of shards behind the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning a primary key, given the key's values in key
    /// order. Encoding errors cannot occur for valid stored values; a
    /// hypothetical one falls back to shard 0 deterministically.
    pub fn shard_for_key(&self, key: &[Value]) -> usize {
        let mut bytes = Vec::with_capacity(16);
        if codec::write_row(&mut bytes, key).is_err() {
            return 0;
        }
        self.shard_for_bytes(&bytes)
    }

    /// The shard owning an already-encoded key.
    pub fn shard_for_bytes(&self, bytes: &[u8]) -> usize {
        let h = hash_bytes(bytes);
        let owner = self
            .ring
            .range(h..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, shard)| *shard);
        owner.unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_across_ring_instances() {
        let a = HashRing::new(3);
        let b = HashRing::new(3);
        for i in 0..500i64 {
            let key = vec![Value::Int(i)];
            assert_eq!(a.shard_for_key(&key), b.shard_for_key(&key));
        }
    }

    #[test]
    fn spread_is_roughly_even() {
        let ring = HashRing::new(3);
        let mut counts = [0usize; 3];
        for i in 0..3000i64 {
            counts[ring.shard_for_key(&[Value::Int(i)])] += 1;
        }
        for c in counts {
            assert!((500..=1700).contains(&c), "shard spread badly skewed: {counts:?}");
        }
    }

    #[test]
    fn text_and_composite_keys_route() {
        let ring = HashRing::new(4);
        let k1 = vec![Value::Text("madison".into()), Value::Int(3)];
        let k2 = vec![Value::Text("madison".into()), Value::Int(4)];
        assert!(ring.shard_for_key(&k1) < 4);
        // Same prefix, different suffix: allowed to differ (and the
        // avalanche mix makes it likely).
        let _ = k2;
    }

    #[test]
    fn single_shard_ring_owns_everything() {
        let ring = HashRing::new(1);
        for i in 0..50i64 {
            assert_eq!(ring.shard_for_key(&[Value::Int(i)]), 0);
        }
    }
}
