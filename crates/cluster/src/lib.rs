//! The physical layer: scale-out serving and parallel processing.
//!
//! The source paper's physical layer has two jobs. For *computation* —
//! "given that IE and II are often very computation intensive ... we
//! need parallel processing in the physical layer" — the answer is "a
//! computer cluster running Map-Reduce-like processes", kept here as
//! [`mapreduce`]. For *serving*, the extracted structured store must be
//! a shared service: many users querying concurrently, surviving the
//! loss of a machine. This crate's top level is that serving cluster,
//! simulated with OS threads and loopback TCP on one machine (the same
//! laptop-scale discipline as the MapReduce engine):
//!
//! - [`ring`] — a consistent-hash ring placing every primary key on
//!   exactly one shard, stable across router instances;
//! - [`router`] — a wire-protocol front door fanning requests out over
//!   the shards and merging replies deterministically;
//! - [`node`] — process supervision: shard primaries with WAL-shipping
//!   replication listeners, read-only replicas applying the stream,
//!   kill/promote/retarget failover choreography;
//! - [`mapreduce`] — the original in-process MapReduce engine (map over
//!   a worker pool, hash shuffle, parallel reduce, fault re-execution).
//!
//! The replication transport itself lives in `quarry_serve::replication`
//! (it is part of the serving wire surface); this crate composes it into
//! whole clusters. See `docs/replication.md` and `docs/serving.md`.

#![forbid(unsafe_code)]

pub mod mapreduce;
pub mod node;
pub mod ring;
pub mod router;

pub use node::{Cluster, ClusterConfig, Primary, Replica, Shard};
pub use ring::HashRing;
pub use router::{Router, RouterConfig};
