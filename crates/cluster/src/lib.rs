//! The physical layer: Map-Reduce-like parallel processing.
//!
//! "Given that IE and II are often very computation intensive ... we need
//! parallel processing in the physical layer. A popular way to achieve this
//! is to use a computer cluster running Map-Reduce-like processes." The
//! cluster is simulated with OS threads on one machine (DESIGN.md §2): the
//! same scheduling, shuffle, and fault-recovery code paths at laptop scale.
//!
//! - [`engine`] — the job runner: map tasks over a worker pool, hash
//!   shuffle, parallel reduce, deterministic output;
//! - [`fault`] — failure injection: tasks that die on scheduled attempts,
//!   re-executed by the engine until they succeed.

#![forbid(unsafe_code)]

pub mod engine;
pub mod fault;

pub use engine::{run, JobConfig, JobStats};
pub use fault::FaultPlan;
