//! The shard router: one wire-protocol front door over N shards.
//!
//! Clients speak the ordinary `quarry-serve` protocol to the router;
//! the router speaks the same protocol to every shard. Placement and
//! merging are deterministic:
//!
//! - **Point writes** (`InsertRows`, `DeleteRows`) are partitioned by
//!   primary key over the consistent-hash [`HashRing`] and forwarded to
//!   each owning shard as one transaction per shard. A batch spanning
//!   shards is atomic *per shard*, not across them — the router reports
//!   the first failure and does not roll back other shards.
//! - **DDL** (`CreateTable`, `CreateIndex`) and `Checkpoint` broadcast
//!   to every shard in shard order; the schema is also recorded in the
//!   router's catalog, which is how rows find their key columns.
//! - **Queries** fan out to every shard sequentially in shard order and
//!   merge deterministically: top-level `Sort` does a stable k-way merge
//!   (ties broken by shard index), top-level `Aggregate` combines
//!   partial aggregates by group key (`COUNT`/`SUM` add, `MIN`/`MAX`
//!   compare; `AVG` is rejected as non-distributable), anything else
//!   concatenates rows in shard order. Queries whose shape cannot be
//!   merged correctly from per-shard partials — joins, nested
//!   aggregates, inner `LIMIT` — are rejected up front rather than
//!   answered wrong.
//! - **KeywordSearch** fans out and keeps the global top-k by `(score
//!   desc, doc asc)`; candidate queries are deduplicated by fingerprint
//!   keeping the best score. Scores use shard-local statistics (see
//!   `docs/serving.md`).
//! - **Stats** merges every shard's metrics under a `shardN.` prefix,
//!   including each shard's reported LSN as `shardN.lsn` — the
//!   per-shard snapshot vector a client needs for a well-defined view.
//!
//! Every merged [`Response`] carries the **maximum** shard LSN it
//! reflects; point responses carry the owning shard's LSN unchanged.
//!
//! On a dead shard the router reconnects through the current topology
//! entry, so [`Router::retarget`] (called on replica promotion) redirects
//! that shard's traffic without touching in-flight sessions on other
//! shards.

use crate::ring::HashRing;
use quarry_exec::MetricsSnapshot;
use quarry_query::engine::{AggFn, Predicate, Query};
use quarry_serve::client::ClientConfig;
use quarry_serve::protocol::{
    read_frame, write_response, ErrorKind, FrameError, Payload, Request, Response, WireCandidate,
    WireHit, DEFAULT_MAX_FRAME,
};
use quarry_serve::{Client, ClientError};
use quarry_storage::{TableSchema, Value};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// See the poison-recovery precedent in `quarry-serve`.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Per-frame payload cap on client sessions.
    pub max_frame: usize,
    /// Session read timeout (shutdown-poll wakeup, like the server's).
    pub read_timeout: Duration,
    /// Retry policy for the router→shard legs.
    pub shard_client: ClientConfig,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_millis(25),
            shard_client: ClientConfig {
                read_timeout: Duration::from_secs(30),
                reconnect_attempts: 1,
                backoff: Duration::from_millis(2),
            },
        }
    }
}

struct RouterShared {
    ring: HashRing,
    /// Shard index → address currently serving that shard. Rewritten by
    /// [`Router::retarget`] on promotion.
    topology: Mutex<Vec<SocketAddr>>,
    /// One lazily-(re)connected client per shard. Locked per leg, never
    /// two at once; fan-out walks shards in index order.
    conn: Vec<Mutex<Option<Client>>>,
    /// Table name → schema, recorded at `CreateTable`; the source of
    /// key-column positions for partitioning. Leaf lock.
    catalog: Mutex<HashMap<String, TableSchema>>,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    cfg: RouterConfig,
}

/// A running shard router. Dropping shuts it down; shards are never
/// shut down by the router (its `Shutdown` frame drains the router
/// itself only).
pub struct Router {
    shared: Arc<RouterShared>,
    accept: Option<std::thread::JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Router {
    /// Bind `addr` and route over `shards` (index order = shard id).
    pub fn start(
        shards: Vec<SocketAddr>,
        addr: impl ToSocketAddrs,
        cfg: RouterConfig,
    ) -> io::Result<Router> {
        if shards.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "router needs >= 1 shard"));
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(RouterShared {
            ring: HashRing::new(shards.len()),
            conn: shards.iter().map(|_| Mutex::new(None)).collect(),
            topology: Mutex::new(shards),
            catalog: Mutex::new(HashMap::new()),
            shutting_down: AtomicBool::new(false),
            addr: local,
            cfg,
        });
        let sessions = Arc::new(Mutex::new(Vec::new()));

        let accept_shared = Arc::clone(&shared);
        let accept_sessions = Arc::clone(&sessions);
        let accept =
            std::thread::Builder::new().name("quarry-router-accept".into()).spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let shared = Arc::clone(&accept_shared);
                    let handle = std::thread::Builder::new()
                        .name("quarry-router-session".into())
                        .spawn(move || session(&shared, stream));
                    if let Ok(handle) = handle {
                        lock(&accept_sessions).push(handle);
                    }
                }
            })?;

        Ok(Router { shared, accept: Some(accept), sessions })
    }

    /// The router's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Redirect a shard's traffic to `addr` (a promoted replica). The
    /// stale connection is dropped so the next leg reconnects there.
    pub fn retarget(&self, shard: usize, addr: SocketAddr) {
        {
            let mut topology = lock(&self.shared.topology);
            if let Some(slot) = topology.get_mut(shard) {
                *slot = addr;
            }
        }
        if let Some(conn) = self.shared.conn.get(shard) {
            *lock(conn) = None;
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shared.conn.len()
    }

    /// Drain sessions and stop. Shards stay up.
    pub fn shutdown(&mut self) {
        if !self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.shared.addr);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles: Vec<_> = lock(&self.sessions).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One client session against the router: the same frame loop a shard
/// server runs, with routing instead of local execution.
fn session(shared: &RouterShared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    loop {
        match read_frame(&mut stream, shared.cfg.max_frame) {
            Ok((id, payload)) => {
                let resp = handle(shared, id, &payload);
                if write_response(&mut stream, &resp).is_err() {
                    return;
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.is_timeout() => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(FrameError::Closed) => return,
            Err(e) => {
                let resp = Response {
                    id: 0,
                    server_micros: 0,
                    lsn: 0,
                    payload: Payload::Error { kind: ErrorKind::Protocol, message: e.to_string() },
                };
                let _ = write_response(&mut stream, &resp);
                return;
            }
        }
    }
}

fn handle(shared: &RouterShared, id: u64, payload: &[u8]) -> Response {
    let req: Request = match serde_json::from_slice(payload) {
        Ok(r) => r,
        Err(e) => {
            return Response {
                id,
                server_micros: 0,
                lsn: 0,
                payload: Payload::Error {
                    kind: ErrorKind::Protocol,
                    message: format!("undecodable request: {e}"),
                },
            };
        }
    };
    if req == Request::Shutdown {
        // Shuts the *router* down; shards are independent processes with
        // their own lifecycles.
        shared.shutting_down.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(shared.addr);
        return Response { id, server_micros: 0, lsn: 0, payload: Payload::Done };
    }
    if shared.shutting_down.load(Ordering::SeqCst) {
        return Response { id, server_micros: 0, lsn: 0, payload: Payload::ShuttingDown };
    }
    let start = std::time::Instant::now();
    let (payload, lsn) = route(shared, &req);
    Response { id, server_micros: start.elapsed().as_micros() as u64, lsn, payload }
}

fn error(kind: ErrorKind, message: impl Into<String>) -> Payload {
    Payload::Error { kind, message: message.into() }
}

/// Map a shard-leg failure onto the client-visible payload.
fn leg_error(shard: usize, e: ClientError) -> Payload {
    match e {
        ClientError::Server { kind, message } => Payload::Error { kind, message },
        ClientError::Overloaded => Payload::Overloaded,
        ClientError::ShuttingDown => Payload::ShuttingDown,
        other => error(ErrorKind::Unavailable, format!("shard {shard}: {other}")),
    }
}

/// Run one request against one shard through its pooled connection,
/// reconnecting through the *current* topology entry on a dead leg (so
/// a retarget takes effect on the first retry).
fn with_shard(shared: &RouterShared, shard: usize, req: &Request) -> Result<Response, ClientError> {
    let addr_of = || -> SocketAddr { lock(&shared.topology)[shard] };
    let mut conn = lock(&shared.conn[shard]);
    for attempt in 0..2 {
        if conn.is_none() {
            *conn = Some(Client::connect_with_config(addr_of(), shared.cfg.shard_client)?);
        }
        let Some(client) = conn.as_mut() else { break };
        match client.request(req) {
            Ok(resp) => return Ok(resp),
            Err(e @ (ClientError::Io(_) | ClientError::Frame(_))) => {
                // Dead leg: drop the connection; the retry dials the
                // topology entry as it is *now*.
                *conn = None;
                if attempt == 1 {
                    return Err(e);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(ClientError::Io(io::Error::new(io::ErrorKind::NotConnected, "shard unreachable")))
}

/// Fan a request out to every shard sequentially in shard order.
fn fan_out(shared: &RouterShared, req: &Request) -> Result<Vec<Response>, (usize, ClientError)> {
    let mut legs = Vec::with_capacity(shared.conn.len());
    for shard in 0..shared.conn.len() {
        legs.push(with_shard(shared, shard, req).map_err(|e| (shard, e))?);
    }
    Ok(legs)
}

fn route(shared: &RouterShared, req: &Request) -> (Payload, u64) {
    match req {
        Request::Ping => (Payload::Pong, 0),
        Request::Qdl(_) => (
            error(
                ErrorKind::Query,
                "QDL pipelines are node-local; run them against a shard directly",
            ),
            0,
        ),
        Request::CreateTable(schema) => {
            let (payload, lsn) = broadcast_done(shared, req);
            if matches!(payload, Payload::Done) {
                lock(&shared.catalog).insert(schema.name.clone(), schema.clone());
            }
            (payload, lsn)
        }
        Request::CreateIndex { .. } | Request::Checkpoint => broadcast_done(shared, req),
        Request::InsertRows { table, rows } => route_write(shared, table, rows, |table, part| {
            Request::InsertRows { table, rows: part }
        }),
        Request::DeleteRows { table, keys } => {
            // Keys are already in key order; hash them directly.
            let parts = match partition_keys(shared, keys) {
                Ok(parts) => parts,
                Err(p) => return (p, 0),
            };
            send_partitions(shared, table, parts, |table, part| Request::DeleteRows {
                table,
                keys: part,
            })
        }
        Request::Query(q) => route_query(shared, q),
        Request::KeywordSearch { k, .. } => route_keyword(shared, req, *k),
        Request::Explain(_) => route_explain(shared, req),
        Request::Stats => route_stats(shared),
        Request::Shutdown => (Payload::Done, 0),
    }
}

/// Broadcast a DDL/Checkpoint request; every shard must answer `Done`.
fn broadcast_done(shared: &RouterShared, req: &Request) -> (Payload, u64) {
    match fan_out(shared, req) {
        Ok(legs) => {
            let lsn = legs.iter().map(|r| r.lsn).max().unwrap_or(0);
            for leg in legs {
                if !matches!(leg.payload, Payload::Done) {
                    return (leg.payload, lsn);
                }
            }
            (Payload::Done, lsn)
        }
        Err((shard, e)) => (leg_error(shard, e), 0),
    }
}

/// Partition full rows by the table's primary key via the catalog.
fn partition_rows(
    shared: &RouterShared,
    table: &str,
    rows: &[Vec<Value>],
) -> Result<Vec<Vec<Vec<Value>>>, Payload> {
    let key_cols = {
        let catalog = lock(&shared.catalog);
        let Some(schema) = catalog.get(table) else {
            return Err(error(
                ErrorKind::Query,
                format!("unknown table {table}: create it through the router first"),
            ));
        };
        schema.key.clone()
    };
    let mut parts: Vec<Vec<Vec<Value>>> = vec![Vec::new(); shared.conn.len()];
    for row in rows {
        let mut key = Vec::with_capacity(key_cols.len());
        for &i in &key_cols {
            let Some(v) = row.get(i) else {
                return Err(error(
                    ErrorKind::Query,
                    format!("row with {} values is short of key column {i}", row.len()),
                ));
            };
            key.push(v.clone());
        }
        parts[shared.ring.shard_for_key(&key)].push(row.clone());
    }
    Ok(parts)
}

fn partition_keys(
    shared: &RouterShared,
    keys: &[Vec<Value>],
) -> Result<Vec<Vec<Vec<Value>>>, Payload> {
    let mut parts: Vec<Vec<Vec<Value>>> = vec![Vec::new(); shared.conn.len()];
    for key in keys {
        parts[shared.ring.shard_for_key(key)].push(key.clone());
    }
    Ok(parts)
}

fn route_write(
    shared: &RouterShared,
    table: &str,
    rows: &[Vec<Value>],
    make: impl Fn(String, Vec<Vec<Value>>) -> Request,
) -> (Payload, u64) {
    let parts = match partition_rows(shared, table, rows) {
        Ok(parts) => parts,
        Err(p) => return (p, 0),
    };
    send_partitions(shared, table, parts, make)
}

/// Send each non-empty partition to its shard in shard order; the reply
/// carries the max LSN of the shards actually written.
fn send_partitions(
    shared: &RouterShared,
    table: &str,
    parts: Vec<Vec<Vec<Value>>>,
    make: impl Fn(String, Vec<Vec<Value>>) -> Request,
) -> (Payload, u64) {
    let mut lsn = 0;
    for (shard, part) in parts.into_iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        match with_shard(shared, shard, &make(table.to_string(), part)) {
            Ok(resp) => {
                lsn = lsn.max(resp.lsn);
                if !matches!(resp.payload, Payload::Done) {
                    return (resp.payload, lsn);
                }
            }
            Err(e) => return (leg_error(shard, e), lsn),
        }
    }
    (Payload::Done, lsn)
}

/// Reject query shapes whose per-shard partials cannot merge into the
/// single-node answer.
fn check_distributable(q: &Query) -> Result<(), String> {
    fn walk(q: &Query, top: bool) -> Result<(), String> {
        match q {
            Query::Scan { .. } => Ok(()),
            Query::Filter { input, .. } | Query::Project { input, .. } => walk(input, false),
            Query::Join { .. } => {
                Err("cross-shard joins are not supported through the router".into())
            }
            Query::Aggregate { input, agg, .. } => {
                if !top {
                    return Err("aggregates below the top of a query are not distributable".into());
                }
                if *agg == AggFn::Avg {
                    return Err("AVG is not distributable across shards; use SUM and COUNT".into());
                }
                walk(input, false)
            }
            Query::Sort { input, limit, .. } => {
                if !top && limit.is_some() {
                    return Err("an inner LIMIT is not distributable across shards".into());
                }
                walk(input, false)
            }
        }
    }
    walk(q, true)
}

/// Point-query detection: a filter over one table's scan whose
/// predicates pin every primary-key column with `=` lives entirely on
/// the key's owning shard — no fan-out needed, and a dead shard
/// elsewhere in the ring cannot fail it.
fn point_shard(shared: &RouterShared, q: &Query) -> Option<usize> {
    let Query::Filter { input, predicates } = q else { return None };
    let Query::Scan { table } = input.as_ref() else { return None };
    let catalog = lock(&shared.catalog);
    let schema = catalog.get(table)?;
    let mut key = Vec::with_capacity(schema.key.len());
    for &i in &schema.key {
        let col = &schema.columns.get(i)?.name;
        let v = predicates.iter().find_map(|p| match p {
            Predicate::Eq(c, v) if c == col => Some(v.clone()),
            _ => None,
        })?;
        key.push(v);
    }
    Some(shared.ring.shard_for_key(&key))
}

fn route_query(shared: &RouterShared, q: &Query) -> (Payload, u64) {
    if let Err(why) = check_distributable(q) {
        return (error(ErrorKind::Query, why), 0);
    }
    if let Some(shard) = point_shard(shared, q) {
        return match with_shard(shared, shard, &Request::Query(q.clone())) {
            Ok(resp) => (resp.payload, resp.lsn),
            Err(e) => (leg_error(shard, e), 0),
        };
    }
    let legs = match fan_out(shared, &Request::Query(q.clone())) {
        Ok(legs) => legs,
        Err((shard, e)) => return (leg_error(shard, e), 0),
    };
    let lsn = legs.iter().map(|r| r.lsn).max().unwrap_or(0);
    let mut results = Vec::with_capacity(legs.len());
    for leg in legs {
        match leg.payload {
            Payload::Rows { columns, rows } => results.push((columns, rows)),
            other => return (other, lsn), // first non-row leg wins (shard order)
        }
    }
    match merge_results(q, results) {
        Ok((columns, rows)) => (Payload::Rows { columns, rows }, lsn),
        Err(why) => (error(ErrorKind::Query, why), lsn),
    }
}

type Cols = Vec<String>;
type Rows = Vec<Vec<Value>>;

fn merge_results(q: &Query, mut legs: Vec<(Cols, Rows)>) -> Result<(Cols, Rows), String> {
    let columns = legs.first().map(|(c, _)| c.clone()).unwrap_or_default();
    if legs.iter().any(|(c, _)| *c != columns) {
        return Err("shards disagree on result columns".into());
    }
    match q {
        Query::Aggregate { group_by, agg, .. } => {
            merge_aggregate(*agg, group_by.is_some(), columns, legs)
        }
        Query::Sort { by, desc, limit, .. } => {
            let rows = merge_sorted(&columns, legs, by, *desc, *limit)?;
            Ok((columns, rows))
        }
        _ => {
            // Plain row sets concatenate in shard order: deterministic
            // for a fixed topology (documented in docs/serving.md).
            let mut rows = Vec::new();
            for (_, mut leg) in legs.drain(..) {
                rows.append(&mut leg);
            }
            Ok((columns, rows))
        }
    }
}

/// Combine per-shard partial aggregates. `COUNT` and `SUM` add,
/// `MIN`/`MAX` compare; `NULL` partials (empty shard groups) are the
/// identity. Group keys merge through a `BTreeMap`, reproducing the
/// planner's deterministic group order.
fn merge_aggregate(
    agg: AggFn,
    grouped: bool,
    columns: Cols,
    legs: Vec<(Cols, Rows)>,
) -> Result<(Cols, Rows), String> {
    let combine = |acc: Value, next: &Value| -> Result<Value, String> {
        if next.is_null() {
            return Ok(acc);
        }
        if acc.is_null() {
            return Ok(next.clone());
        }
        match agg {
            AggFn::Count | AggFn::Sum => match (&acc, next) {
                (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a + b)),
                (a, b) => match (a.as_f64(), b.as_f64()) {
                    (Some(a), Some(b)) => Ok(Value::Float(a + b)),
                    _ => Err(format!("non-numeric partial aggregate: {a} + {b}")),
                },
            },
            AggFn::Min => Ok(if *next < acc { next.clone() } else { acc }),
            AggFn::Max => Ok(if *next > acc { next.clone() } else { acc }),
            AggFn::Avg => Err("AVG is not distributable across shards".into()),
        }
    };

    if grouped {
        let mut groups: BTreeMap<Value, Value> = BTreeMap::new();
        for (_, rows) in &legs {
            for row in rows {
                let [key, val] = row.as_slice() else {
                    return Err("grouped aggregate row is not [key, value]".into());
                };
                match groups.remove(key) {
                    Some(acc) => {
                        groups.insert(key.clone(), combine(acc, val)?);
                    }
                    None => {
                        groups.insert(key.clone(), val.clone());
                    }
                }
            }
        }
        let rows = groups.into_iter().map(|(k, v)| vec![k, v]).collect();
        Ok((columns, rows))
    } else {
        // One row per shard; COUNT of an empty shard is Int(0), other
        // empty partials are NULL — both fold away as identities.
        let mut acc = if agg == AggFn::Count { Value::Int(0) } else { Value::Null };
        for (_, rows) in &legs {
            for row in rows {
                let [val] = row.as_slice() else {
                    return Err("global aggregate row is not a single value".into());
                };
                acc = combine(acc, val)?;
            }
        }
        Ok((columns, vec![vec![acc]]))
    }
}

/// Stable k-way merge of per-shard sorted runs; ties keep shard order,
/// mirroring the planner's stable sort over a shard-ordered concat.
fn merge_sorted(
    columns: &[String],
    legs: Vec<(Cols, Rows)>,
    by: &str,
    desc: bool,
    limit: Option<usize>,
) -> Result<Rows, String> {
    let col = columns
        .iter()
        .position(|c| c == by)
        .ok_or_else(|| format!("sort column {by} missing from result"))?;
    let mut runs: Vec<std::vec::IntoIter<Vec<Value>>> =
        legs.into_iter().map(|(_, rows)| rows.into_iter()).collect();
    let mut heads: Vec<Option<Vec<Value>>> = runs.iter_mut().map(Iterator::next).collect();
    let mut out = Vec::new();
    loop {
        let mut best: Option<usize> = None;
        for (i, head) in heads.iter().enumerate() {
            let Some(row) = head else { continue };
            let better = match best {
                None => true,
                Some(b) => {
                    let ord = row[col]
                        .cmp(&heads[b].as_ref().map(|r| r[col].clone()).unwrap_or(Value::Null));
                    if desc {
                        ord == std::cmp::Ordering::Greater
                    } else {
                        ord == std::cmp::Ordering::Less
                    }
                }
            };
            if better {
                best = Some(i);
            }
        }
        let Some(i) = best else { break };
        if let Some(row) = heads[i].take() {
            out.push(row);
        }
        heads[i] = runs[i].next();
        if let Some(l) = limit {
            if out.len() >= l {
                break;
            }
        }
    }
    Ok(out)
}

fn route_keyword(shared: &RouterShared, req: &Request, k: usize) -> (Payload, u64) {
    let legs = match fan_out(shared, req) {
        Ok(legs) => legs,
        Err((shard, e)) => return (leg_error(shard, e), 0),
    };
    let lsn = legs.iter().map(|r| r.lsn).max().unwrap_or(0);
    let mut hits: Vec<WireHit> = Vec::new();
    let mut candidates: Vec<WireCandidate> = Vec::new();
    for leg in legs {
        match leg.payload {
            Payload::Hits { hits: h, candidates: c } => {
                hits.extend(h);
                candidates.extend(c);
            }
            other => return (other, lsn),
        }
    }
    // Global top-k by (score desc, doc asc). Scores are shard-local
    // BM25 (per-shard idf) — deterministic, but not single-node-equal.
    hits.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.doc.cmp(&b.doc))
    });
    hits.truncate(k);
    // Dedup candidates by fingerprint, keeping the best score.
    let mut best: BTreeMap<String, WireCandidate> = BTreeMap::new();
    for c in candidates {
        let key = c.query.fingerprint();
        match best.get(&key) {
            Some(prev) if prev.score >= c.score => {}
            _ => {
                best.insert(key, c);
            }
        }
    }
    let mut candidates: Vec<WireCandidate> = best.into_values().collect();
    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.query.fingerprint().cmp(&b.query.fingerprint()))
    });
    candidates.truncate(k);
    (Payload::Hits { hits, candidates }, lsn)
}

fn route_explain(shared: &RouterShared, req: &Request) -> (Payload, u64) {
    let legs = match fan_out(shared, req) {
        Ok(legs) => legs,
        Err((shard, e)) => return (leg_error(shard, e), 0),
    };
    let lsn = legs.iter().map(|r| r.lsn).max().unwrap_or(0);
    let mut out = String::new();
    for (shard, leg) in legs.into_iter().enumerate() {
        match leg.payload {
            Payload::Plan(plan) => {
                out.push_str(&format!("=== shard {shard} ===\n{plan}\n"));
            }
            other => return (other, lsn),
        }
    }
    (Payload::Plan(out), lsn)
}

fn route_stats(shared: &RouterShared) -> (Payload, u64) {
    let legs = match fan_out(shared, &Request::Stats) {
        Ok(legs) => legs,
        Err((shard, e)) => return (leg_error(shard, e), 0),
    };
    let lsn = legs.iter().map(|r| r.lsn).max().unwrap_or(0);
    let mut merged = MetricsSnapshot::default();
    for (shard, leg) in legs.into_iter().enumerate() {
        match leg.payload {
            Payload::Metrics(snap) => {
                merged.counters.insert(format!("shard{shard}.lsn"), leg.lsn);
                for (name, v) in snap.counters {
                    merged.counters.insert(format!("shard{shard}.{name}"), v);
                }
                for (name, h) in snap.histograms {
                    merged.histograms.insert(format!("shard{shard}.{name}"), h);
                }
            }
            other => return (other, lsn),
        }
    }
    (Payload::Metrics(merged), lsn)
}
