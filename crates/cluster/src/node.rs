//! Process supervision for a serving cluster on one machine.
//!
//! A [`Cluster`] is N shards behind one [`Router`]. Each shard is a
//! primary `quarry-serve` [`Server`] with a replication listener
//! streaming its WAL to R read-only [`Replica`]s. Everything runs on
//! loopback TCP with OS threads — the same laptop-scale simulation
//! discipline as the MapReduce engine, but exercising the real wire
//! protocol, the real WAL-shipping transport, and the real promotion
//! path.
//!
//! Failover choreography (see `docs/replication.md`):
//!
//! 1. [`Cluster::kill_primary`] drops the primary's server and
//!    replication listener (replicas see the transport die and retry
//!    with bounded backoff);
//! 2. [`Cluster::promote`] promotes one replica's applier (discarding
//!    transactions whose commits never arrived), flips its server
//!    writable, and retargets the router at it;
//! 3. traffic to that shard resumes on the next request — the router
//!    reconnects through the updated topology entry.
//!
//! Promotion is operator-driven (here: test- or bench-driven). There is
//! no automatic failover or failback; a single writer per shard is the
//! split-brain stance.

use crate::router::{Router, RouterConfig};
use quarry_core::{Quarry, QuarryConfig};
use quarry_serve::replication::{ReplicationClient, ReplicationClientConfig, ReplicationListener};
use quarry_serve::{Client, ServeConfig, Server};
use quarry_storage::Database;
use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cluster shape.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of shards (each its own primary database).
    pub shards: usize,
    /// Read-only replicas tailing each primary.
    pub replicas_per_shard: usize,
    /// Serving config for every node (read-only is forced on replicas).
    pub serve: ServeConfig,
    /// Replication retry policy for replicas.
    pub replication: ReplicationClientConfig,
    /// Router tuning.
    pub router: RouterConfig,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            shards: 3,
            replicas_per_shard: 1,
            serve: ServeConfig::default(),
            replication: ReplicationClientConfig::default(),
            router: RouterConfig::default(),
        }
    }
}

/// A shard primary: writable server plus the WAL-shipping listener.
pub struct Primary {
    server: Server,
    listener: ReplicationListener,
    db: Arc<Database>,
}

impl Primary {
    /// The primary's serving address.
    pub fn serve_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Where replicas connect for the WAL stream.
    pub fn replication_addr(&self) -> SocketAddr {
        self.listener.local_addr()
    }

    /// The primary's database handle.
    pub fn database(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    /// Underlying server handle.
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// The replication listener (progress inspection).
    pub fn listener(&self) -> &ReplicationListener {
        &self.listener
    }
}

/// A read-only replica: serving reads while tailing the primary's WAL.
pub struct Replica {
    server: Server,
    client: ReplicationClient,
    db: Arc<Database>,
}

impl Replica {
    /// The replica's (read-only) serving address.
    pub fn serve_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The replica's database handle.
    pub fn database(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    /// The shipping client (position/status inspection).
    pub fn replication(&self) -> &ReplicationClient {
        &self.client
    }
}

/// One shard: a primary (until killed) and its replicas.
pub struct Shard {
    /// The writable node; `None` after [`Cluster::kill_primary`].
    pub primary: Option<Primary>,
    /// Replicas still tailing (or promoted away and removed).
    pub replicas: Vec<Replica>,
}

/// A full sharded cluster: N shards, R replicas each, one router.
pub struct Cluster {
    router: Router,
    shards: Vec<Shard>,
}

fn spawn_primary(dir: &Path, shard: usize, serve: &ServeConfig) -> io::Result<Primary> {
    let quarry = make_quarry(&dir.join(format!("shard{shard}-primary.wal")))?;
    let db = Arc::clone(&quarry.db);
    let server = Server::start(quarry, "127.0.0.1:0", serve.clone())?;
    let listener = ReplicationListener::start(Arc::clone(&db), "127.0.0.1:0")?;
    Ok(Primary { server, listener, db })
}

fn spawn_replica(
    dir: &Path,
    shard: usize,
    idx: usize,
    primary_repl: SocketAddr,
    serve: &ServeConfig,
    replication: ReplicationClientConfig,
) -> io::Result<Replica> {
    let quarry = make_quarry(&dir.join(format!("shard{shard}-replica{idx}.wal")))?;
    let db = Arc::clone(&quarry.db);
    let cfg = ServeConfig { read_only: true, ..serve.clone() };
    let server = Server::start(quarry, "127.0.0.1:0", cfg)?;
    let client = ReplicationClient::start(Arc::clone(&db), primary_repl, replication);
    Ok(Replica { server, client, db })
}

fn make_quarry(wal: &PathBuf) -> io::Result<Quarry> {
    Quarry::new(QuarryConfig::builder().wal_path(wal).build())
        .map_err(|e| io::Error::other(format!("quarry open: {e}")))
}

impl Cluster {
    /// Bring up a whole cluster under `dir` (one WAL file per node).
    pub fn start(dir: &Path, cfg: ClusterConfig) -> io::Result<Cluster> {
        if cfg.shards == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "cluster needs >= 1 shard"));
        }
        let mut shards = Vec::with_capacity(cfg.shards);
        for s in 0..cfg.shards {
            let primary = spawn_primary(dir, s, &cfg.serve)?;
            let repl_addr = primary.replication_addr();
            let mut replicas = Vec::with_capacity(cfg.replicas_per_shard);
            for r in 0..cfg.replicas_per_shard {
                replicas.push(spawn_replica(dir, s, r, repl_addr, &cfg.serve, cfg.replication)?);
            }
            shards.push(Shard { primary: Some(primary), replicas });
        }
        let addrs: Vec<SocketAddr> =
            shards.iter().filter_map(|s| s.primary.as_ref().map(Primary::serve_addr)).collect();
        let router = Router::start(addrs, "127.0.0.1:0", cfg.router)?;
        Ok(Cluster { router, shards })
    }

    /// The router's address — what clients dial.
    pub fn router_addr(&self) -> SocketAddr {
        self.router.local_addr()
    }

    /// A connected client against the router.
    pub fn client(&self) -> io::Result<Client> {
        Client::connect(self.router_addr())
    }

    /// The router handle (retargeting, shard count).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Shard state, for inspection.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Drop shard `s`'s primary: the server drains, the replication
    /// listener closes, replicas start retrying. Requests routed to the
    /// shard fail `Unavailable` until a replica is promoted.
    pub fn kill_primary(&mut self, s: usize) {
        if let Some(shard) = self.shards.get_mut(s) {
            shard.primary = None;
        }
    }

    /// Promote shard `s`'s replica `r`: stop shipping, discard
    /// uncommitted tail state, flip its server writable, retarget the
    /// router. The promoted node is removed from the replica list (it is
    /// no longer one).
    pub fn promote(&mut self, s: usize, r: usize) -> io::Result<()> {
        let shard = self
            .shards
            .get_mut(s)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no such shard"))?;
        if r >= shard.replicas.len() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no such replica"));
        }
        let mut replica = shard.replicas.remove(r);
        replica.client.promote().map_err(|e| io::Error::other(format!("promote: {e}")))?;
        replica.server.set_read_only(false);
        self.router.retarget(s, replica.serve_addr());
        // The promoted node becomes the shard's primary. It has no
        // replication listener yet — chaining new replicas off a
        // promoted primary is future work (docs/replication.md).
        let listener = ReplicationListener::start(Arc::clone(&replica.db), "127.0.0.1:0")?;
        shard.primary = Some(Primary { server: replica.server, listener, db: replica.db });
        Ok(())
    }

    /// Wait until every replica of shard `s` has applied and acked the
    /// primary's full WAL (same checkpoint epoch, offset caught up).
    /// Returns `false` on timeout or if the shard has no primary.
    pub fn await_replicas_caught_up(&self, s: usize, timeout: Duration) -> bool {
        let Some(shard) = self.shards.get(s) else { return false };
        let Some(primary) = shard.primary.as_ref() else { return false };
        let deadline = Instant::now() + timeout;
        loop {
            let epoch = primary.db.checkpoint_epoch();
            let len = primary.db.wal_len();
            let caught = shard.replicas.iter().all(|r| {
                let pos = r.client.position();
                pos.epoch == epoch && pos.offset >= len
            });
            let acked = primary
                .listener
                .progress()
                .iter()
                .filter(|p| p.epoch == epoch)
                .filter(|p| p.acked >= len)
                .count()
                >= shard.replicas.len();
            if caught && (shard.replicas.is_empty() || acked) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Shut the router down, then every node. Replicas first so their
    /// transports see live primaries for as long as possible.
    pub fn shutdown(&mut self) {
        self.router.shutdown();
        for shard in &mut self.shards {
            for replica in &mut shard.replicas {
                replica.client.stop();
            }
            shard.replicas.clear();
            shard.primary = None;
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}
