//! The MapReduce job runner.
//!
//! Execution model: inputs are map *tasks*; a fixed worker pool pulls tasks
//! from a shared queue; each task's key-value output lands in a hash
//! partition; after the map barrier, reduce partitions run on the same
//! pool; output is sorted by key, so results are deterministic regardless
//! of worker count or scheduling. A map attempt killed by the fault plan is
//! simply re-queued — the re-execution strategy of the original MapReduce.

use super::fault::FaultPlan;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Job configuration.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Worker threads (map and reduce phases both use this pool size).
    pub workers: usize,
    /// Reduce partitions (defaults to `workers` when 0).
    pub partitions: usize,
    /// Failure injection plan for map tasks.
    pub faults: FaultPlan,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig { workers: 4, partitions: 0, faults: FaultPlan::none() }
    }
}

/// Execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobStats {
    /// Map attempts executed (> tasks when failures were injected).
    pub map_attempts: usize,
    /// Map attempts that failed and were re-queued.
    pub map_failures: usize,
    /// Reduce partitions executed.
    pub reduce_tasks: usize,
}

fn partition_of<K: Hash>(key: &K, n: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % n as u64) as usize
}

/// Run a MapReduce job.
///
/// `map` turns one input into key-value pairs; `reduce` folds all values of
/// one key into outputs. Both must be thread-safe (`Sync`); inputs and
/// intermediates move between threads (`Send`). Output is ordered by key.
pub fn run<I, K, V, O, M, R>(
    inputs: &[I],
    map: M,
    reduce: R,
    config: &JobConfig,
) -> (Vec<O>, JobStats)
where
    I: Sync,
    K: Ord + Hash + Send + Clone,
    V: Send,
    O: Send,
    M: Fn(&I) -> Vec<(K, V)> + Sync,
    R: Fn(&K, Vec<V>) -> Vec<O> + Sync,
{
    let workers = config.workers.max(1);
    let partitions = if config.partitions == 0 { workers } else { config.partitions };

    /// Pending (task, attempt) pairs.
    type TaskQueue = Vec<(usize, u32)>;

    // ------------------------------------------------------------------
    // Map phase: shared queue of task ids; failed attempts re-queue.
    // ------------------------------------------------------------------
    let queue: Mutex<TaskQueue> = Mutex::new((0..inputs.len()).map(|t| (t, 0u32)).rev().collect());
    let buckets: Vec<Mutex<Vec<(K, V)>>> =
        (0..partitions).map(|_| Mutex::new(Vec::new())).collect();
    let attempts = AtomicUsize::new(0);
    let failures = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some((task, attempt)) = queue.lock().pop() else { break };
                attempts.fetch_add(1, Ordering::Relaxed);
                if config.faults.should_fail(task, attempt) {
                    // The worker running this attempt "dies": its partial
                    // output is discarded and the task is re-queued.
                    failures.fetch_add(1, Ordering::Relaxed);
                    queue.lock().push((task, attempt + 1));
                    continue;
                }
                let pairs = map(&inputs[task]);
                // Group locally per partition to take each lock once.
                let mut local: Vec<Vec<(K, V)>> = (0..partitions).map(|_| Vec::new()).collect();
                for (k, v) in pairs {
                    let p = partition_of(&k, partitions);
                    local[p].push((k, v));
                }
                for (p, batch) in local.into_iter().enumerate() {
                    if !batch.is_empty() {
                        buckets[p].lock().extend(batch);
                    }
                }
            });
        }
    });

    // ------------------------------------------------------------------
    // Reduce phase: one task per partition, same pool size.
    // ------------------------------------------------------------------
    let reduce_inputs: Vec<BTreeMap<K, Vec<V>>> = buckets
        .into_iter()
        .map(|b| {
            let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
            for (k, v) in b.into_inner() {
                groups.entry(k).or_default().push(v);
            }
            groups
        })
        .collect();

    // Each partition is owned by exactly one reduce task: workers take the
    // partition out of its slot, so values move into the reducer by value.
    // (Generic local type aliases are not expressible; the annotations stay
    // inline.)
    #[allow(clippy::type_complexity)]
    let reduce_slots: Vec<Mutex<Option<BTreeMap<K, Vec<V>>>>> =
        reduce_inputs.into_iter().map(|g| Mutex::new(Some(g))).collect();
    #[allow(clippy::type_complexity)]
    let outputs: Mutex<BTreeMap<usize, Vec<(K, Vec<O>)>>> = Mutex::new(BTreeMap::new());
    let next_partition = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let p = next_partition.fetch_add(1, Ordering::Relaxed);
                if p >= reduce_slots.len() {
                    break;
                }
                let Some(groups) = reduce_slots[p].lock().take() else { continue };
                let mut part_out = Vec::new();
                for (k, vs) in groups {
                    let os = reduce(&k, vs);
                    part_out.push((k, os));
                }
                outputs.lock().insert(p, part_out);
            });
        }
    });

    // Merge partitions in key order.
    let mut merged: Vec<(K, Vec<O>)> = outputs.into_inner().into_values().flatten().collect();
    merged.sort_by(|a, b| a.0.cmp(&b.0));
    let out: Vec<O> = merged.into_iter().flat_map(|(_, os)| os).collect();

    (
        out,
        JobStats {
            map_attempts: attempts.into_inner(),
            map_failures: failures.into_inner(),
            reduce_tasks: partitions,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_count(texts: &[&str], config: &JobConfig) -> (Vec<(String, usize)>, JobStats) {
        run(
            texts,
            |t: &&str| t.split_whitespace().map(|w| (w.to_string(), 1usize)).collect(),
            |k: &String, vs: Vec<usize>| vec![(k.clone(), vs.into_iter().sum::<usize>())],
            config,
        )
    }

    const TEXTS: [&str; 4] =
        ["the quick brown fox", "the lazy dog", "the quick dog", "brown dog brown dog"];

    fn expected() -> Vec<(String, usize)> {
        vec![
            ("brown".into(), 3),
            ("dog".into(), 4),
            ("fox".into(), 1),
            ("lazy".into(), 1),
            ("quick".into(), 2),
            ("the".into(), 3),
        ]
    }

    #[test]
    fn word_count_is_correct_and_ordered() {
        let (out, stats) = word_count(&TEXTS, &JobConfig::default());
        assert_eq!(out, expected());
        assert_eq!(stats.map_attempts, 4);
        assert_eq!(stats.map_failures, 0);
    }

    #[test]
    fn output_is_identical_across_worker_counts() {
        let base = word_count(&TEXTS, &JobConfig { workers: 1, ..Default::default() }).0;
        for workers in [2, 4, 8] {
            let (out, _) = word_count(&TEXTS, &JobConfig { workers, ..Default::default() });
            assert_eq!(out, base, "workers = {workers}");
        }
    }

    #[test]
    fn injected_failures_are_retried_and_result_exact() {
        let cfg = JobConfig {
            workers: 4,
            partitions: 0,
            faults: FaultPlan::explicit([(0, 0), (2, 0), (2, 1)]),
        };
        let (out, stats) = word_count(&TEXTS, &cfg);
        assert_eq!(out, expected(), "failures must not change the answer");
        assert_eq!(stats.map_failures, 3);
        assert_eq!(stats.map_attempts, 4 + 3);
    }

    #[test]
    fn rate_based_failures_also_exact() {
        let cfg = JobConfig { workers: 8, partitions: 4, faults: FaultPlan::rate(0.5, 7) };
        let inputs: Vec<String> = (0..200).map(|i| format!("w{} w{} shared", i, i % 10)).collect();
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        let (out, stats) = word_count(&refs, &cfg);
        let (base, _) = word_count(&refs, &JobConfig::default());
        assert_eq!(out, base);
        assert!(stats.map_failures > 50, "{stats:?}");
    }

    #[test]
    fn empty_inputs() {
        let (out, stats) = word_count(&[], &JobConfig::default());
        assert!(out.is_empty());
        assert_eq!(stats.map_attempts, 0);
    }

    #[test]
    fn single_worker_single_partition() {
        let cfg = JobConfig { workers: 1, partitions: 1, faults: FaultPlan::none() };
        let (out, stats) = word_count(&TEXTS, &cfg);
        assert_eq!(out, expected());
        assert_eq!(stats.reduce_tasks, 1);
    }

    #[test]
    fn parallel_speedup_on_cpu_bound_maps() {
        // A deliberately heavy mapper; 4 workers should beat 1 comfortably.
        let inputs: Vec<u64> = (0..64).collect();
        let heavy = |x: &u64| {
            let mut acc = *x;
            for i in 0..400_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            vec![(*x % 4, acc)]
        };
        let reduce = |k: &u64, vs: Vec<u64>| vec![(*k, vs.len())];

        let t1 = std::time::Instant::now();
        let (o1, _) = run(&inputs, heavy, reduce, &JobConfig { workers: 1, ..Default::default() });
        let d1 = t1.elapsed();
        let t4 = std::time::Instant::now();
        let (o4, _) = run(&inputs, heavy, reduce, &JobConfig { workers: 4, ..Default::default() });
        let d4 = t4.elapsed();
        assert_eq!(o1, o4);
        // Wall-clock speedup needs real cores; on a single-CPU machine only
        // correctness (above) is checkable.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 4 {
            assert!(d4 < d1, "4 workers ({d4:?}) should beat 1 worker ({d1:?}) on {cores} cores");
        }
    }
}
