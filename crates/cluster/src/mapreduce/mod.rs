//! The original in-process MapReduce engine, kept as a submodule.
//!
//! "Given that IE and II are often very computation intensive ... we need
//! parallel processing in the physical layer. A popular way to achieve
//! this is to use a computer cluster running Map-Reduce-like processes."
//! This engine simulates that cluster with OS threads on one machine
//! (DESIGN.md §2): the same scheduling, shuffle, and fault-recovery code
//! paths at laptop scale. The E6 bench and its differential tests drive
//! it; the *serving* side of the cluster story lives in the crate root
//! (shard router + WAL-shipping replication).
//!
//! - [`engine`] — the job runner: map tasks over a worker pool, hash
//!   shuffle, parallel reduce, deterministic output;
//! - [`fault`] — failure injection: tasks that die on scheduled attempts,
//!   re-executed by the engine until they succeed.

pub mod engine;
pub mod fault;

pub use engine::{run, JobConfig, JobStats};
pub use fault::FaultPlan;
