//! Failure injection for map tasks.
//!
//! A [`FaultPlan`] decides, per (task, attempt), whether the worker running
//! it "dies". Plans are deterministic — either an explicit set of doomed
//! attempts or a rate-based rule seeded by task id — so experiments and
//! tests reproduce exactly.

use std::collections::HashSet;

/// When should tasks fail?
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Explicit (task, attempt) pairs that fail. Attempts count from 0.
    doomed: HashSet<(usize, u32)>,
    /// Rate-based failures: fail attempt 0 of tasks whose mixed id falls
    /// below `rate` (never later attempts, so jobs always finish).
    first_attempt_rate: f64,
    rate_seed: u64,
}

impl FaultPlan {
    /// No failures.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Fail specific (task, attempt) pairs.
    pub fn explicit(pairs: impl IntoIterator<Item = (usize, u32)>) -> FaultPlan {
        FaultPlan { doomed: pairs.into_iter().collect(), ..Default::default() }
    }

    /// Fail roughly `rate` of all tasks on their first attempt.
    pub fn rate(rate: f64, seed: u64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "rate out of range");
        FaultPlan { first_attempt_rate: rate, rate_seed: seed, ..Default::default() }
    }

    /// Should this (task, attempt) fail?
    pub fn should_fail(&self, task: usize, attempt: u32) -> bool {
        if self.doomed.contains(&(task, attempt)) {
            return true;
        }
        if attempt == 0 && self.first_attempt_rate > 0.0 {
            let h = mix(task as u64 ^ self.rate_seed);
            return (h as f64 / u64::MAX as f64) < self.first_attempt_rate;
        }
        false
    }
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let p = FaultPlan::none();
        assert!(!(0..100).any(|t| p.should_fail(t, 0)));
    }

    #[test]
    fn explicit_pairs_fail_exactly() {
        let p = FaultPlan::explicit([(3, 0), (3, 1), (7, 0)]);
        assert!(p.should_fail(3, 0));
        assert!(p.should_fail(3, 1));
        assert!(!p.should_fail(3, 2));
        assert!(p.should_fail(7, 0));
        assert!(!p.should_fail(8, 0));
    }

    #[test]
    fn rate_hits_roughly_the_fraction_and_only_attempt_zero() {
        let p = FaultPlan::rate(0.3, 42);
        let n = 1000;
        let failures = (0..n).filter(|&t| p.should_fail(t, 0)).count();
        assert!((250..350).contains(&failures), "{failures}");
        assert!(!(0..n).any(|t| p.should_fail(t, 1)), "retries always succeed");
    }

    #[test]
    fn rate_is_deterministic_per_seed() {
        let a = FaultPlan::rate(0.5, 1);
        let b = FaultPlan::rate(0.5, 1);
        let c = FaultPlan::rate(0.5, 2);
        let fa: Vec<bool> = (0..100).map(|t| a.should_fail(t, 0)).collect();
        let fb: Vec<bool> = (0..100).map(|t| b.should_fail(t, 0)).collect();
        let fc: Vec<bool> = (0..100).map(|t| c.should_fail(t, 0)).collect();
        assert_eq!(fa, fb);
        assert_ne!(fa, fc);
    }

    #[test]
    #[should_panic(expected = "rate out of range")]
    fn invalid_rate_rejected() {
        FaultPlan::rate(1.5, 0);
    }
}
