//! One roof over Quarry's static analyzers.
//!
//! The diagnostics *framework* lives in [`quarry_exec::diag`] (spans,
//! severities, source-mapped rendering); the QDL semantic analyzer
//! (QL001–QL008) lives in [`quarry_lang::lint`]; the structured-query
//! validator (QQ001–QQ003) lives in [`quarry_query::lint`]. This crate
//! re-exports all three behind one import path and ships the
//! `quarry-check` binary that lints `.qdl` files from the command line
//! (see `examples/qdl/` and the CI step that keeps them honest).
//!
//! The convenience entry point is [`check_file_source`], which the binary
//! and the golden tests share: lint one QDL source against the standard
//! operator library.

#![forbid(unsafe_code)]

pub use quarry_exec::diag::{
    closest, line_col_of, Diagnostic, LintReport, Severity, SourceMap, Span,
};
pub use quarry_lang::lint::{analyze, analyze_plan, codes as qdl_codes, lint_source};
pub use quarry_query::lint::{check_query, codes as query_codes};

use quarry_lang::ExtractorRegistry;
use quarry_schema::SchemaRegistry;

/// Lint one QDL source file against the standard extractor registry (and
/// optionally a schema registry), under the file's own name.
pub fn check_file_source(origin: &str, src: &str, schemas: Option<&SchemaRegistry>) -> LintReport {
    lint_source(origin, src, &ExtractorRegistry::standard(), schemas)
}

/// The `-- expect: QL001, QL005` annotations of a `.bad.qdl` example:
/// every listed code must appear in the report for the file to "pass" as
/// a negative test.
pub fn expected_codes(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in src.lines() {
        let Some(rest) = line.trim_start().strip_prefix("--") else { continue };
        let Some(codes) = rest.trim_start().strip_prefix("expect:") else { continue };
        for code in codes.split(',') {
            let code = code.trim();
            if !code.is_empty() {
                out.push(code.to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_file_source_runs_the_qdl_analyzer() {
        let report = check_file_source(
            "t.qdl",
            "PIPELINE p FROM corpus\nEXTRACT infobx\nRESOLVE BY name",
            None,
        );
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.diagnostics[0].code, qdl_codes::UNKNOWN_EXTRACTOR);
        assert_eq!(report.origin, "t.qdl");
    }

    #[test]
    fn expect_annotations_parse() {
        let src =
            "-- a comment\n--expect: QL001\n-- expect: QL004, QL005\nPIPELINE p FROM corpus\n";
        assert_eq!(expected_codes(src), vec!["QL001", "QL004", "QL005"]);
        assert!(expected_codes("PIPELINE p FROM corpus\n").is_empty());
    }
}
