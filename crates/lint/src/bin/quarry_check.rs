//! `quarry-check` — lint QDL files from the command line.
//!
//! ```text
//! quarry-check [PATH ...]
//! ```
//!
//! Each PATH is a `.qdl` file or a directory searched recursively for
//! them. Ordinary files must lint clean of errors (warnings are printed
//! but tolerated). Files named `*.bad.qdl` are negative examples: they
//! must produce at least one error, and when they carry `-- expect: QLnnn`
//! annotations, every listed code must appear. Exits non-zero on any
//! violation, so CI can keep `examples/qdl/` honest.

use quarry_lint::{check_file_source, expected_codes, Severity};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn collect(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if path.is_dir() {
        let entries = std::fs::read_dir(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut children: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        children.sort();
        for child in children {
            collect(&child, out)?;
        }
    } else if path.extension().is_some_and(|e| e == "qdl") {
        out.push(path.to_path_buf());
    }
    Ok(())
}

fn run() -> Result<usize, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: quarry-check [PATH ...]\nLints .qdl files; *.bad.qdl must fail.");
        return Ok(0);
    }
    let roots: Vec<PathBuf> = if args.is_empty() {
        vec![PathBuf::from(".")]
    } else {
        args.iter().map(PathBuf::from).collect()
    };
    let mut files = Vec::new();
    for root in &roots {
        if !root.exists() {
            return Err(format!("{}: no such file or directory", root.display()));
        }
        collect(root, &mut files)?;
    }
    if files.is_empty() {
        return Err("no .qdl files found".to_string());
    }

    let mut violations = 0usize;
    for file in &files {
        let src = std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let origin = file.display().to_string();
        let report = check_file_source(&origin, &src, None);
        let negative = origin.ends_with(".bad.qdl");
        if negative {
            let missing: Vec<String> = expected_codes(&src)
                .into_iter()
                .filter(|c| !report.diagnostics.iter().any(|d| d.code == *c))
                .collect();
            if report.error_count() == 0 {
                println!("FAIL {origin}: expected errors, found none");
                violations += 1;
            } else if !missing.is_empty() {
                println!("FAIL {origin}: missing expected code(s) {}", missing.join(", "));
                print!("{}", report.render());
                violations += 1;
            } else {
                println!("ok   {origin} (fails as expected: {} error(s))", report.error_count());
            }
        } else if report.error_count() > 0 {
            println!("FAIL {origin}:");
            print!("{}", report.render());
            violations += 1;
        } else {
            let warnings = report.warning_count();
            if warnings > 0 {
                println!("ok   {origin} ({warnings} warning(s))");
                print!(
                    "{}",
                    report
                        .diagnostics
                        .iter()
                        .filter(|d| d.severity == Severity::Warning)
                        .map(|d| format!("  {}: {}\n", d.code, d.message))
                        .collect::<String>()
                );
            } else {
                println!("ok   {origin}");
            }
        }
    }
    println!("{} file(s) checked, {violations} violation(s)", files.len());
    Ok(violations)
}

fn main() -> ExitCode {
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("quarry-check: {msg}");
            ExitCode::FAILURE
        }
    }
}
