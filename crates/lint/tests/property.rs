//! Property tests over the whole lint stack: linting is deterministic,
//! diagnostics come out in their stable order, and because printing a
//! parsed program is a fixpoint, print → reparse → relint is
//! byte-identical (spans included).

use proptest::prelude::*;
use quarry_lang::ast::{Condition, Pipeline, Step};
use quarry_lang::{parse, ExtractorRegistry};
use quarry_lint::lint_source;

proptest! {
    #[test]
    fn prop_lint_is_deterministic_ordered_and_reprint_stable(
        name in "[a-z][a-z_]{0,8}",
        extractors in proptest::collection::vec("[a-z](-?[a-z]){0,5}", 1..4),
        attrs in proptest::collection::vec("[a-z_]{1,8}", 1..4),
        conf in 0.0f64..1.0,
        budget in 0u32..100,
        votes in 0u32..9,
        key in "[a-z_]{1,8}",
    ) {
        // Random programs are syntactically valid but semantically wild:
        // most extractors are unregistered (QL001), attributes rarely
        // producible (QL002), keys rarely projected (QL005) — plenty of
        // diagnostics to exercise ordering and span stability.
        let p = Pipeline {
            name,
            source: "corpus".into(),
            steps: vec![
                Step::Extract { extractors },
                Step::Where { conditions: vec![
                    Condition::AttributeIn(attrs),
                    Condition::ConfidenceGe((conf * 100.0).round() / 100.0),
                ]},
                Step::Resolve { key: key.clone() },
                Step::Curate { budget, votes },
                Step::Store { table: "t".into(), key: vec![key] },
            ],
        };
        let src = p.to_string();
        let reg = ExtractorRegistry::standard();

        // Deterministic: two runs render identically.
        let a = lint_source("p.qdl", &src, &reg, None);
        let b = lint_source("p.qdl", &src, &reg, None);
        prop_assert_eq!(a.render(), b.render());

        // Stable order: (span.start, span.end, code), non-decreasing.
        for w in a.diagnostics.windows(2) {
            prop_assert!(
                (w[0].span.start, w[0].span.end, w[0].code)
                    <= (w[1].span.start, w[1].span.end, w[1].code)
            );
        }

        // Printing is a fixpoint, so relinting the reprint is
        // byte-identical — same spans, same render.
        let reprinted = parse(&src).unwrap().to_string();
        prop_assert_eq!(&src, &reprinted);
        let c = lint_source("p.qdl", &reprinted, &reg, None);
        prop_assert_eq!(a.render(), c.render());
        prop_assert_eq!(a.diagnostics, c.diagnostics);
    }
}
