//! Golden-file tests: the caret renderer's exact output for the QL001–QL005
//! negative examples under `examples/qdl/`.
//!
//! Regenerate after an intentional renderer change with:
//! `GOLDEN_REGEN=1 cargo test -p quarry-lint --test golden`

use quarry_lint::check_file_source;
use std::path::PathBuf;

fn golden(example: &str, golden_name: &str) {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(root.join("../../examples/qdl").join(example)).unwrap();
    let report = check_file_source(example, &src, None);
    let got = report.render();
    let golden_path = root.join("tests/golden").join(golden_name);
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(&golden_path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden {golden_name} ({e}); run with GOLDEN_REGEN=1"));
    assert_eq!(got, want, "renderer output drifted for {example}");
}

#[test]
fn ql001_unknown_extractor_render() {
    golden("unknown_extractor.bad.qdl", "ql001.txt");
}

#[test]
fn ql002_unproducible_attribute_render() {
    golden("unproducible_attribute.bad.qdl", "ql002.txt");
}

#[test]
fn ql003_confidence_range_render() {
    golden("confidence_range.bad.qdl", "ql003.txt");
}

#[test]
fn ql004_unsatisfiable_render() {
    golden("unsatisfiable.bad.qdl", "ql004.txt");
}

#[test]
fn ql005_key_not_projected_render() {
    golden("key_not_projected.bad.qdl", "ql005.txt");
}
