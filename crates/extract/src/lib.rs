//! Information-extraction (IE) operators.
//!
//! The processing layer of the blueprint starts from "a library of basic
//! operators" for extraction. This crate provides that library:
//!
//! - [`token`] — tokenizer and sentence splitter with exact byte offsets;
//! - [`regex`] — a from-scratch Thompson-NFA regular-expression engine (the
//!   offline build has no regex crate; the engine supports the subset the
//!   extractors need: classes, quantifiers, groups, alternation, anchors);
//! - [`infobox`] — `{{Infobox ...}}` attribute-value block parser;
//! - [`rules`] — contextual prose patterns ("In *March*, the average
//!   temperature in *Madison* is *35 °F*");
//! - [`dictionary`] — gazetteer (longest-match multi-token dictionary)
//!   extraction;
//! - [`normalize`] — value normalization (thousands separators, temperature
//!   unit spellings, dates) into typed [`quarry_storage::Value`]s;
//! - [`learned`] — a naive-Bayes token classifier usable as a trainable
//!   extractor, with calibrated posteriors as confidences;
//! - [`eval`] — precision/recall/F1 scoring against corpus ground truth.
//!
//! Every operator emits [`Extraction`]s: attribute-value pairs with the
//! source span, a confidence, and the producing extractor's name — the raw
//! material for integration, uncertainty tracking, and provenance.

#![forbid(unsafe_code)]

pub mod dictionary;
pub mod distant;
pub mod eval;
pub mod infobox;
pub mod learned;
pub mod model;
pub mod normalize;
pub mod pipeline;
pub mod regex;
pub mod rules;
pub mod token;

pub use eval::{f1_score, PrF1};
pub use model::{Extraction, Span};
pub use pipeline::{extract_all, ExtractorSet};
