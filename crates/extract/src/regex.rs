//! A small regular-expression engine, built from scratch.
//!
//! The offline toolchain has no `regex` crate, and the paper's extraction
//! operators are pattern-driven, so the engine is part of the substrate. It
//! compiles a pattern to a bytecode program and runs a backtracking VM with
//! capture groups and a step budget (the budget turns pathological
//! backtracking into a clean no-match instead of a hang; all internal
//! patterns are small and well-behaved).
//!
//! Supported syntax: literals, `.`, escapes `\d \w \s \D \W \S` and escaped
//! metacharacters, classes `[a-z0-9_]` / `[^...]` (with the same escapes),
//! quantifiers `* + ? {m} {m,} {m,n}` (greedy, plus lazy `*?` `+?` `??`),
//! alternation `|`, capture groups `( )`, anchors `^ $`.

use std::fmt;

/// Pattern-compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError(pub String);

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error: {}", self.0)
    }
}

impl std::error::Error for RegexError {}

/// One matched region, in byte offsets of the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Inclusive start byte.
    pub start: usize,
    /// Exclusive end byte.
    pub end: usize,
}

impl Match {
    /// Slice the haystack to the matched text.
    pub fn as_str<'a>(&self, text: &'a str) -> &'a str {
        &text[self.start..self.end]
    }
}

/// Capture groups of one match. Group 0 is the whole match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Captures {
    groups: Vec<Option<Match>>,
}

impl Captures {
    /// The n-th group's match, if that group participated.
    pub fn get(&self, n: usize) -> Option<Match> {
        self.groups.get(n).copied().flatten()
    }

    /// The n-th group's text.
    pub fn text<'a>(&self, n: usize, haystack: &'a str) -> Option<&'a str> {
        self.get(n).map(|m| m.as_str(haystack))
    }

    /// Number of groups (including group 0).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Always false: group 0 exists for any match.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[derive(Debug, Clone, PartialEq)]
enum ClassItem {
    Char(char),
    Range(char, char),
    Digit,
    Word,
    Space,
}

impl ClassItem {
    fn matches(&self, c: char) -> bool {
        match self {
            ClassItem::Char(x) => c == *x,
            ClassItem::Range(a, b) => (*a..=*b).contains(&c),
            ClassItem::Digit => c.is_ascii_digit(),
            ClassItem::Word => c.is_alphanumeric() || c == '_',
            ClassItem::Space => c.is_whitespace(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Inst {
    Char(char),
    Any,
    Class { neg: bool, items: Vec<ClassItem> },
    Split(usize, usize),
    Jmp(usize),
    Save(usize),
    AnchorStart,
    AnchorEnd,
    Match,
}

/// A compiled regular expression.
///
/// ```
/// use quarry_extract::regex::Regex;
///
/// let re = Regex::new(r"(\d+) °F").unwrap();
/// let text = "January averages 26 °F in Madison.";
/// let caps = re.captures(text).unwrap();
/// assert_eq!(caps.text(1, text), Some("26"));
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    prog: Vec<Inst>,
    n_groups: usize,
    pattern: String,
}

// ---------------------------------------------------------------------
// Parser → AST
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Ast {
    Empty,
    Char(char),
    Any,
    Class { neg: bool, items: Vec<ClassItem> },
    Group(usize, Box<Ast>),
    Concat(Vec<Ast>),
    Alt(Box<Ast>, Box<Ast>),
    Repeat { node: Box<Ast>, min: usize, max: Option<usize>, greedy: bool },
    AnchorStart,
    AnchorEnd,
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    next_group: usize,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser { chars: pattern.chars().peekable(), next_group: 1 }
    }

    fn parse(&mut self) -> Result<Ast, RegexError> {
        let ast = self.alternation()?;
        if self.chars.peek().is_some() {
            return Err(RegexError("unbalanced ')'".into()));
        }
        Ok(ast)
    }

    fn alternation(&mut self) -> Result<Ast, RegexError> {
        let mut node = self.concat()?;
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            let rhs = self.concat()?;
            node = Ast::Alt(Box::new(node), Box::new(rhs));
        }
        Ok(node)
    }

    fn concat(&mut self) -> Result<Ast, RegexError> {
        let mut parts = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("len checked"),
            _ => Ast::Concat(parts),
        })
    }

    fn repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.atom()?;
        let (min, max) = match self.chars.peek() {
            Some('*') => {
                self.chars.next();
                (0, None)
            }
            Some('+') => {
                self.chars.next();
                (1, None)
            }
            Some('?') => {
                self.chars.next();
                (0, Some(1))
            }
            Some('{') => {
                self.chars.next();
                self.bounds()?
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::AnchorStart | Ast::AnchorEnd | Ast::Empty) {
            return Err(RegexError("quantifier on anchor or empty".into()));
        }
        let greedy = if self.chars.peek() == Some(&'?') {
            self.chars.next();
            false
        } else {
            true
        };
        Ok(Ast::Repeat { node: Box::new(atom), min, max, greedy })
    }

    fn bounds(&mut self) -> Result<(usize, Option<usize>), RegexError> {
        let mut min = String::new();
        while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
            min.push(self.chars.next().expect("peeked"));
        }
        let min: usize = min.parse().map_err(|_| RegexError("bad {m}".into()))?;
        match self.chars.next() {
            Some('}') => Ok((min, Some(min))),
            Some(',') => {
                let mut max = String::new();
                while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
                    max.push(self.chars.next().expect("peeked"));
                }
                if self.chars.next() != Some('}') {
                    return Err(RegexError("unterminated {m,n}".into()));
                }
                if max.is_empty() {
                    Ok((min, None))
                } else {
                    let max: usize = max.parse().map_err(|_| RegexError("bad {m,n}".into()))?;
                    if max < min {
                        return Err(RegexError("{m,n} with n < m".into()));
                    }
                    Ok((min, Some(max)))
                }
            }
            _ => Err(RegexError("unterminated {m}".into())),
        }
    }

    fn atom(&mut self) -> Result<Ast, RegexError> {
        let c = self.chars.next().ok_or_else(|| RegexError("unexpected end".into()))?;
        Ok(match c {
            '(' => {
                let idx = self.next_group;
                self.next_group += 1;
                let inner = self.alternation()?;
                if self.chars.next() != Some(')') {
                    return Err(RegexError("unbalanced '('".into()));
                }
                Ast::Group(idx, Box::new(inner))
            }
            '[' => self.class()?,
            '.' => Ast::Any,
            '^' => Ast::AnchorStart,
            '$' => Ast::AnchorEnd,
            '\\' => self.escape()?,
            '*' | '+' | '?' => return Err(RegexError(format!("dangling quantifier '{c}'"))),
            _ => Ast::Char(c),
        })
    }

    fn escape(&mut self) -> Result<Ast, RegexError> {
        let c = self.chars.next().ok_or_else(|| RegexError("trailing backslash".into()))?;
        Ok(match c {
            'd' => Ast::Class { neg: false, items: vec![ClassItem::Digit] },
            'D' => Ast::Class { neg: true, items: vec![ClassItem::Digit] },
            'w' => Ast::Class { neg: false, items: vec![ClassItem::Word] },
            'W' => Ast::Class { neg: true, items: vec![ClassItem::Word] },
            's' => Ast::Class { neg: false, items: vec![ClassItem::Space] },
            'S' => Ast::Class { neg: true, items: vec![ClassItem::Space] },
            'n' => Ast::Char('\n'),
            't' => Ast::Char('\t'),
            'r' => Ast::Char('\r'),
            _ => Ast::Char(c), // escaped metacharacter (\. \( \| ...)
        })
    }

    fn class(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        let neg = if self.chars.peek() == Some(&'^') {
            self.chars.next();
            true
        } else {
            false
        };
        loop {
            let c = self.chars.next().ok_or_else(|| RegexError("unterminated class".into()))?;
            match c {
                ']' => break,
                '\\' => {
                    let e = self
                        .chars
                        .next()
                        .ok_or_else(|| RegexError("trailing backslash in class".into()))?;
                    items.push(match e {
                        'd' => ClassItem::Digit,
                        'w' => ClassItem::Word,
                        's' => ClassItem::Space,
                        'n' => ClassItem::Char('\n'),
                        't' => ClassItem::Char('\t'),
                        other => ClassItem::Char(other),
                    });
                }
                first => {
                    // Possible range `a-z` (a '-' at the end is a literal).
                    if self.chars.peek() == Some(&'-') {
                        let mut clone = self.chars.clone();
                        clone.next(); // consume '-'
                        match clone.peek() {
                            Some(&']') | None => items.push(ClassItem::Char(first)),
                            Some(&hi) => {
                                self.chars.next();
                                self.chars.next();
                                if hi < first {
                                    return Err(RegexError("inverted class range".into()));
                                }
                                items.push(ClassItem::Range(first, hi));
                            }
                        }
                    } else {
                        items.push(ClassItem::Char(first));
                    }
                }
            }
        }
        Ok(Ast::Class { neg, items })
    }
}

// ---------------------------------------------------------------------
// Compiler: AST → bytecode
// ---------------------------------------------------------------------

fn compile(ast: &Ast, prog: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Char(c) => prog.push(Inst::Char(*c)),
        Ast::Any => prog.push(Inst::Any),
        Ast::Class { neg, items } => prog.push(Inst::Class { neg: *neg, items: items.clone() }),
        Ast::AnchorStart => prog.push(Inst::AnchorStart),
        Ast::AnchorEnd => prog.push(Inst::AnchorEnd),
        Ast::Group(idx, inner) => {
            prog.push(Inst::Save(idx * 2));
            compile(inner, prog);
            prog.push(Inst::Save(idx * 2 + 1));
        }
        Ast::Concat(parts) => {
            for p in parts {
                compile(p, prog);
            }
        }
        Ast::Alt(a, b) => {
            let split = prog.len();
            prog.push(Inst::Split(0, 0)); // patched below
            compile(a, prog);
            let jmp = prog.len();
            prog.push(Inst::Jmp(0)); // patched below
            let b_start = prog.len();
            compile(b, prog);
            let end = prog.len();
            prog[split] = Inst::Split(split + 1, b_start);
            prog[jmp] = Inst::Jmp(end);
        }
        Ast::Repeat { node, min, max, greedy } => {
            // Mandatory copies.
            for _ in 0..*min {
                compile(node, prog);
            }
            match max {
                Some(max) => {
                    // Optional copies: (max - min) nested `?`.
                    let mut splits = Vec::new();
                    for _ in *min..*max {
                        let split = prog.len();
                        prog.push(Inst::Split(0, 0));
                        splits.push(split);
                        compile(node, prog);
                    }
                    let end = prog.len();
                    for split in splits {
                        prog[split] = if *greedy {
                            Inst::Split(split + 1, end)
                        } else {
                            Inst::Split(end, split + 1)
                        };
                    }
                }
                None => {
                    // Star loop.
                    let loop_start = prog.len();
                    prog.push(Inst::Split(0, 0));
                    compile(node, prog);
                    prog.push(Inst::Jmp(loop_start));
                    let end = prog.len();
                    prog[loop_start] = if *greedy {
                        Inst::Split(loop_start + 1, end)
                    } else {
                        Inst::Split(end, loop_start + 1)
                    };
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Backtracking VM
// ---------------------------------------------------------------------

struct Haystack<'t> {
    chars: &'t [char],
    offsets: &'t [usize],
}

impl Haystack<'_> {
    fn byte_at(&self, sp: usize) -> usize {
        if sp < self.offsets.len() {
            self.offsets[sp]
        } else {
            // End of haystack: one past the last char's start.
            self.offsets
                .last()
                .map_or(0, |&last| last + self.chars.last().map_or(0, |c| c.len_utf8()))
        }
    }
}

fn exec(
    prog: &[Inst],
    hay: &Haystack<'_>,
    mut pc: usize,
    mut sp: usize,
    saves: &mut Vec<Option<usize>>,
    budget: &mut usize,
) -> Option<usize> {
    loop {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        match &prog[pc] {
            Inst::Match => return Some(sp),
            Inst::Char(c) => {
                if sp < hay.chars.len() && hay.chars[sp] == *c {
                    pc += 1;
                    sp += 1;
                } else {
                    return None;
                }
            }
            Inst::Any => {
                if sp < hay.chars.len() {
                    pc += 1;
                    sp += 1;
                } else {
                    return None;
                }
            }
            Inst::Class { neg, items } => {
                if sp < hay.chars.len() {
                    let hit = items.iter().any(|i| i.matches(hay.chars[sp]));
                    if hit != *neg {
                        pc += 1;
                        sp += 1;
                        continue;
                    }
                }
                return None;
            }
            Inst::AnchorStart => {
                if sp == 0 {
                    pc += 1;
                } else {
                    return None;
                }
            }
            Inst::AnchorEnd => {
                if sp == hay.chars.len() {
                    pc += 1;
                } else {
                    return None;
                }
            }
            Inst::Jmp(t) => pc = *t,
            Inst::Split(a, b) => {
                let snapshot = saves.clone();
                if let Some(end) = exec(prog, hay, *a, sp, saves, budget) {
                    return Some(end);
                }
                *saves = snapshot;
                pc = *b;
            }
            Inst::Save(slot) => {
                let slot = *slot;
                let old = saves[slot];
                saves[slot] = Some(hay.byte_at(sp));
                if let Some(end) = exec(prog, hay, pc + 1, sp, saves, budget) {
                    return Some(end);
                }
                saves[slot] = old;
                return None;
            }
        }
    }
}

impl Regex {
    /// Steps allowed per match attempt before giving up.
    const STEP_BUDGET: usize = 1_000_000;

    /// Compile a pattern.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let ast = Parser::new(pattern).parse()?;
        let n_groups = count_groups(&ast) + 1;
        let mut prog = Vec::new();
        prog.push(Inst::Save(0));
        compile(&ast, &mut prog);
        prog.push(Inst::Save(1));
        prog.push(Inst::Match);
        Ok(Regex { prog, n_groups, pattern: pattern.to_string() })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Does the pattern match anywhere in `text`?
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// Leftmost match, if any.
    pub fn find(&self, text: &str) -> Option<Match> {
        self.captures(text).and_then(|c| c.get(0))
    }

    /// Leftmost match with capture groups.
    pub fn captures(&self, text: &str) -> Option<Captures> {
        self.captures_from(text, 0)
    }

    fn captures_from(&self, text: &str, start_char: usize) -> Option<Captures> {
        let chars: Vec<char> = text.chars().collect();
        let offsets: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
        let hay = Haystack { chars: &chars, offsets: &offsets };
        for sp in start_char..=chars.len() {
            let mut saves = vec![None; self.n_groups * 2];
            let mut budget = Self::STEP_BUDGET;
            if exec(&self.prog, &hay, 0, sp, &mut saves, &mut budget).is_some() {
                let groups = (0..self.n_groups)
                    .map(|g| match (saves[g * 2], saves[g * 2 + 1]) {
                        (Some(s), Some(e)) => Some(Match { start: s, end: e }),
                        _ => None,
                    })
                    .collect();
                return Some(Captures { groups });
            }
        }
        None
    }

    /// All non-overlapping matches, left to right.
    pub fn find_iter(&self, text: &str) -> Vec<Match> {
        self.captures_iter(text).into_iter().filter_map(|c| c.get(0)).collect()
    }

    /// Captures of all non-overlapping matches, left to right.
    pub fn captures_iter(&self, text: &str) -> Vec<Captures> {
        let mut out = Vec::new();
        let mut byte_pos = 0usize;
        // Map byte position → char position for restart.
        while byte_pos <= text.len() {
            let rest = &text[byte_pos..];
            let Some(caps) = self.captures(rest) else { break };
            let m = caps.get(0).expect("group 0 always set");
            // Rebase capture offsets onto the full text.
            let rebased = Captures {
                groups: caps
                    .groups
                    .iter()
                    .map(|g| g.map(|m| Match { start: m.start + byte_pos, end: m.end + byte_pos }))
                    .collect(),
            };
            let advance = if m.end > m.start { m.end } else { m.end + char_len_at(rest, m.end) };
            out.push(rebased);
            byte_pos += advance;
        }
        out
    }
}

/// Byte length of the char at `at` (1 past end-of-string, to force progress).
fn char_len_at(text: &str, at: usize) -> usize {
    text.get(at..).and_then(|t| t.chars().next()).map_or(1, |c| c.len_utf8())
}

fn count_groups(ast: &Ast) -> usize {
    match ast {
        Ast::Group(idx, inner) => (*idx).max(count_groups(inner)),
        Ast::Concat(parts) => parts.iter().map(count_groups).max().unwrap_or(0),
        Ast::Alt(a, b) => count_groups(a).max(count_groups(b)),
        Ast::Repeat { node, .. } => count_groups(node),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> Option<String> {
        Regex::new(pat).unwrap().find(text).map(|m| m.as_str(text).to_string())
    }

    #[test]
    fn literals_and_any() {
        assert_eq!(m("abc", "xxabcxx"), Some("abc".into()));
        assert_eq!(m("a.c", "a!c"), Some("a!c".into()));
        assert_eq!(m("abc", "ab"), None);
    }

    #[test]
    fn escapes() {
        assert_eq!(m(r"\d+", "year 2009!"), Some("2009".into()));
        assert_eq!(m(r"\w+", "  hello_9 "), Some("hello_9".into()));
        assert_eq!(m(r"\s\S", "a b"), Some(" b".into()));
        assert_eq!(m(r"\.", "a.b"), Some(".".into()));
        assert_eq!(m(r"\D+", "12ab34"), Some("ab".into()));
    }

    #[test]
    fn classes_and_ranges() {
        assert_eq!(m("[a-c]+", "zzabcaz"), Some("abca".into()));
        assert_eq!(m("[^0-9]+", "12abc34"), Some("abc".into()));
        assert_eq!(m(r"[\d,]+", "pop 1,234,567."), Some("1,234,567".into()));
        assert_eq!(m("[a-]", "-"), Some("-".into()));
    }

    #[test]
    fn quantifiers() {
        assert_eq!(m("ab*c", "ac"), Some("ac".into()));
        assert_eq!(m("ab+c", "ac"), None);
        assert_eq!(m("ab?c", "abc"), Some("abc".into()));
        assert_eq!(m("a{3}", "aaaa"), Some("aaa".into()));
        assert_eq!(m("a{2,3}", "aaaa"), Some("aaa".into()));
        assert_eq!(m("a{2,}", "aaaa"), Some("aaaa".into()));
        assert_eq!(m("a{2,3}", "a"), None);
    }

    #[test]
    fn lazy_quantifiers() {
        assert_eq!(m("<.*?>", "<a><b>"), Some("<a>".into()));
        assert_eq!(m("<.*>", "<a><b>"), Some("<a><b>".into()));
    }

    #[test]
    fn alternation_and_groups() {
        assert_eq!(m("cat|dog", "hotdog"), Some("dog".into()));
        let re = Regex::new(r"(\d+) (°F|F|degrees Fahrenheit)").unwrap();
        let caps = re.captures("it is 70 degrees Fahrenheit today").unwrap();
        assert_eq!(caps.text(1, "it is 70 degrees Fahrenheit today"), Some("70"));
        assert_eq!(caps.text(2, "it is 70 degrees Fahrenheit today"), Some("degrees Fahrenheit"));
    }

    #[test]
    fn anchors() {
        assert_eq!(m("^abc", "abcdef"), Some("abc".into()));
        assert_eq!(m("^bcd", "abcdef"), None);
        assert_eq!(m("def$", "abcdef"), Some("def".into()));
        assert_eq!(m("^abcdef$", "abcdef"), Some("abcdef".into()));
    }

    #[test]
    fn find_iter_non_overlapping() {
        let re = Regex::new(r"\d+").unwrap();
        let text = "a1 b22 c333";
        let all: Vec<String> =
            re.find_iter(text).iter().map(|m| m.as_str(text).to_string()).collect();
        assert_eq!(all, vec!["1", "22", "333"]);
    }

    #[test]
    fn captures_iter_rebased_offsets() {
        let re = Regex::new(r"(\w+) = (\d+)").unwrap();
        let text = "| a = 1\n| bb = 22\n";
        let caps = re.captures_iter(text);
        assert_eq!(caps.len(), 2);
        assert_eq!(caps[1].text(1, text), Some("bb"));
        assert_eq!(caps[1].text(2, text), Some("22"));
        let m = caps[1].get(0).unwrap();
        assert_eq!(m.as_str(text), "bb = 22");
    }

    #[test]
    fn nested_groups() {
        let re = Regex::new(r"((a+)(b+))c").unwrap();
        let caps = re.captures("xaabbbc").unwrap();
        assert_eq!(caps.text(1, "xaabbbc"), Some("aabbb"));
        assert_eq!(caps.text(2, "xaabbbc"), Some("aa"));
        assert_eq!(caps.text(3, "xaabbbc"), Some("bbb"));
    }

    #[test]
    fn unicode_haystack_offsets_are_bytes() {
        let text = "temp — 70 °F";
        let re = Regex::new(r"\d+").unwrap();
        let m = re.find(text).unwrap();
        assert_eq!(m.as_str(text), "70");
        assert_eq!(&text[m.start..m.end], "70");
    }

    #[test]
    fn group_in_alternation_unset_when_untaken() {
        let re = Regex::new(r"(a)|(b)").unwrap();
        let caps = re.captures("b").unwrap();
        assert_eq!(caps.get(1), None);
        assert!(caps.get(2).is_some());
    }

    #[test]
    fn empty_match_iteration_terminates() {
        let re = Regex::new("x*").unwrap();
        let all = re.find_iter("aaa");
        assert!(!all.is_empty()); // empty matches at each position, but it terminates
    }

    #[test]
    fn parse_errors() {
        for bad in ["(abc", "abc)", "[abc", "a{2,1}", "*a", "a{", r"\"] {
            assert!(Regex::new(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn repetition_of_group() {
        let re = Regex::new(r"(ab)+").unwrap();
        let m = re.find("xababab!").unwrap();
        assert_eq!(m.as_str("xababab!"), "ababab");
    }

    #[test]
    fn pathological_pattern_fails_closed() {
        // (a+)+b on a long 'a' string must not hang; budget turns it into a miss.
        let re = Regex::new("(a+)+b").unwrap();
        let text = "a".repeat(40);
        assert!(!re.is_match(&text));
    }
}
