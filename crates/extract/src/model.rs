//! The extraction data model: spans and attribute-value extractions.

use quarry_corpus::DocId;
use quarry_storage::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A byte range within a document's text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Span {
    /// Inclusive start byte offset.
    pub start: usize,
    /// Exclusive end byte offset.
    pub end: usize,
}

impl Span {
    /// Construct a span; panics if `end < start`.
    pub fn new(start: usize, end: usize) -> Span {
        assert!(end >= start, "span end before start");
        Span { start, end }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for zero-length spans.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The text this span covers.
    pub fn slice<'a>(&self, text: &'a str) -> &'a str {
        &text[self.start..self.end]
    }

    /// Whether two spans overlap by at least one byte.
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.start, self.end)
    }
}

/// One extracted attribute-value pair, the paper's unit of generated
/// structure (e.g. `("month" = "September", "temperature" = 70)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Extraction {
    /// Source document.
    pub doc: DocId,
    /// Attribute name, canonicalized by the extractor (e.g. `september_temp`).
    pub attribute: String,
    /// The raw surface text of the value.
    pub raw: String,
    /// The normalized, typed value.
    pub value: Value,
    /// Where in the document the value came from.
    pub span: Span,
    /// Extractor-assigned confidence in `[0,1]`.
    pub confidence: f64,
    /// Name of the producing extractor (provenance).
    pub extractor: &'static str,
}

impl Extraction {
    /// Stable identity for dedup: same doc + attribute + normalized value.
    pub fn identity(&self) -> (DocId, &str, &Value) {
        (self.doc, &self.attribute, &self.value)
    }
}

/// Remove duplicate extractions (same identity), keeping the most confident.
pub fn dedup(mut extractions: Vec<Extraction>) -> Vec<Extraction> {
    extractions.sort_by(dedup_order);
    dedup_sorted(extractions)
}

/// The comparator [`dedup`] sorts by: identity ascending, then confidence
/// descending, so the first witness of each identity is the most
/// confident one. Exposed so a parallel sort can reproduce `dedup`
/// exactly (see `quarry-exec`).
pub fn dedup_order(a: &Extraction, b: &Extraction) -> std::cmp::Ordering {
    a.identity()
        .cmp(&b.identity())
        .then(b.confidence.partial_cmp(&a.confidence).unwrap_or(std::cmp::Ordering::Equal))
}

/// Second half of [`dedup`]: collapse a vector already sorted by
/// [`dedup_order`] down to one witness per identity.
pub fn dedup_sorted(mut extractions: Vec<Extraction>) -> Vec<Extraction> {
    extractions.dedup_by(|next, kept| next.identity() == kept.identity());
    extractions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(attr: &str, val: i64, conf: f64) -> Extraction {
        Extraction {
            doc: DocId(1),
            attribute: attr.into(),
            raw: val.to_string(),
            value: Value::Int(val),
            span: Span::new(0, 2),
            confidence: conf,
            extractor: "test",
        }
    }

    #[test]
    fn span_slice_and_overlap() {
        let s = Span::new(4, 9);
        assert_eq!(s.slice("the quick fox"), "quick");
        assert_eq!(s.len(), 5);
        assert!(s.overlaps(&Span::new(8, 10)));
        assert!(!s.overlaps(&Span::new(9, 10)));
        assert!(!Span::new(2, 2).overlaps(&s));
    }

    #[test]
    #[should_panic(expected = "span end before start")]
    fn invalid_span_panics() {
        Span::new(5, 4);
    }

    #[test]
    fn dedup_keeps_highest_confidence() {
        let out = dedup(vec![ext("a", 1, 0.5), ext("a", 1, 0.9), ext("a", 2, 0.3)]);
        assert_eq!(out.len(), 2);
        let best = out.iter().find(|e| e.value == Value::Int(1)).unwrap();
        assert_eq!(best.confidence, 0.9);
    }

    #[test]
    fn dedup_distinguishes_docs_and_attributes() {
        let mut e2 = ext("a", 1, 0.5);
        e2.doc = DocId(2);
        let out = dedup(vec![ext("a", 1, 0.5), e2, ext("b", 1, 0.5)]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn span_display() {
        assert_eq!(Span::new(3, 7).to_string(), "[3..7)");
    }
}
