//! Contextual prose rules: hand-written patterns over sentence text.
//!
//! Rule-based extraction was the workhorse of 2000s IE systems (and of the
//! UW Cimple/DBLife line of work this paper grew out of): a domain developer
//! writes patterns like *"In ⟨month⟩, the average temperature in ⟨city⟩ is
//! ⟨value⟩"*; matches yield attribute-value extractions with moderate
//! confidence. Prose restates facts less reliably than infobox markup
//! (typos, paraphrase), which is exactly the imperfection the paper's HI
//! loop exists to repair.

use crate::model::{Extraction, Span};
use crate::normalize;
use crate::regex::Regex;
use quarry_corpus::Document;

/// Name this extractor reports in provenance.
pub const NAME: &str = "prose-rule";

/// One binding of a capture group to an attribute.
///
/// `attribute` may contain `{n}` placeholders, replaced by the lowercased
/// text of capture group `n` — e.g. attribute `"{1}_temp"` with group 1
/// capturing `March` binds group 2's value to attribute `march_temp`.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Capture group holding the value.
    pub group: usize,
    /// Attribute name template.
    pub attribute: String,
}

/// A prose extraction rule.
#[derive(Debug, Clone)]
pub struct ProseRule {
    /// Rule name (diagnostics).
    pub name: &'static str,
    pattern: Regex,
    bindings: Vec<Binding>,
    confidence: f64,
}

impl ProseRule {
    /// Compile a rule. Panics on an invalid pattern (rules are static
    /// developer input; failing fast at construction is the right behavior).
    pub fn new(
        name: &'static str,
        pattern: &str,
        bindings: Vec<Binding>,
        confidence: f64,
    ) -> ProseRule {
        ProseRule {
            name,
            pattern: Regex::new(pattern).unwrap_or_else(|e| panic!("rule {name}: {e}")),
            bindings,
            confidence,
        }
    }

    /// Apply the rule to one document.
    pub fn extract(&self, doc: &Document) -> Vec<Extraction> {
        let mut out = Vec::new();
        for caps in self.pattern.captures_iter(&doc.text) {
            for b in &self.bindings {
                let Some(m) = caps.get(b.group) else { continue };
                let raw = m.as_str(&doc.text).trim().to_string();
                if raw.is_empty() {
                    continue;
                }
                // Resolve {n} placeholders in the attribute template.
                let mut attribute = b.attribute.clone();
                for g in 1..caps.len() {
                    let ph = format!("{{{g}}}");
                    if attribute.contains(&ph) {
                        let sub =
                            caps.text(g, &doc.text).map(|t| t.to_lowercase()).unwrap_or_default();
                        attribute = attribute.replace(&ph, &sub);
                    }
                }
                let value = normalize::normalize(&attribute, &raw);
                out.push(Extraction {
                    doc: doc.id,
                    attribute,
                    raw,
                    value,
                    span: Span::new(m.start, m.end),
                    confidence: self.confidence,
                    extractor: NAME,
                });
            }
        }
        out
    }
}

const MONTH_ALT: &str =
    "January|February|March|April|May|June|July|August|September|October|November|December";
const NUM: &str = r"-?[\d,]+";

/// The standard rule set covering the corpus's prose templates, i.e. the
/// sentences a Wikipedia-like city/person/company/publication page uses to
/// restate its facts.
pub fn standard_rules() -> Vec<ProseRule> {
    // NOTE: the engine has no non-capturing groups, so every group counts;
    // bindings reference groups by absolute index.
    vec![
        ProseRule::new(
            "monthly-temperature",
            &format!(r"In ({MONTH_ALT}), the average temperature in [A-Z][a-z]+\w* is (-?\d+)"),
            vec![Binding { group: 2, attribute: "{1}_temp".into() }],
            0.75,
        ),
        ProseRule::new(
            "population-of",
            &format!(r"the population of [A-Z]\w+ was ({NUM})"),
            vec![Binding { group: 1, attribute: "population".into() }],
            0.75,
        ),
        ProseRule::new(
            "founded-and-area",
            r"was founded in (\d{4}) and covers (\d+\.\d+) square miles",
            vec![
                Binding { group: 1, attribute: "founded".into() },
                Binding { group: 2, attribute: "area_sq_mi".into() },
            ],
            0.75,
        ),
        ProseRule::new(
            "person-born-works",
            r"\(born (\d{4})\) works at ([A-Z][\w]*( [A-Z][\w]*)*)",
            vec![
                Binding { group: 1, attribute: "birth_year".into() },
                Binding { group: 2, attribute: "employer".into() },
            ],
            0.7,
        ),
        ProseRule::new(
            "lives-in",
            r"(\w+) lives in ([A-Z][\w]*)",
            vec![Binding { group: 2, attribute: "residence".into() }],
            0.7,
        ),
        ProseRule::new(
            "company-industry-hq",
            r"is a ([a-z]+) company headquartered in ([A-Z][\w]*)",
            vec![
                Binding { group: 1, attribute: "industry".into() },
                Binding { group: 2, attribute: "headquarters".into() },
            ],
            0.7,
        ),
        ProseRule::new(
            "company-founded",
            r"It was founded in (\d{4})",
            vec![Binding { group: 1, attribute: "founded".into() }],
            0.7,
        ),
        ProseRule::new(
            "publication-venue-year",
            r#"appeared at ([A-Z]+) in (\d{4})"#,
            vec![
                Binding { group: 1, attribute: "venue".into() },
                Binding { group: 2, attribute: "year".into() },
            ],
            0.75,
        ),
        ProseRule::new(
            "lead-author",
            // A name part is either a capitalized word or an initial ("D.");
            // a sentence-final period must not be absorbed into the name.
            r"The lead author is ([A-Z](\w+|\.)( [A-Z](\w+|\.))*)",
            vec![Binding { group: 1, attribute: "author".into() }],
            0.7,
        ),
    ]
}

/// Run every rule over a document.
pub fn extract(doc: &Document, rules: &[ProseRule]) -> Vec<Extraction> {
    rules.iter().flat_map(|r| r.extract(doc)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_corpus::{DocId, DocKind};
    use quarry_storage::Value;

    fn doc(text: &str) -> Document {
        Document { id: DocId(0), title: "T".into(), text: text.into(), kind: DocKind::City }
    }

    #[test]
    fn monthly_temperature_rule_builds_attribute_from_month() {
        let rules = standard_rules();
        let d = doc("In March, the average temperature in Madison is 35 °F. In July, the average temperature in Madison is 72 °F.");
        let exts = extract(&d, &rules);
        let march = exts.iter().find(|e| e.attribute == "march_temp").unwrap();
        assert_eq!(march.value, Value::Int(35));
        let july = exts.iter().find(|e| e.attribute == "july_temp").unwrap();
        assert_eq!(july.value, Value::Int(72));
    }

    #[test]
    fn population_with_separators() {
        let d = doc("As of the last census, the population of Madison was 250,000.");
        let exts = extract(&d, &standard_rules());
        assert_eq!(exts.len(), 1);
        assert_eq!(exts[0].attribute, "population");
        assert_eq!(exts[0].value, Value::Int(250_000));
    }

    #[test]
    fn founded_and_area_two_bindings() {
        let d = doc("Madison was founded in 1846 and covers 77.0 square miles.");
        let exts = extract(&d, &standard_rules());
        assert_eq!(exts.len(), 2);
        assert_eq!(exts.iter().find(|e| e.attribute == "founded").unwrap().value, Value::Int(1846));
        assert_eq!(
            exts.iter().find(|e| e.attribute == "area_sq_mi").unwrap().value,
            Value::Float(77.0)
        );
    }

    #[test]
    fn person_and_company_rules() {
        let d = doc("David Smith (born 1962) works at Acme Systems. Smith lives in Madison.");
        let exts = extract(&d, &standard_rules());
        let attr = |a: &str| exts.iter().find(|e| e.attribute == a).map(|e| e.value.clone());
        assert_eq!(attr("birth_year"), Some(Value::Int(1962)));
        assert_eq!(attr("employer"), Some(Value::Text("Acme Systems".into())));
        assert_eq!(attr("residence"), Some(Value::Text("Madison".into())));
    }

    #[test]
    fn company_page_rules() {
        let d = doc(
            "Acme Systems is a software company headquartered in Madison. It was founded in 1987.",
        );
        let exts = extract(&d, &standard_rules());
        let attr = |a: &str| exts.iter().find(|e| e.attribute == a).map(|e| e.value.clone());
        assert_eq!(attr("industry"), Some(Value::Text("software".into())));
        assert_eq!(attr("headquarters"), Some(Value::Text("Madison".into())));
        assert_eq!(attr("founded"), Some(Value::Int(1987)));
    }

    #[test]
    fn publication_rules() {
        let d = doc("\"A Survey of Entity Resolution\" appeared at CIDR in 2008. The lead author is D. Smith.");
        let exts = extract(&d, &standard_rules());
        let attr = |a: &str| exts.iter().find(|e| e.attribute == a).map(|e| e.value.clone());
        assert_eq!(attr("venue"), Some(Value::Text("CIDR".into())));
        assert_eq!(attr("year"), Some(Value::Int(2008)));
        assert_eq!(attr("author"), Some(Value::Text("D. Smith".into())));
    }

    #[test]
    fn no_rule_matches_neutral_text() {
        let d = doc("The library maintains regional archives.");
        assert!(extract(&d, &standard_rules()).is_empty());
    }

    #[test]
    fn spans_are_exact() {
        let d = doc("the population of Oakton was 9,500 then");
        let exts = extract(&d, &standard_rules());
        assert_eq!(exts[0].span.slice(&d.text), "9,500");
    }

    #[test]
    #[should_panic(expected = "rule bad")]
    fn invalid_rule_panics_at_construction() {
        ProseRule::new("bad", "(unclosed", vec![], 0.5);
    }
}
