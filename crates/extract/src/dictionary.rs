//! Gazetteer (dictionary) extraction: longest-match lookup of known entity
//! names in text.
//!
//! Given a dictionary mapping surface forms to canonical entries (cities,
//! months, venue acronyms...), scan a text's tokens and emit a match for
//! every maximal dictionary phrase. Matching is case-sensitive by default
//! (proper names) with an opt-in case-insensitive mode (months, units).

use crate::model::{Extraction, Span};
use crate::token::{tokenize, Token};
use quarry_corpus::Document;
use quarry_storage::Value;
use std::collections::HashMap;

/// Name this extractor reports in provenance.
pub const NAME: &str = "dictionary";

/// Confidence for dictionary hits: names are exact, but a surface form can
/// be ambiguous (a person named "Madison"), so below infobox confidence.
pub const CONFIDENCE: f64 = 0.85;

/// A compiled gazetteer for one attribute.
#[derive(Debug, Clone)]
pub struct Gazetteer {
    attribute: String,
    /// token-seq (joined by space, possibly lowercased) → canonical form
    entries: HashMap<String, String>,
    /// longest entry length in tokens
    max_tokens: usize,
    case_insensitive: bool,
}

impl Gazetteer {
    /// Build a gazetteer for `attribute` from `(surface, canonical)` pairs.
    pub fn new<'a>(
        attribute: &str,
        entries: impl IntoIterator<Item = (&'a str, &'a str)>,
        case_insensitive: bool,
    ) -> Gazetteer {
        let mut map = HashMap::new();
        let mut max_tokens = 1;
        for (surface, canonical) in entries {
            let toks = tokenize(surface);
            max_tokens = max_tokens.max(toks.len());
            let key = Self::key_of(surface, &toks, case_insensitive);
            map.insert(key, canonical.to_string());
        }
        Gazetteer { attribute: attribute.to_string(), entries: map, max_tokens, case_insensitive }
    }

    /// Build from canonical names only (surface = canonical).
    pub fn from_names<'a>(
        attribute: &str,
        names: impl IntoIterator<Item = &'a str>,
        case_insensitive: bool,
    ) -> Gazetteer {
        Self::new(attribute, names.into_iter().map(|n| (n, n)), case_insensitive)
    }

    fn key_of(source: &str, toks: &[Token], ci: bool) -> String {
        let joined = toks.iter().map(|t| t.text(source)).collect::<Vec<_>>().join(" ");
        if ci {
            joined.to_lowercase()
        } else {
            joined
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the gazetteer has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Scan a document and emit one extraction per maximal match.
    pub fn extract(&self, doc: &Document) -> Vec<Extraction> {
        let toks = tokenize(&doc.text);
        let mut out = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            let mut matched: Option<(usize, &String)> = None;
            // Longest match first.
            for n in (1..=self.max_tokens.min(toks.len() - i)).rev() {
                let window = &toks[i..i + n];
                let key = Self::key_of(&doc.text, window, self.case_insensitive);
                if let Some(canonical) = self.entries.get(&key) {
                    matched = Some((n, canonical));
                    break;
                }
            }
            match matched {
                Some((n, canonical)) => {
                    let span = Span::new(toks[i].span.start, toks[i + n - 1].span.end);
                    out.push(Extraction {
                        doc: doc.id,
                        attribute: self.attribute.clone(),
                        raw: span.slice(&doc.text).to_string(),
                        value: Value::Text(canonical.clone()),
                        span,
                        confidence: CONFIDENCE,
                        extractor: NAME,
                    });
                    i += n;
                }
                None => i += 1,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_corpus::{DocId, DocKind};

    fn doc(text: &str) -> Document {
        Document { id: DocId(3), title: "T".into(), text: text.into(), kind: DocKind::City }
    }

    #[test]
    fn single_and_multi_token_matches() {
        let g = Gazetteer::from_names("city", ["Madison", "Green Bay"], false);
        let d = doc("From Madison drive to Green Bay by noon.");
        let exts = g.extract(&d);
        let values: Vec<_> = exts.iter().map(|e| e.value.to_string()).collect();
        assert_eq!(values, vec!["Madison", "Green Bay"]);
        assert_eq!(exts[1].raw, "Green Bay");
        assert_eq!(exts[1].span.slice(&d.text), "Green Bay");
    }

    #[test]
    fn longest_match_wins() {
        let g = Gazetteer::from_names("city", ["York", "New York"], false);
        let exts = g.extract(&doc("I flew to New York yesterday"));
        assert_eq!(exts.len(), 1);
        assert_eq!(exts[0].value.to_string(), "New York");
    }

    #[test]
    fn surface_to_canonical_mapping() {
        let g = Gazetteer::new("month", [("Sept", "September"), ("September", "September")], true);
        let exts = g.extract(&doc("Arrived in sept, left in SEPTEMBER."));
        assert_eq!(exts.len(), 2);
        assert!(exts.iter().all(|e| e.value.to_string() == "September"));
    }

    #[test]
    fn case_sensitivity_respected() {
        let g = Gazetteer::from_names("city", ["Madison"], false);
        assert!(g.extract(&doc("madison is lowercase")).is_empty());
        assert_eq!(g.extract(&doc("Madison is capitalized")).len(), 1);
    }

    #[test]
    fn no_matches_in_unrelated_text() {
        let g = Gazetteer::from_names("city", ["Madison"], false);
        assert!(g.extract(&doc("Nothing to see here.")).is_empty());
    }

    #[test]
    fn punctuation_between_tokens_blocks_match() {
        let g = Gazetteer::from_names("city", ["Green Bay"], false);
        // "Green, Bay" tokenizes with an intervening comma token.
        assert!(g.extract(&doc("Green, Bay")).is_empty());
    }

    #[test]
    fn len_and_empty() {
        let g = Gazetteer::from_names("x", ["a", "b"], false);
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        let e = Gazetteer::from_names("x", [], false);
        assert!(e.is_empty());
    }
}
