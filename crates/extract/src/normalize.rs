//! Value normalization: surface variants → typed values.
//!
//! The corpus (like real pages) renders the same fact many ways —
//! `250,000` vs `250000`, `70 °F` vs `70 F` vs `70 degrees Fahrenheit` —
//! and extraction must map all of them onto one typed value before
//! integration can unify anything.

use quarry_storage::Value;

/// Parse an integer that may carry thousands separators.
pub fn parse_int(s: &str) -> Option<i64> {
    let cleaned: String = s.trim().chars().filter(|&c| c != ',').collect();
    if cleaned.is_empty() {
        return None;
    }
    // Reject things like "1,23" that merely contain digits — separators must
    // group by threes if present at all.
    if s.contains(',') {
        let parts: Vec<&str> = s.trim().trim_start_matches('-').split(',').collect();
        if parts.len() < 2
            || parts[0].is_empty()
            || parts[0].len() > 3
            || parts[1..].iter().any(|p| p.len() != 3)
        {
            return None;
        }
    }
    cleaned.parse().ok()
}

/// Parse a float (no separators expected).
pub fn parse_float(s: &str) -> Option<f64> {
    let t = s.trim();
    if t.is_empty() {
        return None;
    }
    t.parse().ok()
}

/// Parse a Fahrenheit temperature in any of the unit spellings the corpus
/// renders: `70 °F`, `70 F`, `70 degrees Fahrenheit`, or a bare number.
pub fn parse_temp_f(s: &str) -> Option<i64> {
    let t = s.trim();
    let number_part = t
        .trim_end_matches("degrees Fahrenheit")
        .trim_end_matches("°F")
        .trim_end_matches('F')
        .trim();
    if number_part.is_empty() {
        return None;
    }
    let v: i64 = number_part.parse().ok()?;
    Some(v)
}

/// Parse a four-digit year.
pub fn parse_year(s: &str) -> Option<i64> {
    let t = s.trim();
    if t.len() == 4 && t.chars().all(|c| c.is_ascii_digit()) {
        t.parse().ok()
    } else {
        None
    }
}

/// Attribute-aware normalization: choose the parser by what the attribute
/// is known to hold, falling back to text.
pub fn normalize(attribute: &str, raw: &str) -> Value {
    let a = attribute.to_ascii_lowercase();
    if a.ends_with("_temp") || a == "temperature" {
        if let Some(t) = parse_temp_f(raw) {
            return Value::Int(t);
        }
    }
    if a == "population" || a == "residents" {
        if let Some(n) = parse_int(raw) {
            return Value::Int(n);
        }
    }
    if a == "founded"
        || a == "established"
        || a == "year"
        || a == "pub_year"
        || a == "birth_year"
        || a == "born"
    {
        if let Some(y) = parse_year(raw) {
            return Value::Int(y);
        }
    }
    if a == "area_sq_mi" || a == "land_area" {
        if let Some(f) = parse_float(raw) {
            return Value::Float(f);
        }
    }
    // Generic fallback: most-structured interpretation, but never split
    // separator-formatted ints wrongly.
    if let Some(n) = parse_int(raw) {
        return Value::Int(n);
    }
    Value::parse_lossy(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_with_and_without_separators() {
        assert_eq!(parse_int("250000"), Some(250_000));
        assert_eq!(parse_int("1,234,567"), Some(1_234_567));
        assert_eq!(parse_int(" 42 "), Some(42));
        assert_eq!(parse_int("-5"), Some(-5));
        assert_eq!(parse_int("1,23"), None);
        assert_eq!(parse_int("12,34,56"), None);
        assert_eq!(parse_int("1234,567"), None);
        assert_eq!(parse_int(""), None);
        assert_eq!(parse_int("abc"), None);
    }

    #[test]
    fn temps_in_all_spellings() {
        assert_eq!(parse_temp_f("70 °F"), Some(70));
        assert_eq!(parse_temp_f("70 F"), Some(70));
        assert_eq!(parse_temp_f("70 degrees Fahrenheit"), Some(70));
        assert_eq!(parse_temp_f("-5 °F"), Some(-5));
        assert_eq!(parse_temp_f("70"), Some(70));
        assert_eq!(parse_temp_f("°F"), None);
        assert_eq!(parse_temp_f("hot"), None);
    }

    #[test]
    fn years() {
        assert_eq!(parse_year("1846"), Some(1846));
        assert_eq!(parse_year("184"), None);
        assert_eq!(parse_year("18467"), None);
        assert_eq!(parse_year("18a6"), None);
    }

    #[test]
    fn floats() {
        assert_eq!(parse_float("77.5"), Some(77.5));
        assert_eq!(parse_float("  -1.25 "), Some(-1.25));
        assert_eq!(parse_float("x"), None);
    }

    #[test]
    fn attribute_aware_normalization() {
        assert_eq!(normalize("january_temp", "26 degrees Fahrenheit"), Value::Int(26));
        assert_eq!(normalize("population", "1,234,567"), Value::Int(1_234_567));
        assert_eq!(normalize("residents", "9,000"), Value::Int(9_000));
        assert_eq!(normalize("founded", "1846"), Value::Int(1846));
        assert_eq!(normalize("area_sq_mi", "77.5"), Value::Float(77.5));
        assert_eq!(normalize("land_area", "77.0"), Value::Float(77.0));
        assert_eq!(normalize("name", "Madison"), Value::Text("Madison".into()));
        assert_eq!(normalize("unknown_attr", "123"), Value::Int(123));
    }

    #[test]
    fn unparseable_values_stay_text() {
        assert_eq!(normalize("population", "unknown"), Value::Text("unknown".into()));
    }
}
