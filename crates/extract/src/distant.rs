//! Distant supervision: train learned extractors from the corpus itself.
//!
//! The redundancy the paper's architecture banks on — the same fact stated
//! in infobox markup *and* in prose — is also free training data: wherever
//! an infobox value reappears verbatim in the page's prose, that prose span
//! is a positive example for the attribute. Training the
//! [`NaiveBayes`](crate::learned::NaiveBayes) classifier on these
//! auto-labels yields an extractor that works on pages with *no infobox at
//! all* — structure teaching the system to find more structure, with no
//! human labeling.

use crate::infobox;
use crate::learned::{LabeledDoc, NaiveBayes};
use crate::model::{Extraction, Span};
use quarry_corpus::Document;

/// Auto-label prose occurrences of a document's infobox values.
///
/// Returns a labeled document for `attribute`: every prose span (outside
/// the infobox block) whose text equals the infobox's value for that
/// attribute is marked positive.
pub fn auto_label(doc: &Document, attribute: &str) -> Option<LabeledDoc> {
    let block = infobox::find_block(&doc.text)?;
    let infobox_exts = infobox::extract(doc);
    let value = infobox_exts.iter().find(|e| e.attribute == attribute)?.raw.clone();
    if value.len() < 2 {
        return None; // single characters label everything; useless signal
    }
    let mut positive = Vec::new();
    let prose_start = block.span.end;
    let prose = &doc.text[prose_start..];
    let mut from = 0usize;
    while let Some(pos) = prose[from..].find(value.as_str()) {
        let start = prose_start + from + pos;
        positive.push(Span::new(start, start + value.len()));
        from += pos + value.len();
    }
    if positive.is_empty() {
        return None;
    }
    Some(LabeledDoc { text: doc.text.clone(), positive })
}

/// A distantly supervised extractor for one attribute.
#[derive(Debug, Clone)]
pub struct DistantExtractor {
    attribute: String,
    model: NaiveBayes,
    threshold: f64,
    /// How many documents contributed auto-labels.
    pub training_docs: usize,
}

impl DistantExtractor {
    /// Train from every document whose infobox value for `attribute`
    /// reappears in its prose.
    pub fn train(docs: &[Document], attribute: &str, threshold: f64) -> DistantExtractor {
        let labeled: Vec<LabeledDoc> =
            docs.iter().filter_map(|d| auto_label(d, attribute)).collect();
        DistantExtractor {
            attribute: attribute.to_string(),
            model: NaiveBayes::train(attribute, &labeled),
            threshold,
            training_docs: labeled.len(),
        }
    }

    /// Extract from a document — most useful on pages without an infobox.
    pub fn extract(&self, doc: &Document) -> Vec<Extraction> {
        self.model.extract(doc, self.threshold)
    }

    /// The target attribute.
    pub fn attribute(&self) -> &str {
        &self.attribute
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_corpus::{Corpus, CorpusConfig, DocId, DocKind, NoiseConfig};
    use quarry_storage::Value;

    fn strip_infobox(doc: &Document) -> Document {
        let end = infobox::find_block(&doc.text).map(|b| b.span.end).unwrap_or(0);
        Document {
            id: doc.id,
            title: doc.title.clone(),
            text: doc.text[end..].trim_start().to_string(),
            kind: doc.kind,
        }
    }

    #[test]
    fn auto_label_finds_prose_restatements() {
        let doc = Document {
            id: DocId(0),
            title: "T".into(),
            text: "{{Infobox settlement\n| population = 250,000\n}}\n\nAs of the last census, the population of Madison was 250,000. Growth continues.".into(),
            kind: DocKind::City,
        };
        let labeled = auto_label(&doc, "population").expect("label found");
        assert_eq!(labeled.positive.len(), 1);
        assert_eq!(labeled.positive[0].slice(&labeled.text), "250,000");
        // The infobox's own occurrence is not labeled (prose only).
        assert!(labeled.positive[0].start > doc.text.find("}}").unwrap());
    }

    #[test]
    fn no_label_without_infobox_or_restatement() {
        let plain = Document {
            id: DocId(1),
            title: "T".into(),
            text: "Just prose with numbers 42.".into(),
            kind: DocKind::City,
        };
        assert!(auto_label(&plain, "population").is_none());
        let unechoed = Document {
            id: DocId(2),
            title: "T".into(),
            text: "{{Infobox settlement\n| population = 99,999\n}}\n\nProse that never repeats it."
                .into(),
            kind: DocKind::City,
        };
        assert!(auto_label(&unechoed, "population").is_none());
    }

    #[test]
    fn distant_extractor_recovers_facts_from_infobox_free_pages() {
        // Train on the full corpus; test on the same pages with their
        // infoboxes removed, so only prose remains.
        let corpus = Corpus::generate(&CorpusConfig {
            seed: 77,
            n_cities: 60,
            noise: NoiseConfig::none(),
            ..CorpusConfig::default()
        });
        let ext = DistantExtractor::train(&corpus.docs, "population", 0.8);
        assert!(ext.training_docs > 20, "{} training docs", ext.training_docs);

        let mut tp = 0usize;
        let mut total = 0usize;
        let mut fp = 0usize;
        for c in &corpus.truth.cities {
            let bare = strip_infobox(&corpus.docs[c.doc.index()]);
            assert!(!bare.text.contains("Infobox"));
            total += 1;
            for e in ext.extract(&bare) {
                if e.value == Value::Int(c.population as i64) {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        let recall = tp as f64 / total as f64;
        assert!(recall > 0.6, "recall {recall:.3} (tp={tp}, total={total})");
        assert!(fp <= tp, "precision collapsed: tp={tp}, fp={fp}");
    }

    #[test]
    fn threshold_trades_precision_for_recall() {
        let corpus = Corpus::generate(&CorpusConfig {
            seed: 78,
            n_cities: 50,
            noise: NoiseConfig::none(),
            ..CorpusConfig::default()
        });
        let strict = DistantExtractor::train(&corpus.docs, "population", 0.99);
        let lax = DistantExtractor::train(&corpus.docs, "population", 0.5);
        let count = |e: &DistantExtractor| -> usize {
            corpus
                .truth
                .cities
                .iter()
                .map(|c| e.extract(&strip_infobox(&corpus.docs[c.doc.index()])).len())
                .sum()
        };
        assert!(count(&lax) >= count(&strict), "lower threshold must not extract less");
    }
}
