//! A trainable extractor: naive-Bayes token classification.
//!
//! Stands in for the CRF-style learned extractors of the 2000s IE
//! literature (the Rust ecosystem gate the calibration notes call "thin
//! IE/NLP" — so it is built from scratch). The model classifies each token
//! as the *value* of a target attribute or not, from local context features
//! (the token's shape and its neighbors), then merges adjacent positive
//! tokens into spans. Posterior probabilities become extraction confidences,
//! which experiment E9 checks for calibration.

use crate::model::{Extraction, Span};
use crate::normalize;
use crate::token::{tokenize, Token};
use quarry_corpus::Document;
use std::collections::HashMap;

/// Name this extractor reports in provenance.
pub const NAME: &str = "naive-bayes";

/// A labeled training document: text plus the byte spans of true values.
#[derive(Debug, Clone)]
pub struct LabeledDoc {
    /// The document text.
    pub text: String,
    /// Byte spans of tokens that are values of the target attribute.
    pub positive: Vec<Span>,
}

fn shape(tok: &str) -> &'static str {
    let mut has_digit = false;
    let mut has_alpha = false;
    let mut has_upper = false;
    for c in tok.chars() {
        has_digit |= c.is_ascii_digit();
        has_alpha |= c.is_alphabetic();
        has_upper |= c.is_uppercase();
    }
    match (has_digit, has_alpha, has_upper) {
        (true, false, _) => "num",
        (true, true, _) => "alnum",
        (false, true, true) => "Cap",
        (false, true, false) => "low",
        _ => "sym",
    }
}

fn features(source: &str, toks: &[Token], i: usize) -> Vec<String> {
    let t = toks[i].text(source);
    let prev = if i > 0 { toks[i - 1].text(source) } else { "<s>" };
    let prev2 = if i > 1 { toks[i - 2].text(source) } else { "<s>" };
    let next = toks.get(i + 1).map_or("</s>", |t| t.text(source));
    vec![
        format!("shape={}", shape(t)),
        format!("w={}", t.to_lowercase()),
        format!("prev={}", prev.to_lowercase()),
        format!("prev2={}", prev2.to_lowercase()),
        format!("next={}", next.to_lowercase()),
        format!("prevshape={}", shape(prev)),
        format!("nextshape={}", shape(next)),
    ]
}

/// Binary naive-Bayes over token context features, with add-one smoothing.
#[derive(Debug, Clone, Default)]
pub struct NaiveBayes {
    pos_counts: HashMap<String, f64>,
    neg_counts: HashMap<String, f64>,
    pos_total: f64,
    neg_total: f64,
    pos_docs: f64,
    neg_docs: f64,
    attribute: String,
}

impl NaiveBayes {
    /// Train a model for `attribute` from labeled documents.
    pub fn train(attribute: &str, docs: &[LabeledDoc]) -> NaiveBayes {
        let mut model = NaiveBayes { attribute: attribute.to_string(), ..Default::default() };
        for d in docs {
            let toks = tokenize(&d.text);
            for (i, tok) in toks.iter().enumerate() {
                let is_pos = d.positive.iter().any(|s| s.overlaps(&tok.span));
                let feats = features(&d.text, &toks, i);
                if is_pos {
                    model.pos_docs += 1.0;
                    for f in feats {
                        *model.pos_counts.entry(f).or_insert(0.0) += 1.0;
                        model.pos_total += 1.0;
                    }
                } else {
                    model.neg_docs += 1.0;
                    for f in feats {
                        *model.neg_counts.entry(f).or_insert(0.0) += 1.0;
                        model.neg_total += 1.0;
                    }
                }
            }
        }
        model
    }

    /// Vocabulary size for smoothing.
    fn vocab(&self) -> f64 {
        let mut keys: std::collections::HashSet<&String> = self.pos_counts.keys().collect();
        keys.extend(self.neg_counts.keys());
        keys.len().max(1) as f64
    }

    /// P(value-token | features) for token `i`.
    pub fn posterior(&self, source: &str, toks: &[Token], i: usize) -> f64 {
        if self.pos_docs == 0.0 || self.neg_docs == 0.0 {
            return 0.0;
        }
        let v = self.vocab();
        let prior_pos = (self.pos_docs / (self.pos_docs + self.neg_docs)).ln();
        let prior_neg = (self.neg_docs / (self.pos_docs + self.neg_docs)).ln();
        let mut lp = prior_pos;
        let mut ln = prior_neg;
        for f in features(source, toks, i) {
            let cp = self.pos_counts.get(&f).copied().unwrap_or(0.0);
            let cn = self.neg_counts.get(&f).copied().unwrap_or(0.0);
            lp += ((cp + 1.0) / (self.pos_total + v)).ln();
            ln += ((cn + 1.0) / (self.neg_total + v)).ln();
        }
        // Softmax over the two log scores.
        let m = lp.max(ln);
        let ep = (lp - m).exp();
        let en = (ln - m).exp();
        ep / (ep + en)
    }

    /// Extract value spans from a document: tokens whose posterior clears
    /// `threshold`, adjacent positives merged into one span.
    pub fn extract(&self, doc: &Document, threshold: f64) -> Vec<Extraction> {
        let toks = tokenize(&doc.text);
        let mut out: Vec<Extraction> = Vec::new();
        let mut current: Option<(usize, usize, f64, usize)> = None; // (start tok, end tok, conf sum, n)
        for i in 0..toks.len() {
            let p = self.posterior(&doc.text, &toks, i);
            if p >= threshold {
                current = match current {
                    Some((s, _, cs, n)) if toks[i - 1].span.end + 1 >= toks[i].span.start => {
                        Some((s, i, cs + p, n + 1))
                    }
                    Some(prev) => {
                        self.push(doc, &toks, prev, &mut out);
                        Some((i, i, p, 1))
                    }
                    None => Some((i, i, p, 1)),
                };
            } else if let Some(prev) = current.take() {
                self.push(doc, &toks, prev, &mut out);
            }
        }
        if let Some(prev) = current {
            self.push(doc, &toks, prev, &mut out);
        }
        out
    }

    fn push(
        &self,
        doc: &Document,
        toks: &[Token],
        (s, e, conf_sum, n): (usize, usize, f64, usize),
        out: &mut Vec<Extraction>,
    ) {
        let span = Span::new(toks[s].span.start, toks[e].span.end);
        let raw = span.slice(&doc.text).to_string();
        let value = normalize::normalize(&self.attribute, &raw);
        out.push(Extraction {
            doc: doc.id,
            attribute: self.attribute.clone(),
            raw,
            value,
            span,
            confidence: conf_sum / n as f64,
            extractor: NAME,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_corpus::{DocId, DocKind};

    /// Build training docs where the value is the number after "was".
    fn training_set() -> Vec<LabeledDoc> {
        let mut docs = Vec::new();
        for (city, n) in [
            ("Madison", "250000"),
            ("Oakton", "9500"),
            ("Riverdale", "120000"),
            ("Hillford", "43000"),
        ] {
            let text = format!("the population of {city} was {n} last year");
            let start = text.find(n).unwrap();
            docs.push(LabeledDoc { positive: vec![Span::new(start, start + n.len())], text });
        }
        // Negative-only docs teach the model that numbers elsewhere are not values.
        for y in ["1846", "1901"] {
            docs.push(LabeledDoc {
                text: format!("the town was established long ago, in {y} in fact"),
                positive: vec![],
            });
        }
        docs
    }

    fn doc(text: &str) -> Document {
        Document { id: DocId(0), title: "T".into(), text: text.into(), kind: DocKind::City }
    }

    #[test]
    fn learns_population_context() {
        let model = NaiveBayes::train("population", &training_set());
        let d = doc("the population of Springfield was 88000 at the census");
        let exts = model.extract(&d, 0.5);
        assert_eq!(exts.len(), 1, "{exts:?}");
        assert_eq!(exts[0].raw, "88000");
        assert_eq!(exts[0].value, quarry_storage::Value::Int(88000));
        assert!(exts[0].confidence > 0.5);
    }

    #[test]
    fn ignores_numbers_in_wrong_context() {
        let model = NaiveBayes::train("population", &training_set());
        let d = doc("the town hall was built long ago, in 1907 in fact");
        let exts = model.extract(&d, 0.5);
        assert!(exts.is_empty(), "{exts:?}");
    }

    #[test]
    fn untrained_model_extracts_nothing() {
        let model = NaiveBayes::train("population", &[]);
        let d = doc("the population of X was 1000");
        assert!(model.extract(&d, 0.5).is_empty());
    }

    #[test]
    fn posterior_is_probability() {
        let model = NaiveBayes::train("population", &training_set());
        let text = "the population of Yorkvale was 31000 overall";
        let toks = tokenize(text);
        for i in 0..toks.len() {
            let p = model.posterior(text, &toks, i);
            assert!((0.0..=1.0).contains(&p), "posterior {p} out of range");
        }
    }

    #[test]
    fn adjacent_positive_tokens_merge() {
        // Train where the value is two adjacent tokens ("New York").
        let mut docs = Vec::new();
        for filler in ["first", "second", "third"] {
            let text = format!("the {filler} office is in New York today");
            let start = text.find("New York").unwrap();
            docs.push(LabeledDoc { positive: vec![Span::new(start, start + 8)], text });
        }
        let model = NaiveBayes::train("office", &docs);
        let d = doc("the fourth office is in New York today");
        let exts = model.extract(&d, 0.5);
        assert_eq!(exts.len(), 1, "{exts:?}");
        assert_eq!(exts[0].raw, "New York");
    }

    #[test]
    fn shape_feature_buckets() {
        assert_eq!(shape("1234"), "num");
        assert_eq!(shape("Madison"), "Cap");
        assert_eq!(shape("hello"), "low");
        assert_eq!(shape("a1"), "alnum");
        assert_eq!(shape("°"), "sym");
    }
}
