//! Tokenizer and sentence splitter, with exact byte offsets.
//!
//! Offsets matter: every downstream extraction carries a [`Span`] pointing
//! back into the raw page for provenance, so tokens must slice the original
//! text exactly.

use crate::model::Span;

/// Kinds of tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Letters (and underscores) run.
    Word,
    /// Digit run, optionally with embedded `,` or `.` (e.g. `1,234` `2.5`).
    Number,
    /// Anything else that is not whitespace, one char per token.
    Punct,
}

/// One token of a text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Location in the source text.
    pub span: Span,
    /// Classification.
    pub kind: TokenKind,
}

impl Token {
    /// Slice the source text to the token's characters.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        self.span.slice(source)
    }
}

/// Tokenize `text` into words, numbers, and punctuation.
///
/// Number tokens absorb internal `,`/`.` only when followed by another
/// digit, so `1,234,567` and `2.5` are single tokens but the sentence-final
/// period in `70.` is not.
pub fn tokenize(text: &str) -> Vec<Token> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut iter = text.char_indices().peekable();
    while let Some((start, c)) = iter.next() {
        if c.is_whitespace() {
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let mut end = start + c.len_utf8();
            while let Some(&(i, n)) = iter.peek() {
                if n.is_alphabetic() || n == '_' {
                    end = i + n.len_utf8();
                    iter.next();
                } else {
                    break;
                }
            }
            tokens.push(Token { span: Span::new(start, end), kind: TokenKind::Word });
        } else if c.is_ascii_digit() {
            let mut end = start + 1;
            while let Some(&(i, n)) = iter.peek() {
                let separator_in_number =
                    (n == ',' || n == '.') && bytes.get(i + 1).is_some_and(u8::is_ascii_digit);
                if n.is_ascii_digit() || separator_in_number {
                    end = i + 1;
                    iter.next();
                } else {
                    break;
                }
            }
            tokens.push(Token { span: Span::new(start, end), kind: TokenKind::Number });
        } else {
            tokens.push(Token {
                span: Span::new(start, start + c.len_utf8()),
                kind: TokenKind::Punct,
            });
        }
    }
    tokens
}

/// Split text into sentences (byte spans), breaking on `.`, `!`, `?`, or
/// blank lines. Decimal points inside numbers do not end sentences.
pub fn sentences(text: &str) -> Vec<Span> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut last_non_ws = 0usize;
    let mut chars = text.char_indices().peekable();
    let mut any = false;
    while let Some((i, c)) = chars.next() {
        if !c.is_whitespace() {
            last_non_ws = i + c.len_utf8();
            any = true;
        }
        let boundary = match c {
            '.' | '!' | '?' => {
                // Not a boundary if digits continue (e.g. "2.5").
                !matches!(chars.peek(), Some(&(_, n)) if n.is_ascii_digit())
            }
            '\n' => matches!(chars.peek(), Some(&(_, '\n'))),
            _ => false,
        };
        if boundary && any {
            out.push(Span::new(start, last_non_ws));
            // Skip whitespace to the next sentence start.
            while let Some(&(j, n)) = chars.peek() {
                if n.is_whitespace() {
                    chars.next();
                } else {
                    start = j;
                    break;
                }
            }
            if chars.peek().is_none() {
                start = text.len();
            }
            any = false;
        }
    }
    if any && start < text.len() {
        out.push(Span::new(start, last_non_ws));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn texts(s: &str) -> Vec<String> {
        tokenize(s).iter().map(|t| t.text(s).to_string()).collect()
    }

    #[test]
    fn words_numbers_punct() {
        assert_eq!(
            texts("Madison was founded in 1846."),
            vec!["Madison", "was", "founded", "in", "1846", "."]
        );
    }

    #[test]
    fn numbers_with_separators_and_decimals() {
        assert_eq!(
            texts("population 1,234,567 area 77.5 mi"),
            vec!["population", "1,234,567", "area", "77.5", "mi"]
        );
        // Trailing period is not absorbed.
        assert_eq!(texts("it is 70."), vec!["it", "is", "70", "."]);
    }

    #[test]
    fn unicode_tokens() {
        let s = "température 20 °F";
        let ts = texts(s);
        assert_eq!(ts, vec!["température", "20", "°", "F"]);
    }

    #[test]
    fn kinds_are_classified() {
        let toks = tokenize("ab 12 ,");
        assert_eq!(toks[0].kind, TokenKind::Word);
        assert_eq!(toks[1].kind, TokenKind::Number);
        assert_eq!(toks[2].kind, TokenKind::Punct);
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n\t ").is_empty());
    }

    #[test]
    fn sentence_splitting() {
        let s = "First sentence. Second one! Third? Last without period";
        let spans = sentences(s);
        let texts: Vec<&str> = spans.iter().map(|sp| sp.slice(s)).collect();
        assert_eq!(texts, vec!["First sentence.", "Second one!", "Third?", "Last without period"]);
    }

    #[test]
    fn decimal_numbers_do_not_split_sentences() {
        let s = "The area is 77.5 square miles. Next.";
        let spans = sentences(s);
        assert_eq!(spans.len(), 2);
        assert!(spans[0].slice(s).contains("77.5"));
    }

    #[test]
    fn blank_lines_split() {
        let s = "para one line\n\npara two";
        let spans = sentences(s);
        let texts: Vec<&str> = spans.iter().map(|sp| sp.slice(s)).collect();
        assert_eq!(texts, vec!["para one line", "para two"]);
    }

    proptest! {
        #[test]
        fn prop_token_spans_are_exact_and_ordered(s in "\\PC{0,80}") {
            let toks = tokenize(&s);
            let mut prev_end = 0;
            for t in &toks {
                prop_assert!(t.span.start >= prev_end);
                prop_assert!(t.span.end <= s.len());
                prop_assert!(!t.text(&s).is_empty());
                prop_assert!(!t.text(&s).chars().any(char::is_whitespace));
                prev_end = t.span.end;
            }
        }

        #[test]
        fn prop_sentences_cover_non_whitespace(s in "[a-z .!?\n]{0,80}") {
            let spans = sentences(&s);
            for sp in &spans {
                prop_assert!(sp.end <= s.len());
                prop_assert!(!sp.slice(&s).trim().is_empty());
            }
        }
    }
}
