//! Infobox extraction: `{{Infobox kind | key = value ... }}` blocks.
//!
//! The highest-precision extractor: infobox lines are machine-written
//! key/value markup, so confidence is high; label *names* may still be
//! variants (`residents` for `population`) — resolving that is the
//! integration layer's job, not this extractor's.

use crate::model::{Extraction, Span};
use crate::normalize;
use crate::regex::Regex;
use quarry_corpus::Document;
use std::sync::OnceLock;

/// Name this extractor reports in provenance.
pub const NAME: &str = "infobox";

/// Confidence assigned to infobox extractions (markup is near-deterministic;
/// residual risk is template vandalism and parse ambiguity).
pub const CONFIDENCE: f64 = 0.95;

fn line_re() -> &'static Regex {
    static RE: OnceLock<Regex> = OnceLock::new();
    RE.get_or_init(|| {
        Regex::new(r"\| *([a-zA-Z_][a-zA-Z0-9_]*) *= *([^\n]+)").expect("static pattern")
    })
}

/// The parsed header and body bounds of an infobox block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfoboxBlock {
    /// The template kind (`settlement`, `person`, ...).
    pub kind: String,
    /// Byte range of the whole block including braces.
    pub span: Span,
}

/// Locate the first infobox block of a page, if any.
pub fn find_block(text: &str) -> Option<InfoboxBlock> {
    let start = text.find("{{Infobox")?;
    let rest = &text[start..];
    let end_rel = rest.find("}}")? + 2;
    let header_end = rest.find('\n').unwrap_or(end_rel);
    let kind = rest["{{Infobox".len()..header_end].trim().to_string();
    Some(InfoboxBlock { kind, span: Span::new(start, start + end_rel) })
}

/// Extract every `key = value` pair from a document's infobox.
pub fn extract(doc: &Document) -> Vec<Extraction> {
    let Some(block) = find_block(&doc.text) else {
        return Vec::new();
    };
    let body = block.span.slice(&doc.text);
    let mut out = Vec::new();
    for caps in line_re().captures_iter(body) {
        let (Some(key), Some(val)) = (caps.get(1), caps.get(2)) else {
            continue;
        };
        let attribute = key.as_str(body).to_string();
        let raw = val.as_str(body).trim().to_string();
        if raw.is_empty() {
            continue;
        }
        // Rebase the value span onto the document.
        let span =
            Span::new(block.span.start + val.start, block.span.start + val.start + raw.len());
        let value = normalize::normalize(&attribute, &raw);
        out.push(Extraction {
            doc: doc.id,
            attribute,
            raw,
            value,
            span,
            confidence: CONFIDENCE,
            extractor: NAME,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarry_corpus::{DocId, DocKind};
    use quarry_storage::Value;

    fn doc(text: &str) -> Document {
        Document { id: DocId(0), title: "T".into(), text: text.into(), kind: DocKind::City }
    }

    const PAGE: &str = "{{Infobox settlement\n| name = Madison\n| state = Wisconsin\n| population = 250,000\n| january_temp = 26 °F\n}}\n\nProse follows.";

    #[test]
    fn finds_block_and_kind() {
        let b = find_block(PAGE).unwrap();
        assert_eq!(b.kind, "settlement");
        assert!(b.span.slice(PAGE).starts_with("{{Infobox"));
        assert!(b.span.slice(PAGE).ends_with("}}"));
    }

    #[test]
    fn extracts_all_pairs_normalized() {
        let d = doc(PAGE);
        let exts = extract(&d);
        assert_eq!(exts.len(), 4);
        let by_attr = |a: &str| exts.iter().find(|e| e.attribute == a).unwrap();
        assert_eq!(by_attr("name").value, Value::Text("Madison".into()));
        assert_eq!(by_attr("population").value, Value::Int(250_000));
        assert_eq!(by_attr("january_temp").value, Value::Int(26));
        assert!(exts.iter().all(|e| e.extractor == NAME));
        assert!(exts.iter().all(|e| e.confidence == CONFIDENCE));
    }

    #[test]
    fn spans_point_at_raw_values() {
        let d = doc(PAGE);
        let exts = extract(&d);
        for e in &exts {
            assert_eq!(e.span.slice(&d.text), e.raw, "span/raw mismatch for {}", e.attribute);
        }
    }

    #[test]
    fn page_without_infobox_yields_nothing() {
        assert!(extract(&doc("Just prose, no template.")).is_empty());
        assert!(extract(&doc("{{Infobox broken")).is_empty());
    }

    #[test]
    fn variant_labels_pass_through_unresolved() {
        let d = doc("{{Infobox settlement\n| residents = 9,000\n}}");
        let exts = extract(&d);
        assert_eq!(exts[0].attribute, "residents");
        assert_eq!(exts[0].value, Value::Int(9_000));
    }

    #[test]
    fn empty_values_are_skipped() {
        let d = doc("{{Infobox settlement\n| name = \n| state = Ohio\n}}");
        let exts = extract(&d);
        assert_eq!(exts.len(), 1);
        assert_eq!(exts[0].attribute, "state");
    }
}
