//! Extractor bundles: run a configurable set of IE operators over documents.

use crate::dictionary::Gazetteer;
use crate::infobox;
use crate::model::{dedup, dedup_order, dedup_sorted, Extraction};
use crate::rules::{self, ProseRule};
use quarry_corpus::{Corpus, Document};
use quarry_exec::{ExecPool, ExecReport};

/// Which operators to run, and with what resources.
#[derive(Default)]
pub struct ExtractorSet {
    /// Run the infobox parser.
    pub infobox: bool,
    /// Prose rules to apply (empty = none).
    pub rules: Vec<ProseRule>,
    /// Gazetteers to apply (empty = none).
    pub gazetteers: Vec<Gazetteer>,
}

impl ExtractorSet {
    /// The standard full set: infobox + standard prose rules; gazetteers are
    /// added by the caller because they need name lists.
    pub fn standard() -> ExtractorSet {
        ExtractorSet { infobox: true, rules: rules::standard_rules(), gazetteers: Vec::new() }
    }

    /// Infobox only — the high-precision, low-recall configuration.
    pub fn infobox_only() -> ExtractorSet {
        ExtractorSet { infobox: true, rules: Vec::new(), gazetteers: Vec::new() }
    }

    /// Add a gazetteer to the set (builder style).
    pub fn with_gazetteer(mut self, gazetteer: Gazetteer) -> ExtractorSet {
        self.gazetteers.push(gazetteer);
        self
    }

    /// Add a prose rule to the set (builder style).
    pub fn with_rule(mut self, rule: ProseRule) -> ExtractorSet {
        self.rules.push(rule);
        self
    }

    /// Enable or disable the infobox parser (builder style).
    pub fn with_infobox(mut self, enabled: bool) -> ExtractorSet {
        self.infobox = enabled;
        self
    }

    /// Run every configured operator over one document.
    pub fn extract_doc(&self, doc: &Document) -> Vec<Extraction> {
        let mut out = Vec::new();
        if self.infobox {
            out.extend(infobox::extract(doc));
        }
        if !self.rules.is_empty() {
            out.extend(rules::extract(doc, &self.rules));
        }
        for g in &self.gazetteers {
            out.extend(g.extract(doc));
        }
        out
    }
}

/// Run an extractor set over a whole corpus, deduplicating per-identity
/// (keeping the most confident witness of each (doc, attribute, value)).
pub fn extract_all(corpus: &Corpus, set: &ExtractorSet) -> Vec<Extraction> {
    let raw: Vec<Extraction> = corpus.docs.iter().flat_map(|d| set.extract_doc(d)).collect();
    dedup(raw)
}

/// Parallel [`extract_all`]: fan out per document on `pool`, then
/// merge-dedup with a parallel sort. Returns exactly what
/// [`extract_all`] returns.
///
/// Determinism: `ExecPool::map` yields per-document extraction vectors
/// in document order, so their concatenation equals the sequential
/// `flat_map`. `ExecPool::sort_by` is stable-equivalent under
/// [`dedup_order`], so the final `dedup_sorted` sees the same sequence
/// the sequential `dedup` would.
pub fn extract_all_with(
    corpus: &Corpus,
    set: &ExtractorSet,
    pool: &ExecPool,
    report: &mut ExecReport,
) -> Vec<Extraction> {
    let per_doc = pool.map("extract/fan-out", &corpus.docs, |_, d| set.extract_doc(d), report);
    let mut raw = Vec::with_capacity(per_doc.iter().map(Vec::len).sum());
    for exts in per_doc {
        raw.extend(exts);
    }
    let sorted = pool.sort_by("extract/dedup-sort", raw, dedup_order, report);
    dedup_sorted(sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use quarry_corpus::{CorpusConfig, NoiseConfig};

    fn corpus(noise: NoiseConfig) -> Corpus {
        Corpus::generate(&CorpusConfig { noise, ..CorpusConfig::tiny(42) })
    }

    #[test]
    fn clean_corpus_extraction_is_highly_accurate() {
        let c = corpus(NoiseConfig::none());
        let exts = extract_all(&c, &ExtractorSet::standard());
        let s = eval::score(&exts, &c.truth);
        assert!(s.precision > 0.95, "precision {:.3}", s.precision);
        assert!(s.recall > 0.8, "recall {:.3}", s.recall);
    }

    #[test]
    fn noisy_corpus_extraction_is_imperfect_but_useful() {
        let c = corpus(NoiseConfig::default());
        let exts = extract_all(&c, &ExtractorSet::standard());
        let s = eval::score(&exts, &c.truth);
        // The paper's premise: automatic IE "will not be 100% accurate".
        assert!(s.f1 > 0.5, "f1 {:.3}", s.f1);
        assert!(s.f1 < 1.0, "noise must cost something, f1 {:.3}", s.f1);
    }

    #[test]
    fn infobox_only_trades_recall_for_precision() {
        let c = corpus(NoiseConfig::default());
        let full = eval::score(&extract_all(&c, &ExtractorSet::standard()), &c.truth);
        let ibx = eval::score(&extract_all(&c, &ExtractorSet::infobox_only()), &c.truth);
        assert!(
            ibx.precision >= full.precision - 0.02,
            "ibx {:.3} vs full {:.3}",
            ibx.precision,
            full.precision
        );
        assert!(ibx.recall <= full.recall, "infobox-only cannot out-recall the full set");
    }

    #[test]
    fn gazetteers_add_mentions() {
        let c = corpus(NoiseConfig::none());
        let names: Vec<&str> = c.truth.cities.iter().map(|x| x.name.as_str()).collect();
        let set = ExtractorSet::infobox_only().with_gazetteer(Gazetteer::from_names(
            "city_mention",
            names.iter().copied(),
            false,
        ));
        let exts = extract_all(&c, &set);
        assert!(exts.iter().any(|e| e.attribute == "city_mention"));
    }

    #[test]
    fn dedup_keeps_one_witness_per_identity() {
        let c = corpus(NoiseConfig::none());
        let exts = extract_all(&c, &ExtractorSet::standard());
        let mut ids: Vec<_> =
            exts.iter().map(|e| (e.doc, e.attribute.clone(), e.value.clone())).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }
}
