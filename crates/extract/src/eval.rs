//! Extraction scoring against corpus ground truth.
//!
//! A predicted extraction is correct when the same document's ground truth
//! contains the same (canonical attribute, normalized value) pair. Attribute
//! canonicalization maps label variants (`residents` → `population`) using
//! the corpus's own variant table, so the score measures extraction quality,
//! not label-variant luck; full label resolution from data alone is
//! exercised separately by the integration layer's schema matcher.

use crate::model::Extraction;
use quarry_corpus::render::LABEL_VARIANTS;
use quarry_corpus::{CityFact, CompanyFact, GroundTruth, PersonFact, PublicationFact};
use quarry_storage::Value;
use std::collections::HashSet;

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PrF1 {
    /// Correct predictions / all predictions.
    pub precision: f64,
    /// Correct predictions / all true facts.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
    /// Count of correct predictions.
    pub tp: usize,
    /// Count of wrong predictions.
    pub fp: usize,
    /// Count of missed facts.
    pub fn_: usize,
}

/// Compute P/R/F1 from counts.
pub fn f1_score(tp: usize, fp: usize, fn_: usize) -> PrF1 {
    let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
    let recall = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PrF1 { precision, recall, f1, tp, fp, fn_ }
}

/// Map a surface attribute label to its canonical name.
pub fn canonical_attribute(label: &str) -> String {
    for (canon, alt) in LABEL_VARIANTS {
        if label == *alt {
            return (*canon).to_string();
        }
    }
    label.to_string()
}

const MONTHS: [&str; 12] = [
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

fn city_pairs(c: &CityFact, out: &mut HashSet<(u32, String, Value)>) {
    let d = c.doc.0;
    out.insert((d, "name".into(), Value::Text(c.name.clone())));
    out.insert((d, "state".into(), Value::Text(c.state.clone())));
    out.insert((d, "population".into(), Value::Int(c.population as i64)));
    out.insert((d, "founded".into(), Value::Int(c.founded as i64)));
    out.insert((d, "area_sq_mi".into(), Value::Float(c.area_sq_mi)));
    for (m, t) in c.monthly_temp_f.iter().enumerate() {
        out.insert((d, format!("{}_temp", MONTHS[m]), Value::Int(*t as i64)));
    }
}

fn person_pairs(p: &PersonFact, out: &mut HashSet<(u32, String, Value)>) {
    let d = p.doc.0;
    out.insert((d, "name".into(), Value::Text(p.name.clone())));
    out.insert((d, "birth_year".into(), Value::Int(p.birth_year as i64)));
    out.insert((d, "employer".into(), Value::Text(p.employer.clone())));
    out.insert((d, "residence".into(), Value::Text(p.residence.clone())));
}

fn company_pairs(c: &CompanyFact, out: &mut HashSet<(u32, String, Value)>) {
    let d = c.doc.0;
    out.insert((d, "name".into(), Value::Text(c.name.clone())));
    out.insert((d, "founded".into(), Value::Int(c.founded as i64)));
    out.insert((d, "headquarters".into(), Value::Text(c.headquarters.clone())));
    out.insert((d, "industry".into(), Value::Text(c.industry.clone())));
}

fn publication_pairs(p: &PublicationFact, out: &mut HashSet<(u32, String, Value)>) {
    let d = p.doc.0;
    out.insert((d, "title".into(), Value::Text(p.title.clone())));
    out.insert((d, "year".into(), Value::Int(p.year as i64)));
    out.insert((d, "venue".into(), Value::Text(p.venue.clone())));
    for a in &p.authors {
        out.insert((d, "author".into(), Value::Text(a.clone())));
    }
}

/// The full set of true (doc, attribute, value) facts of a corpus.
pub fn truth_pairs(truth: &GroundTruth) -> HashSet<(u32, String, Value)> {
    let mut out = HashSet::new();
    for c in &truth.cities {
        city_pairs(c, &mut out);
    }
    for p in &truth.people {
        person_pairs(p, &mut out);
    }
    for c in &truth.companies {
        company_pairs(c, &mut out);
    }
    for p in &truth.publications {
        publication_pairs(p, &mut out);
    }
    out
}

/// Score extractions against ground truth.
///
/// Only attributes present in the truth model are scored; extractions of
/// other attributes (e.g. `name` mentions found by a gazetteer in running
/// prose) are ignored rather than counted as false positives.
pub fn score(extractions: &[Extraction], truth: &GroundTruth) -> PrF1 {
    let truth_set = truth_pairs(truth);
    let scored_attrs: HashSet<&String> = truth_set.iter().map(|(_, a, _)| a).collect();
    let mut predicted: HashSet<(u32, String, Value)> = HashSet::new();
    for e in extractions {
        let attr = canonical_attribute(&e.attribute);
        if scored_attrs.contains(&attr) {
            predicted.insert((e.doc.0, attr, e.value.clone()));
        }
    }
    let tp = predicted.intersection(&truth_set).count();
    let fp = predicted.len() - tp;
    let fn_ = truth_set.len() - tp;
    f1_score(tp, fp, fn_)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Span;
    use quarry_corpus::DocId;

    fn truth_one_city() -> GroundTruth {
        let mut gt = GroundTruth::default();
        gt.cities.push(CityFact {
            doc: DocId(0),
            name: "Madison".into(),
            state: "Wisconsin".into(),
            population: 250_000,
            founded: 1846,
            monthly_temp_f: vec![20; 12],
            area_sq_mi: 77.0,
        });
        gt
    }

    fn ext(doc: u32, attr: &str, value: Value) -> Extraction {
        Extraction {
            doc: DocId(doc),
            attribute: attr.into(),
            raw: value.to_string(),
            value,
            span: Span::new(0, 1),
            confidence: 0.9,
            extractor: "test",
        }
    }

    #[test]
    fn perfect_subset_has_full_precision() {
        let gt = truth_one_city();
        let exts =
            vec![ext(0, "population", Value::Int(250_000)), ext(0, "founded", Value::Int(1846))];
        let s = score(&exts, &gt);
        assert_eq!(s.precision, 1.0);
        assert!(s.recall < 1.0);
        assert_eq!(s.tp, 2);
    }

    #[test]
    fn wrong_value_counts_as_fp() {
        let gt = truth_one_city();
        let s = score(&[ext(0, "population", Value::Int(99))], &gt);
        assert_eq!(s.tp, 0);
        assert_eq!(s.fp, 1);
        assert_eq!(s.precision, 0.0);
    }

    #[test]
    fn label_variants_canonicalize() {
        let gt = truth_one_city();
        let s = score(&[ext(0, "residents", Value::Int(250_000))], &gt);
        assert_eq!(s.tp, 1);
        assert_eq!(canonical_attribute("location"), "state");
        assert_eq!(canonical_attribute("population"), "population");
    }

    #[test]
    fn unscored_attributes_are_ignored() {
        let gt = truth_one_city();
        let s = score(&[ext(0, "mystery_attr", Value::Int(1))], &gt);
        assert_eq!(s.fp, 0);
        assert_eq!(s.tp, 0);
    }

    #[test]
    fn f1_math() {
        let s = f1_score(8, 2, 8);
        assert!((s.precision - 0.8).abs() < 1e-9);
        assert!((s.recall - 0.5).abs() < 1e-9);
        assert!((s.f1 - (2.0 * 0.8 * 0.5 / 1.3)).abs() < 1e-9);
        let zero = f1_score(0, 0, 0);
        assert_eq!(zero.f1, 0.0);
    }

    #[test]
    fn truth_pairs_cover_all_tables() {
        let mut gt = truth_one_city();
        gt.publications.push(PublicationFact {
            doc: DocId(1),
            title: "T".into(),
            year: 2008,
            venue: "CIDR".into(),
            authors: vec!["A B".into()],
        });
        let pairs = truth_pairs(&gt);
        assert!(pairs.contains(&(0, "january_temp".into(), Value::Int(20))));
        assert!(pairs.contains(&(1, "author".into(), Value::Text("A B".into()))));
    }
}
