//! Quarry: an end-to-end system for managing unstructured data by
//! extracting, integrating, and curating the structure hidden inside it.
//!
//! This façade crate re-exports every subsystem of the workspace under one
//! namespace. See the README for the architecture overview and DESIGN.md for
//! the subsystem inventory.
//!
//! - [`corpus`] — synthetic wiki corpus with ground truth (the data substrate)
//! - [`storage`] — snapshot store, filestore, and mini-RDBMS (storage layer)
//! - [`extract`] — information-extraction operators (processing layer, IE)
//! - [`integrate`] — information-integration operators (processing layer, II)
//! - [`hi`] — human-intervention simulation: oracles, crowds, reputation
//! - [`uncertainty`] — probabilities, lineage, explanations
//! - [`lang`] — the declarative IE+II+HI language and its optimizer
//! - [`schema`] — schema registry and evolution
//! - [`debugger`] — the semantic debugger
//! - [`query`] — keyword search, structured queries, query translation
//! - [`cluster`] — MapReduce-like parallel execution (physical layer)
//! - [`exec`] — work-stealing parallel executor for the IE/II hot paths
//! - [`core`] — the assembled end-to-end system
//! - [`serve`] — the TCP serving layer: wire protocol, sessions,
//!   admission control, and a blocking client (see `docs/serving.md`)
//!
//! The most-used entry points are re-exported at the crate root:
//!
//! ```
//! use quarry::{extract_all, ExtractorSet, Quarry, QuarryConfig};
//!
//! let config = QuarryConfig::builder().threads(2).build();
//! let system = Quarry::new(config).unwrap();
//! drop(system);
//! let set = ExtractorSet::standard();
//! let _ = &set;
//! ```

#![forbid(unsafe_code)]

pub use quarry_audit as audit;
pub use quarry_cluster as cluster;
pub use quarry_core as core;
pub use quarry_corpus as corpus;
pub use quarry_debugger as debugger;
pub use quarry_exec as exec;
pub use quarry_extract as extract;
pub use quarry_hi as hi;
pub use quarry_integrate as integrate;
pub use quarry_lang as lang;
pub use quarry_lint as lint;
pub use quarry_query as query;
pub use quarry_schema as schema;
pub use quarry_serve as serve;
pub use quarry_storage as storage;
pub use quarry_uncertainty as uncertainty;

pub use quarry_core::{CheckStats, Quarry, QuarryConfig, QuarryError, SharedQuarry, Snapshot};
pub use quarry_exec::{Diagnostic, ExecPool, ExecReport, LintReport, Severity, Span};
pub use quarry_extract::{extract_all, Extraction, ExtractorSet};
pub use quarry_storage::DurabilityMode;
